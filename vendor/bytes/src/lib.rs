//! Offline stub of the `bytes` API surface this workspace uses: an
//! immutable, cheaply cloneable byte buffer backed by `Arc<[u8]>`.

#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted contiguous byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy a static/borrowed slice into a buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// View as a byte slice.
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes {
            data: s.into_bytes().into(),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_derefs() {
        let b = Bytes::from(String::from("hello"));
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        assert_eq!(std::str::from_utf8(&b).unwrap(), "hello");
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(Bytes::from(vec![1u8, 2]).as_ref(), &[1, 2]);
        assert!(Bytes::new().is_empty());
    }
}
