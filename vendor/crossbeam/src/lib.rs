//! Offline stub of the `crossbeam` API surface this workspace uses:
//! `crossbeam::thread::scope` with crossbeam-style signatures (the scope
//! closure and every spawned closure receive the scope handle; the scope
//! returns `Err` instead of propagating panics), implemented on top of
//! `std::thread::scope`.

#![warn(missing_docs)]

/// Scoped threads (crossbeam-utils compatible subset).
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Payload of a panicked scope or thread.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle for spawning threads that may borrow from the caller.
    ///
    /// `Copy` (crossbeam passes `&Scope`; a by-value copyable handle accepts
    /// the same call sites since `.spawn(...)` auto-refs either way).
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope handle so
        /// it can spawn further siblings (crossbeam signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(Scope { inner })),
            }
        }
    }

    /// Create a scope for spawning borrowing threads. Returns `Err` with
    /// the panic payload if the scope closure or an unjoined spawned thread
    /// panicked (crossbeam semantics), rather than propagating the panic.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: FnOnce(Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scope_joins_and_borrows() {
            let data = [1, 2, 3];
            let sum = super::scope(|s| {
                let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
            })
            .unwrap();
            assert_eq!(sum, 12);
        }

        #[test]
        fn spawned_panic_is_captured_by_join() {
            let res = super::scope(|s| {
                let h = s.spawn(|_| -> i32 { panic!("boom") });
                h.join()
            })
            .unwrap();
            assert!(res.is_err());
        }
    }
}
