//! Offline stub of the `parking_lot` API surface this workspace uses.
//!
//! Wraps `std::sync` primitives and papers over poisoning (a panicking
//! thread does not poison the lock for everyone else), which matches
//! `parking_lot` semantics closely enough for this codebase: locks guard
//! plain data, never invariants that a panic could tear.

#![warn(missing_docs)]

use std::sync::{self, TryLockError};

/// A mutex whose `lock` does not return a poison `Result`.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock whose guards do not return poison `Result`s.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write lock, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub fn new() -> Self {
        Condvar::default()
    }

    /// Block until notified. Unlike std, takes the guard by `&mut`.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_mut_guard(guard, |g| {
            let g = match self.inner.wait(g) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            (g, ())
        });
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        take_mut_guard(guard, |g| match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, WaitTimeoutResult(r.timed_out())),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, WaitTimeoutResult(r.timed_out()))
            }
        })
    }

    /// Block until notified or `deadline` is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: std::time::Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(std::time::Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Whether a timed wait returned because the timeout elapsed (as opposed
/// to a notification).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait timed out without a notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Replace a guard in place through a consuming closure (needed because
/// `std`'s `Condvar` waits consume and return the guard while
/// `parking_lot`'s take `&mut`), forwarding the closure's extra result.
fn take_mut_guard<'a, T, R, F>(slot: &mut MutexGuard<'a, T>, f: F) -> R
where
    F: FnOnce(MutexGuard<'a, T>) -> (MutexGuard<'a, T>, R),
{
    // SAFETY: `slot` is forgotten before being overwritten, and `f` either
    // returns a valid guard or diverges by panicking, in which case the
    // duplicated guard has already been consumed by `f` itself.
    unsafe {
        let guard = std::ptr::read(slot);
        let (new, out) = f(guard);
        std::ptr::write(slot, new);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
