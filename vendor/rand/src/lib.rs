//! Offline stub of the `rand` 0.8 API surface this workspace uses.
//!
//! [`rngs::StdRng`] is xoshiro256** seeded via SplitMix64 — a different
//! stream than upstream's ChaCha12 `StdRng`, but every consumer in this
//! workspace only relies on seeded *determinism* and reasonable uniformity,
//! never on the exact upstream stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Map 64 random bits to a uniform f64 in [0, 1).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range range");
                let u = unit_f64(rng.next_u64()) as $t;
                start + u * (end - start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expands the seed into full state; an
            // all-zero state (possible only if all four draws are zero) is
            // avoided by construction since SplitMix64 is a bijection over
            // distinct increments.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s == [0, 0, 0, 0] {
                s = [0xDEAD_BEEF, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100)
            .filter(|_| a.gen_range(0..100u64) == c.gen_range(0..100u64))
            .count();
        assert!(same < 50, "different seeds should diverge");
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10i64);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
            let g = rng.gen_range(-0.5..=0.5f64);
            assert!((-0.5..=0.5).contains(&g));
            let u = rng.gen_range(0..7usize);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
