//! Offline stub of the `criterion` API surface this workspace uses.
//!
//! Runs each benchmark closure `sample_size` times after one warm-up
//! iteration and prints a one-line plain-text summary (mean / min / max
//! wall time per iteration). No statistical analysis, no HTML reports —
//! enough to keep `cargo bench` targets compiling and producing useful
//! relative numbers without a registry.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Drives timed iterations of one benchmark.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, running one warm-up iteration then `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.durations.clear();
        self.durations.reserve(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(f());
            self.durations.push(t.elapsed());
        }
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

const DEFAULT_SAMPLE_SIZE: usize = 20;

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, &id.into(), DEFAULT_SAMPLE_SIZE, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), &id.into(), self.sample_size, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id.into(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (report separator).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: &BenchmarkId,
    samples: usize,
    mut f: F,
) {
    let mut b = Bencher {
        samples,
        durations: Vec::new(),
    };
    f(&mut b);
    let n = b.durations.len().max(1);
    let total: Duration = b.durations.iter().sum();
    let mean = total / n as u32;
    let min = b.durations.iter().min().copied().unwrap_or_default();
    let max = b.durations.iter().max().copied().unwrap_or_default();
    let full = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    eprintln!(
        "bench {full:<48} mean {:>12.3?}  min {:>12.3?}  max {:>12.3?}  ({n} samples)",
        mean, min, max
    );
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0usize;
        group.sample_size(3).bench_function("count", |b| {
            b.iter(|| runs += 1);
        });
        group.bench_with_input(BenchmarkId::new("with", 7), &7usize, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        // one warm-up + three samples
        assert_eq!(runs, 4);
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }
}
