//! Offline stub of the `proptest` API surface this workspace uses.
//!
//! Differences from upstream, by design:
//!
//! * cases are generated from a deterministic per-test seed (derived from
//!   the test name and case index), so runs are reproducible without
//!   `.proptest-regressions` persistence files (which are ignored);
//! * the `PROPTEST_CASES` environment variable overrides every test's
//!   configured case count — CI's stress passes elevate it while keeping
//!   the same deterministic seeds;
//! * there is **no shrinking** — a failing case reports its case index and
//!   panics with the failed assertion;
//! * only the combinators this workspace calls are provided: range and
//!   tuple strategies, `Just`, `any`, `prop_map`, `prop_oneof!`,
//!   `collection::vec`, `proptest!`, `prop_assert!`, `prop_assert_eq!`.

#![warn(missing_docs)]

/// Test-runner configuration and error types.
pub mod test_runner {
    /// A failed property case (carries the rendered assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    /// Result of one property case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration. Only `cases` is honored by the stub; the
    /// other fields keep upstream-style struct-update syntax compiling.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Unused (kept for upstream source compatibility).
        pub max_shrink_iters: u32,
        /// Unused (kept for upstream source compatibility).
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
                max_global_rejects: 1024,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use std::ops::Range;
    use std::sync::Arc;

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe core (`generate`); combinators are `Sized`-gated.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Arc::new(self),
            }
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        inner: Arc<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy producing one fixed (cloned) value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among equally weighted alternatives
    /// (`prop_oneof!`'s backing strategy).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from at least one alternative.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Types with a canonical full-domain strategy (see [`any`]).
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            use rand::RngCore;
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over a type's full domain.
    #[derive(Clone, Debug, Default)]
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s full domain.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use std::ops::Range;

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Strategy for vectors with lengths drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector strategy: `size` many elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[doc(hidden)]
pub mod __runtime {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// FNV-1a over the test name: stable per-test seed base.
    pub fn name_seed(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// RNG for one case of one property test.
    pub fn case_rng(name: &str, case: u32) -> StdRng {
        StdRng::seed_from_u64(name_seed(name) ^ ((case as u64) << 32 | 0x5EED))
    }

    /// Effective case count: the `PROPTEST_CASES` environment variable
    /// overrides the per-test config when set (CI uses it for seeded
    /// high-iteration stress passes; seeds stay per-test-name, so the
    /// extra cases are reproducible).
    pub fn effective_cases(configured: u32) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(configured)
    }
}

/// Define property tests: an optional `#![proptest_config(..)]` followed by
/// `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let cases = $crate::__runtime::effective_cases(cfg.cases);
                for case in 0..cases {
                    let mut rng = $crate::__runtime::case_rng(stringify!($name), case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: $crate::test_runner::TestCaseResult =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), case, cases, e.0
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice among the listed strategies (equal weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Property-test assertion: fails the current case (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)+),
            ));
        }
    };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l != *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vec_generate_in_bounds() {
        let mut rng = crate::__runtime::case_rng("self_test", 0);
        let s = (0i64..10, 0.0f64..1.0);
        for _ in 0..100 {
            let (a, b) = s.generate(&mut rng);
            assert!((0..10).contains(&a));
            assert!((0.0..1.0).contains(&b));
        }
        let v = crate::collection::vec(0u8..5, 2..4).generate(&mut rng);
        assert!(v.len() == 2 || v.len() == 3);
        assert!(v.iter().all(|&x| x < 5));
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(0u8), Just(1u8), (2u8..4).prop_map(|x| x)];
        let mut rng = crate::__runtime::case_rng("oneof", 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "seen {seen:?}");
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The proptest! macro itself round-trips args and assertions.
        #[test]
        fn macro_binds_arguments(
            x in 0u32..100,
            pair in (0i64..5, 0i64..5),
            items in crate::collection::vec(any::<bool>(), 0..8),
        ) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 5 && pair.1 < 5, "pair out of range: {:?}", pair);
            prop_assert!(items.len() < 8, "vec len out of range: {}", items.len());
            prop_assert_ne!(x as i64, 1000i64);
        }
    }
}
