#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merging.
#
# Runs formatting, lints (warnings are errors), a release build, and the
# full test suite. Any failure fails the gate.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build -p rheem-core --no-default-features"
cargo build -p rheem-core --no-default-features

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo test --workspace --release"
cargo test --workspace -q --release

# Seeded fault-injection stress pass: the vendored proptest stub derives
# each case's RNG from the test name + case index, so elevating the case
# count explores more injected outages while staying fully reproducible.
echo "==> fault-injection stress pass (PROPTEST_CASES=64)"
PROPTEST_CASES=64 cargo test -q --release --test fault_tolerance

# Kernel-parallelism determinism smoke: the same suite must pass with the
# morsel layer pinned off (threads=1) and at the ambient default — parallel
# kernels are byte-identical to their sequential twins either way.
echo "==> kernel determinism smoke (RHEEM_KERNEL_THREADS=1 vs default)"
RHEEM_KERNEL_THREADS=1 cargo test -q --release --test kernel_parallelism
cargo test -q --release --test kernel_parallelism

# Columnar determinism smoke: the chunk kernels and the fused-pipeline
# executor path must stay byte-identical to the record-at-a-time kernels,
# again with the morsel layer pinned off and at the ambient default.
echo "==> chunk-vs-record determinism smoke (RHEEM_KERNEL_THREADS=1 vs default)"
RHEEM_KERNEL_THREADS=1 cargo test -q --release --test columnar_kernels
cargo test -q --release --test columnar_kernels

# Hash-engine collision smoke: seeded adversarial key sets (hundreds of
# distinct keys crafted into one radix bucket) through grouping, typed
# reduction, and both joins — byte-identical to the row kernels with the
# morsel layer pinned off and at the ambient default, plus the
# end-to-end plan under both schedule modes.
echo "==> hash-engine collision smoke (RHEEM_KERNEL_THREADS=1 vs default)"
RHEEM_KERNEL_THREADS=1 cargo test -q --release --test hash_semantics
cargo test -q --release --test hash_semantics

# The committed kernel-ablation numbers must carry the columnar join
# entries and the timer-resolution honesty flag (sub-resolution timings
# are flagged, never reported as inflated speedups).
echo "==> BENCH_kernels.json schema check"
for key in '"bench": "ablation_kernels"' '"timer_resolution_ms"' \
    '"below_timer_resolution"' '"kernel":"hash_join"' \
    '"kernel":"sort_merge_join"' '"kernel":"hash_group"'; do
  grep -qF "$key" BENCH_kernels.json \
    || { echo "BENCH_kernels.json missing $key"; exit 1; }
done

# Enumeration-v2 oracle smoke: the lattice enumerator must match the
# exhaustive optimum on every sampled plan (seeded vendored proptest —
# reproducible), including under random calibration tables and config
# variations.
echo "==> enumeration v2 vs exhaustive oracle (PROPTEST_CASES=32)"
PROPTEST_CASES=32 cargo test -q --release --test enumeration_v2

# Enumeration ablation, quick mode: re-derives BENCH_enumeration.json and
# asserts inline that v2 equals the oracle on the small sweep and that the
# 120-op plan stays on the lattice path within the default budget; then
# sanity-check the emitted schema.
echo "==> ablation_enumeration (ENUM_BENCH_QUICK=1) + schema check"
ENUM_BENCH_QUICK=1 cargo bench -q -p rheem-bench --bench ablation_enumeration
for key in '"bench": "ablation_enumeration"' '"entries"' '"costs_match":true' \
    '"shape":"large"' '"within_budget":true'; do
  grep -qF "$key" BENCH_enumeration.json \
    || { echo "BENCH_enumeration.json missing $key"; exit 1; }
done

# Server smoke: start a real server, run two concurrent tenant sessions
# over live sockets (registration, queries, stats, goodbye), and verify a
# clean shutdown — the release-mode run of the dedicated integration test.
echo "==> server smoke (2 concurrent sessions + clean shutdown)"
cargo test -q --release -p rheem-server --test server_smoke

# Cancellation/panic chaos smoke: seeded random plans, cancel points, and
# panicking UDFs against the shared job service (both schedule modes via
# the proptest strategy; the vendored proptest stub seeds each case from
# the test name, so the sweep is reproducible), plus the deterministic
# mid-morsel cancel, deadline-shed, idle-eviction, and bounded-shutdown
# integration tests.
echo "==> cancellation/panic chaos smoke (PROPTEST_CASES=16)"
PROPTEST_CASES=16 cargo test -q --release -p rheem-server --test cancellation

# Server load generator, quick mode: closed-loop multi-tenant run that
# asserts fair-share wave interleaving, a nonzero plan-cache hit rate,
# byte-identical cached outputs, and post-cancel-storm serviceability
# inline; then sanity-check the emitted BENCH_server.json schema.
echo "==> ablation_server (SERVER_BENCH_QUICK=1) + schema check"
SERVER_BENCH_QUICK=1 cargo bench -q -p rheem-bench --bench ablation_server
for key in '"bench": "ablation_server"' '"tenants": 2' '"throughput_rps"' \
    '"p50"' '"p99"' '"per_tenant"' '"grant_switches"' '"hit_rate"' \
    '"cancel_storm"' '"shed_deadline"' '"outputs_match": true'; do
  grep -qF "$key" BENCH_server.json \
    || { echo "BENCH_server.json missing $key"; exit 1; }
done

echo "OK: all tier-1 checks passed"
