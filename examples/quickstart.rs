//! Quickstart: build a small analytic task once, let RHEEM pick the
//! platform, and inspect the execution plan and statistics.
//!
//! Run with: `cargo run --example quickstart --release`

use std::sync::Arc;

use rheem::prelude::*;
use rheem::rec;

fn main() -> Result<(), RheemError> {
    // 1. Register the available processing platforms. Applications never
    //    reference them again — that's the platform independence the paper
    //    argues for.
    let ctx = RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_platform(Arc::new(SparkLikePlatform::new(4)))
        .with_platform(Arc::new(RelationalPlatform::new()));

    // 2. Express the task against the abstraction: word count over a tiny
    //    document collection.
    let docs = vec![
        rec!["the road to freedom"],
        rec!["freedom in big data analytics"],
        rec!["the data road"],
    ];
    let mut b = PlanBuilder::new();
    let src = b.collection("docs", docs);
    let words = b.flat_map(
        src,
        FlatMapUdf::new("tokenize", |r| {
            r.str(0)
                .unwrap_or("")
                .split_whitespace()
                .map(|w| rec![w, 1i64])
                .collect()
        })
        .with_fanout(4.0),
    );
    let counts = b.reduce_by_key(
        words,
        KeyUdf::field(0),
        ReduceUdf::new("sum", |a, x| {
            rec![a.str(0).unwrap(), a.int(1).unwrap() + x.int(1).unwrap()]
        }),
    );
    let top = b.sort(counts, KeyUdf::field(1), true);
    let sink = b.collect(top);
    let plan = b.build()?;

    // 3. Optimize: the multi-platform optimizer assigns every operator to
    //    a platform and splits the plan into task atoms.
    let exec = ctx.optimize(plan)?;
    println!("execution plan:\n{}", exec.explain());

    // 4. Run and inspect.
    let result = ctx.execute_plan(&exec)?;
    println!("word counts:");
    for r in result.outputs[&sink].iter() {
        println!("  {:>2}  {}", r.int(1)?, r.str(0)?);
    }
    println!("\nexecution report:\n{}", result.stats.explain());
    Ok(())
}
