//! Graph analytics on RHEEM (the third application announced in paper §5):
//! PageRank, connected components, and triangle counting over a synthetic
//! web-like graph — all expressed as ordinary RHEEM plans.
//!
//! Run with: `cargo run --example graph_analytics --release`

use std::sync::Arc;

use rheem::prelude::*;
use rheem_datagen::graph::{disjoint_cycles, preferential_attachment};
use rheem_graph::{component_count, ConnectedComponents, PageRank};

fn main() -> Result<(), RheemError> {
    let ctx = RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_platform(Arc::new(SparkLikePlatform::new(8)));

    // A scale-free graph: preferential attachment grows hubs.
    let edges = preferential_attachment(2_000, 2, 11);
    println!(
        "graph: 2000 nodes, {} edges (preferential attachment)\n",
        edges.len()
    );

    // PageRank.
    let (ranks, result) = PageRank::default()
        .with_iterations(15)
        .run(&ctx, edges.clone())?;
    println!(
        "PageRank (15 iterations, {:.1} simulated ms on {:?}); top 5:",
        result.stats.total_simulated_ms(),
        result.stats.platforms_used()
    );
    for (node, rank) in ranks.iter().take(5) {
        println!("  node {node:>4}  rank {rank:.5}");
    }

    // Connected components on a graph with known structure.
    let cc_edges = disjoint_cycles(5, 40);
    let (labels, _) = ConnectedComponents::default()
        .with_iterations(25)
        .run(&ctx, cc_edges)?;
    println!(
        "\nconnected components: found {} components across {} nodes (expected 5)",
        component_count(&labels),
        labels.len()
    );

    // Triangle counting.
    let (triangles, result) = rheem_graph::triangles::count(&ctx, edges)?;
    println!(
        "\ntriangles: {triangles} (counted in {:.1} simulated ms)",
        result.stats.total_simulated_ms()
    );
    Ok(())
}
