//! Platform-independent machine learning (paper §3.1 Example 1 and
//! Figure 2): the same SVM training plan runs unchanged on the
//! single-process engine and the Spark-like engine; K-means is built from
//! `GetCentroid`/`SetCentroids` logical operators and lowered through the
//! declarative mapping registry.
//!
//! Run with: `cargo run --example ml_training --release`

use std::sync::Arc;

use rheem::prelude::*;
use rheem::rec;
use rheem_datagen::libsvm::{generate, LibsvmConfig};
use rheem_ml::{KMeansTrainer, SvmTrainer};

fn main() -> Result<(), RheemError> {
    // ------------------------------------------------------------------ SVM
    let dims = 10;
    let trainer = SvmTrainer::new(dims).with_iterations(100);

    println!("SVM, 100 iterations (the paper's Figure 2 setting):");
    for rows in [1_000usize, 50_000] {
        let data = generate(&LibsvmConfig::new(rows, dims));
        let java = RheemContext::new().with_platform(Arc::new(JavaPlatform::new()));
        let spark = RheemContext::new().with_platform(Arc::new(SparkLikePlatform::new(8)));
        let (m1, r1) = trainer.train(&java, data.clone())?;
        let (m2, r2) = trainer.train(&spark, data.clone())?;
        println!(
            "  {rows:>6} rows: java {:>9.1} ms  spark-like {:>9.1} ms  (accuracy {:.3} / {:.3})",
            r1.stats.total_simulated_ms(),
            r2.stats.total_simulated_ms(),
            m1.accuracy(&data)?,
            m2.accuracy(&data)?,
        );
    }

    // With platform *selection* the user never chooses: register both and
    // let the optimizer pick per input size.
    let both = RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_platform(Arc::new(SparkLikePlatform::new(8)));
    for rows in [1_000usize, 50_000] {
        let data = generate(&LibsvmConfig::new(rows, dims));
        let (plan, _) = trainer.build_plan(data)?;
        let exec = both.optimize(plan)?;
        println!(
            "  optimizer picks {:?} for {rows} rows (estimated {:.0} ms)",
            exec.assignments.last().expect("nodes"),
            exec.estimated_cost
        );
    }

    // --------------------------------------------------------------- K-means
    println!("\nK-means via logical operators (paper §3.2 example):");
    let mut points = Vec::new();
    for (cx, cy) in [(0.0, 0.0), (8.0, 8.0), (-8.0, 6.0)] {
        for i in 0..200 {
            let jitter = (i as f64 * 0.618).fract() - 0.5;
            points.push(rec![cx + jitter, cy - jitter]);
        }
    }
    let kmeans = KMeansTrainer::new(3, 2).with_iterations(15);
    let (clustering, result) = kmeans.train(&both, &points)?;
    for (cid, c) in &clustering.centroids {
        println!("  centroid {cid}: ({:+.2}, {:+.2})", c[0], c[1]);
    }
    println!(
        "  trained on {:?} in {:.1} simulated ms",
        result.stats.platforms_used(),
        result.stats.total_simulated_ms()
    );
    Ok(())
}
