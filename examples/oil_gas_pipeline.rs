//! The paper's §1 motivating scenario: an Oil & Gas analytic pipeline that
//! no single platform serves well.
//!
//! "An application supporting such a complex analytic pipeline has to
//! access several sources for historical data ..., remove the noise from
//! the streaming data coming from the sensors, and run both traditional
//! (such as SQL) and statistical analytics (such as ML algorithms) over
//! different processing platforms."
//!
//! This example wires all of it together:
//! 1. raw downhole sensor readings live in the simulated HDFS;
//! 2. well metadata lives in the relational store;
//! 3. the plan cleans the readings (UDF filter), joins them with well
//!    metadata (relational-friendly equi-join), aggregates per well, and
//!    hands per-well features to a regression model trained with an
//!    iterative loop;
//! 4. the multi-platform optimizer decides where every operator runs —
//!    printing the mixed execution plan.
//!
//! Run with: `cargo run --example oil_gas_pipeline --release`

use std::sync::Arc;

use rheem::prelude::*;
use rheem::rec;
use rheem_core::platform::StorageService;
use rheem_datagen::relational::{plausible_pressure, sensor_readings};
use rheem_ml::LinRegTrainer;
use rheem_storage::{MemStore, RelationalStore, SimHdfsConfig, SimHdfsStore};

fn main() -> Result<(), RheemError> {
    // ---------------------------------------------------------- storage side
    let storage = Arc::new(
        StorageLayer::new(Arc::new(SimHdfsStore::new(
            "hdfs",
            SimHdfsConfig::default(),
        )))
        .with_store(Arc::new(RelationalStore::new("db")))
        .with_store(Arc::new(MemStore::new("mem")))
        .with_hot_buffer(1_000_000),
    );

    // Sensor readings land on the distributed FS (400k readings, 24 wells).
    let readings = Dataset::new(sensor_readings(400_000, 24, 0.05, 42));
    storage.write("sensor-readings", &readings)?;
    storage.place("sensor-readings", "hdfs");
    storage
        .store("hdfs")
        .expect("registered")
        .write("sensor-readings", &readings)?;

    // Well metadata sits in the relational store: [well_id, depth_km].
    let wells: Vec<Record> = (0..24i64)
        .map(|w| rec![w, 1.0 + (w % 7) as f64 * 0.35])
        .collect();
    storage
        .store("db")
        .expect("registered")
        .write("wells", &Dataset::new(wells.clone()))?;
    storage.place("wells", "db");

    // -------------------------------------------------------- processing side
    let mut ctx = RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_platform(Arc::new(SparkLikePlatform::new(8)))
        .with_platform(Arc::new(MapReduceLikePlatform::new(8)))
        .with_platform(Arc::new(RelationalPlatform::new()))
        .with_storage(storage.clone());
    ctx.optimizer_mut()
        .estimator
        .hint("sensor-readings", 400_000.0);
    ctx.optimizer_mut().estimator.hint("wells", 24.0);
    // This deployment's engines share a fast interconnect: cheap movement
    // makes genuinely mixed plans attractive.
    ctx.optimizer_mut().movement = rheem_core::cost::MovementCostModel::new(0.2, 2e-5);

    // The analytic task, written once against the abstraction.
    let mut b = PlanBuilder::new();
    let raw = b.storage_source("sensor-readings");
    // Clean: drop implausible readings (transmission glitches).
    let clean = b.filter(
        raw,
        FilterUdf::new("plausible", |r| {
            plausible_pressure(r.float(2).unwrap_or(-1.0))
        })
        .with_selectivity(0.95),
    );
    // Aggregate mean pressure per well.
    let per_well = b.group_by(
        clean,
        KeyUdf::field(1).with_distinct_keys(24.0),
        GroupMapUdf::new("mean-pressure", |well, members| {
            let mean = members
                .iter()
                .map(|r| r.float(2).expect("pressure"))
                .sum::<f64>()
                / members.len().max(1) as f64;
            vec![Record::new(vec![well.clone(), mean.into()])]
        }),
    );
    // Join with well metadata (classic relational work).
    let wells_src = b.storage_source("wells");
    let joined = b.hash_join(per_well, wells_src, KeyUdf::field(0), KeyUdf::field(0));
    // [well, mean_pressure, well, depth] -> regression row [target=pressure, depth].
    let features = b.map(
        joined,
        MapUdf::new("featurize", |r| {
            rec![r.float(1).expect("pressure"), r.float(3).expect("depth")]
        }),
    );
    let sink = b.collect(features);
    let plan = b.build()?;

    let exec = ctx.optimize(plan)?;
    println!("mixed execution plan (note the per-operator platforms):\n");
    println!("{}", exec.explain());
    let result = ctx.execute_plan(&exec)?;
    println!(
        "pipeline ran on platforms {:?}; simulated {:.1} ms (movement {:.1} ms)\n",
        result.stats.platforms_used(),
        result.stats.total_simulated_ms(),
        result.stats.total_movement_ms,
    );

    // ------------------------------------------------- downstream ML training
    // "geologists formulate hypotheses and verify them with ML methods,
    // such as regression" — pressure as a function of well depth.
    let rows = result.outputs[&sink].records().to_vec();
    let (model, train_result) = LinRegTrainer::new(1)
        .with_iterations(200)
        .train(&ctx, rows.clone())?;
    println!(
        "trained pressure ~ depth regression on {:?}: pressure ≈ {:.2} + {:.2}·depth (mse {:.3})",
        train_result.stats.platforms_used(),
        model.bias,
        model.weights[0],
        model.mse(&rows)?,
    );

    if let Some(hot) = storage.hot_stats() {
        println!("hot-data buffer: {} hits / {} misses", hot.hits, hot.misses);
    }
    Ok(())
}
