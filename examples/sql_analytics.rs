//! The declarative path (paper §3.2): SQL in, multi-platform execution out.
//!
//! "An application developer could also expose a declarative language for
//! users to define their tasks (e.g., queries). The application is then
//! responsible for translating a declarative query into a logical plan."
//!
//! Run with: `cargo run --example sql_analytics --release`

use std::sync::Arc;

use rheem::prelude::*;
use rheem_core::data::DataType;
use rheem_core::query::QueryCatalog;
use rheem_datagen::relational::{customers, orders};

fn main() -> Result<(), RheemError> {
    let ctx = RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_platform(Arc::new(SparkLikePlatform::new(8)))
        .with_platform(Arc::new(RelationalPlatform::new()));

    // Register the tables once, with schemas.
    let mut catalog = QueryCatalog::new();
    catalog.register(
        "orders",
        Schema::new(vec![
            ("id", DataType::Int),
            ("cust", DataType::Int),
            ("amount", DataType::Float),
        ]),
        orders(100_000, 5_000, 7),
    );
    catalog.register(
        "customers",
        Schema::new(vec![
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("region", DataType::Str),
        ]),
        customers(5_000, 8, 8),
    );

    let sql = "SELECT region, COUNT(*) AS n, SUM(amount) AS revenue, AVG(amount) AS mean \
               FROM orders JOIN customers ON orders.cust = customers.id \
               WHERE amount > 250 \
               GROUP BY region \
               HAVING n > 100 \
               ORDER BY revenue DESC \
               LIMIT 5";
    println!("query:\n  {sql}\n");

    let result = catalog.execute(&ctx, sql)?;
    let header: Vec<&str> = result
        .schema
        .fields()
        .iter()
        .map(|f| f.name.as_str())
        .collect();
    println!("{}", header.join("\t"));
    for row in result.rows.iter() {
        let cells: Vec<String> = row.fields().iter().map(|v| v.to_string()).collect();
        println!("{}", cells.join("\t"));
    }
    println!(
        "\nexecuted on {:?} in {:.1} simulated ms ({} task atoms)",
        result.job.stats.platforms_used(),
        result.job.stats.total_simulated_ms(),
        result.job.stats.atoms.len(),
    );
    Ok(())
}
