//! BigDansing in action (paper §5): declare data quality rules, detect
//! violations under several physical strategies, and repair.
//!
//! Run with: `cargo run --example data_cleaning --release`

use std::sync::Arc;

use rheem::prelude::*;
use rheem_cleaning::{
    count_violations, detect, gen_fixes, not_null, range_check, repair_fd, DenialConstraint,
    DetectionStrategy,
};
use rheem_datagen::tax::{columns, generate, TaxConfig};

fn main() -> Result<(), RheemError> {
    let ctx = RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_platform(Arc::new(SparkLikePlatform::new(8)));

    // A dirty tax dataset (the BigDansing evaluation workload).
    let (data, injected) = generate(
        &TaxConfig::new(20_000)
            .with_seed(7)
            .with_error_rates(0.01, 0.0005),
    );
    println!(
        "generated {} tax records with {} FD-dirty and {} inequality-dirty records\n",
        data.len(),
        injected.fd_dirty_records,
        injected.ineq_dirty_records
    );

    // Rule 1: the FD zip → state.
    let fd = DenialConstraint::functional_dependency(
        "zip-determines-state",
        columns::ID,
        columns::ZIP,
        columns::STATE,
    );
    // Rule 2: nobody earns more yet pays a lower rate.
    let ineq = DenialConstraint::inequality(
        "higher-salary-higher-rate",
        columns::ID,
        columns::SALARY,
        columns::TAX_RATE,
    );

    // Detection under different physical strategies. Granularity matters
    // on the *distributed* engine (Figure 3 left), so pin these runs there.
    let spark_ctx = RheemContext::new().with_platform(Arc::new(SparkLikePlatform::new(8)));
    println!("rule: {} (on the Spark-like engine)", fd.name);
    for strategy in [
        DetectionStrategy::OperatorPipeline,
        DetectionStrategy::SingleUdf,
    ] {
        let (violations, result) = detect(&spark_ctx, data.clone(), &fd, strategy)?;
        println!(
            "  {strategy:?}: {} violations, simulated {:.1} ms",
            violations.len(),
            result.stats.total_simulated_ms(),
        );
    }

    println!("rule: {}", ineq.name);
    for strategy in [DetectionStrategy::IeJoin, DetectionStrategy::CrossProduct] {
        let (violations, result) = detect(&ctx, data.clone(), &ineq, strategy)?;
        println!(
            "  {strategy:?}: {} violations, simulated {:.1} ms",
            violations.len(),
            result.stats.total_simulated_ms(),
        );
    }

    // GenFix + repair: majority-vote equivalence-class repair for the FD.
    let (violations, _) = detect(&ctx, data.clone(), &fd, DetectionStrategy::OperatorPipeline)?;
    let fixes = gen_fixes(&data, &fd, &violations)?;
    println!(
        "\nGenFix proposed {} candidate fixes for {} violations",
        fixes.len(),
        violations.len()
    );
    let repaired = repair_fd(&data, &fd)?;
    let remaining = count_violations(&ctx, repaired, &fd, DetectionStrategy::OperatorPipeline)?;
    println!("after equivalence-class repair: {remaining} violations remain");

    // Unary (single-tuple) rules complete the rule set: domain checks need
    // no pairing at all.
    println!(
        "
unary rules:"
    );
    let (below, above) = range_check("plausible-salary", columns::ID, columns::SALARY, 1.0, 1e7);
    for rule in [
        not_null("state-present", columns::ID, columns::STATE),
        below,
        above,
    ] {
        let (violations, _) = rule.detect(&ctx, data.clone())?;
        println!("  {}: {} violations", rule.name, violations.len());
    }

    // Operator mappings are declarative: a spec file can re-route the
    // grouping algorithm the cleaning pipeline's Block step uses, without
    // touching any code (§8 challenge 1).
    let mut ctx = ctx;
    let loaded = ctx
        .optimizer_mut()
        .mappings
        .load_spec("kind:Group prefers SortGroupBy  # cluster blocks on disk-friendly order")?;
    println!(
        "
loaded {loaded} mapping fact(s); Block now lowers to SortGroupBy"
    );
    Ok(())
}
