//! A lambda architecture on RHEEM (paper §2: "many companies are already
//! adopting a lambda architecture, which combines both batch and stream
//! processing").
//!
//! * **Batch layer** — the full historical sensor archive is aggregated on
//!   the heavyweight engines (the optimizer picks; at this size it favours
//!   the relational/partitioned engines).
//! * **Speed layer** — fresh readings arrive as micro-batches; each batch
//!   runs the *same* aggregation template, landing on the single-process
//!   engine because batches are tiny (Figure 2's small-data side, applied).
//! * **Serving layer** — batch and speed views merge into one answer.
//!
//! Run with: `cargo run --example lambda_architecture --release`

use std::collections::HashMap;
use std::sync::Arc;

use rheem::prelude::*;
use rheem::rec;
use rheem_core::streaming::{micro_batches, MicroBatchDriver};
use rheem_datagen::relational::sensor_readings;

/// The shared aggregation template: per-sensor (count, sum of pressure).
fn aggregate(b: &mut PlanBuilder, src: rheem_core::NodeId) -> rheem_core::NodeId {
    let keyed = b.map(
        src,
        MapUdf::new("keyed", |r| {
            rec![
                r.int(1).expect("sensor"),
                1i64,
                r.float(2).expect("pressure")
            ]
        }),
    );
    b.reduce_by_key(
        keyed,
        KeyUdf::field(0).with_distinct_keys(16.0),
        ReduceUdf::new("count+sum", |a, x| {
            rec![
                a.int(0).unwrap(),
                a.int(1).unwrap() + x.int(1).unwrap(),
                a.float(2).unwrap() + x.float(2).unwrap()
            ]
        }),
    )
}

/// Merge a view's records into the serving state.
fn absorb(state: &mut HashMap<i64, (i64, f64)>, view: &Dataset) -> Result<(), RheemError> {
    for r in view.iter() {
        let e = state.entry(r.int(0)?).or_insert((0, 0.0));
        e.0 += r.int(1)?;
        e.1 += r.float(2)?;
    }
    Ok(())
}

fn main() -> Result<(), RheemError> {
    let ctx = RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_platform(Arc::new(SparkLikePlatform::new(8)))
        .with_platform(Arc::new(RelationalPlatform::new()));

    // 1M historical readings; 2k "live" readings in batches of 100.
    let history = sensor_readings(1_000_000, 16, 0.0, 1);
    let live = sensor_readings(2_000, 16, 0.0, 2);

    // ---- batch layer ------------------------------------------------------
    let mut b = PlanBuilder::new();
    let src = b.collection("history", history);
    let agg = aggregate(&mut b, src);
    let sink = b.collect(agg);
    let exec = ctx.optimize(b.build()?)?;
    let batch_platform = exec.assignments[1].clone();
    let batch_result = ctx.execute_plan(&exec)?;
    let mut serving: HashMap<i64, (i64, f64)> = HashMap::new();
    absorb(&mut serving, &batch_result.outputs[&sink])?;
    println!(
        "batch layer: 1000000 readings aggregated on `{batch_platform}` \
         in {:.1} simulated ms",
        batch_result.stats.total_simulated_ms()
    );

    // ---- speed layer ------------------------------------------------------
    let mut driver = MicroBatchDriver::new(aggregate);
    let mut speed_platforms: Vec<String> = Vec::new();
    serving = driver.run(
        &ctx,
        micro_batches(live, 100)?,
        serving,
        |state, outcome| {
            speed_platforms.extend(outcome.stats.platforms_used().iter().map(|s| s.to_string()));
            absorb(state, &outcome.output)
        },
    )?;
    speed_platforms.sort();
    speed_platforms.dedup();
    println!("speed layer: 20 micro-batches of 100 readings each, all on {speed_platforms:?}");

    // ---- serving layer ----------------------------------------------------
    println!("\nserving view (per-sensor mean pressure over batch + speed):");
    let mut sensors: Vec<_> = serving.iter().collect();
    sensors.sort_by_key(|(id, _)| **id);
    for (sensor, (count, sum)) in sensors.into_iter().take(5) {
        println!(
            "  sensor {sensor:>2}: {} readings, mean {:.1}",
            count,
            sum / *count as f64
        );
    }
    let total: i64 = serving.values().map(|(c, _)| c).sum();
    println!(
        "  ... {} sensors, {total} readings total (expected 1002000)",
        serving.len()
    );
    assert_eq!(total, 1_002_000);
    Ok(())
}
