//! Linear regression (least squares) on the gradient-descent template.
//!
//! Data layout is the same LIBSVM-style `[target, x_1, ..., x_d]`, with a
//! real-valued target instead of a ±1 label.

use std::sync::Arc;

use rheem_core::data::Record;
use rheem_core::error::Result;
use rheem_core::{JobResult, RheemContext};

use crate::gd::{train, ExampleGradient, GdConfig};
use crate::model::LinearModel;

/// Squared-error gradient: `2(w·x + b − y) · (x, 1)`.
fn squared_error_gradient() -> ExampleGradient {
    Arc::new(|x: &[f64], y: f64, model: &LinearModel| {
        let err = model.score(x) - y;
        ((x.iter().map(|xi| 2.0 * err * xi).collect()), 2.0 * err)
    })
}

/// Linear-regression trainer.
#[derive(Clone, Debug)]
pub struct LinRegTrainer {
    /// Gradient-descent hyper-parameters.
    pub config: GdConfig,
}

impl LinRegTrainer {
    /// A trainer for `dims`-dimensional data.
    pub fn new(dims: usize) -> Self {
        let mut config = GdConfig::new(dims).with_learning_rate(0.1);
        config.l2 = 0.0;
        LinRegTrainer { config }
    }

    /// Override the iteration count.
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        self.config = self.config.with_iterations(iterations);
        self
    }

    /// Train on the given context.
    pub fn train(&self, ctx: &RheemContext, data: Vec<Record>) -> Result<(LinearModel, JobResult)> {
        train(ctx, data, &self.config, "linreg", squared_error_gradient())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rheem_core::rec;
    use rheem_platforms::JavaPlatform;

    fn ctx() -> RheemContext {
        RheemContext::new().with_platform(Arc::new(JavaPlatform::new()))
    }

    fn synthetic_regression(n: usize, w: &[f64], b: f64, noise: f64, seed: u64) -> Vec<Record> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x: Vec<f64> = (0..w.len()).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let y = w.iter().zip(&x).map(|(wi, xi)| wi * xi).sum::<f64>()
                    + b
                    + rng.gen_range(-noise..=noise);
                let mut fields = vec![rheem_core::data::Value::Float(y)];
                fields.extend(x.into_iter().map(rheem_core::data::Value::Float));
                Record::new(fields)
            })
            .collect()
    }

    #[test]
    fn recovers_the_generating_model() {
        let true_w = [1.5, -2.0, 0.5];
        let data = synthetic_regression(400, &true_w, 0.7, 0.0, 11);
        let (model, _) = LinRegTrainer::new(3)
            .with_iterations(300)
            .train(&ctx(), data.clone())
            .unwrap();
        for (est, truth) in model.weights.iter().zip(&true_w) {
            assert!((est - truth).abs() < 0.05, "{est} vs {truth}");
        }
        assert!((model.bias - 0.7).abs() < 0.05);
        assert!(model.mse(&data).unwrap() < 1e-3);
    }

    #[test]
    fn noisy_data_still_fits_reasonably() {
        let data = synthetic_regression(400, &[2.0], -1.0, 0.1, 13);
        let (model, _) = LinRegTrainer::new(1)
            .with_iterations(200)
            .train(&ctx(), data.clone())
            .unwrap();
        assert!(model.mse(&data).unwrap() < 0.02);
    }

    #[test]
    fn trivial_constant_target() {
        let data = vec![rec![3.0f64, 0.0f64], rec![3.0f64, 0.0f64]];
        let (model, _) = LinRegTrainer::new(1)
            .with_iterations(100)
            .train(&ctx(), data)
            .unwrap();
        assert!((model.bias - 3.0).abs() < 1e-3);
    }
}
