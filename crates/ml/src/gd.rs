//! The shared gradient-descent training skeleton, expressed as a RHEEM
//! plan — the paper's Example 1 made concrete.
//!
//! The paper's developer "can define three basic operators: (i) Initialize,
//! for initializing algorithm-specific parameters, (ii) Process, for the
//! computations required by the ML algorithm, (iii) Loop, for specifying
//! the stopping condition. Users implement algorithms such as SVM, K-means,
//! and linear/logistic regression with them." [`build_training_plan`] is
//! that template for linear models: SVM, logistic regression, and linear
//! regression instantiate it with nothing but a per-example gradient UDF.
//!
//! The loop body (executed once per iteration, on whichever platform the
//! optimizer picked for the whole loop):
//!
//! ```text
//! state [w...,b] ──┐
//!                  ├─ CrossProduct ─ Map(per-example gradient) ─ GlobalReduce(sum)
//! data ────────────┘                                                   │
//! state ───────────── CrossProduct ──────────── Map(apply update) ◄────┘
//! ```

use std::sync::Arc;

use rheem_core::data::{Record, Value};
use rheem_core::error::Result;
use rheem_core::plan::{NodeId, PhysicalPlan, PlanBuilder};
use rheem_core::udf::{LoopCondUdf, MapUdf, ReduceUdf};
use rheem_core::{JobResult, RheemContext};

use crate::model::LinearModel;

/// Per-example gradient: given the feature slice `x`, the label, and the
/// current model, return the gradient contribution `(g ∈ R^d, g_bias)`.
pub type ExampleGradient = Arc<dyn Fn(&[f64], f64, &LinearModel) -> (Vec<f64>, f64) + Send + Sync>;

/// Hyper-parameters of the gradient-descent template.
#[derive(Clone, Debug)]
pub struct GdConfig {
    /// Feature dimensionality.
    pub dims: usize,
    /// Number of full-batch iterations (the paper's Figure 2 uses 100).
    pub iterations: u64,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
}

impl GdConfig {
    /// Defaults matching the paper's experiment: 100 iterations.
    pub fn new(dims: usize) -> Self {
        GdConfig {
            dims,
            iterations: 100,
            learning_rate: 0.5,
            l2: 1e-4,
        }
    }

    /// Override the iteration count.
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        self.iterations = iterations;
        self
    }

    /// Override the learning rate.
    pub fn with_learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }
}

/// Build the full training plan: `init state → Loop(body) → CollectSink`.
///
/// `data` must be LIBSVM-layout records `[label, x_1, ..., x_d]`. Returns
/// the plan and the sink node carrying the trained model record.
pub fn build_training_plan(
    data: Vec<Record>,
    config: &GdConfig,
    algorithm: &str,
    gradient: ExampleGradient,
) -> Result<(PhysicalPlan, NodeId)> {
    let n = data.len().max(1) as f64;
    let dims = config.dims;
    let (lr, l2) = (config.learning_rate, config.l2);

    // ----- loop body ------------------------------------------------------
    let mut body = PlanBuilder::new();
    let state = body.loop_input();
    let examples = body.collection(format!("{algorithm}-train-data"), data);
    // Pair every example with the (single-record) model state.
    let paired = body.cross_product(examples, state);
    let grad_udf = {
        let gradient = gradient.clone();
        MapUdf::new(format!("{algorithm}-gradient"), move |r: &Record| {
            // Layout: [label, x_1..x_d, w_0..w_{d-1}, b].
            let take = |i: usize| r.float(i).expect("training record layout");
            let label = take(0);
            let x: Vec<f64> = (1..=dims).map(take).collect();
            let model = LinearModel {
                weights: (dims + 1..=2 * dims).map(take).collect(),
                bias: take(2 * dims + 1),
            };
            let (g, gb) = gradient(&x, label, &model);
            let mut fields: Vec<Value> = g.into_iter().map(Value::Float).collect();
            fields.push(Value::Float(gb));
            Record::new(fields)
        })
    };
    let grads = body.map(paired, grad_udf);
    let summed = body.global_reduce(
        grads,
        ReduceUdf::new("sum-gradients", move |acc: Record, r: &Record| {
            let fields: Vec<Value> = acc
                .fields()
                .iter()
                .zip(r.fields())
                .map(|(a, b)| {
                    Value::Float(
                        a.as_float().expect("gradient floats")
                            + b.as_float().expect("gradient floats"),
                    )
                })
                .collect();
            Record::new(fields)
        }),
    );
    // Combine old state with the summed gradient and step.
    let update_in = body.cross_product(state, summed);
    let update_udf = MapUdf::new(format!("{algorithm}-update"), move |r: &Record| {
        // Layout: [w_0..w_{d-1}, b, g_0..g_{d-1}, g_b].
        let take = |i: usize| r.float(i).expect("update record layout");
        let mut fields = Vec::with_capacity(dims + 1);
        for i in 0..dims {
            let (w, g) = (take(i), take(dims + 1 + i));
            fields.push(Value::Float(w - lr * (l2 * w + g / n)));
        }
        let (b, gb) = (take(dims), take(2 * dims + 1));
        fields.push(Value::Float(b - lr * (gb / n)));
        Record::new(fields)
    });
    body.map(update_in, update_udf);
    let body = body.build_fragment()?;

    // ----- outer plan -----------------------------------------------------
    let mut b = PlanBuilder::new();
    let init = b.collection(
        format!("{algorithm}-init"),
        vec![LinearModel::zeros(dims).to_record()],
    );
    let trained = b.repeat(
        init,
        body,
        LoopCondUdf::fixed_iterations(config.iterations),
        config.iterations,
    );
    let sink = b.collect(trained);
    Ok((b.build()?, sink))
}

/// Run a training plan on a context and decode the model.
pub fn train(
    ctx: &RheemContext,
    data: Vec<Record>,
    config: &GdConfig,
    algorithm: &str,
    gradient: ExampleGradient,
) -> Result<(LinearModel, JobResult)> {
    let (plan, sink) = build_training_plan(data, config, algorithm, gradient)?;
    let result = ctx.execute(plan)?;
    let model = LinearModel::from_dataset(&result.outputs[&sink])?;
    Ok((model, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rheem_core::rec;
    use rheem_platforms::JavaPlatform;

    fn java_ctx() -> RheemContext {
        RheemContext::new().with_platform(Arc::new(JavaPlatform::new()))
    }

    /// Identity-gradient: the model never moves.
    #[test]
    fn zero_gradient_keeps_zero_model() {
        let data = vec![rec![1.0f64, 2.0f64], rec![-1.0f64, 3.0f64]];
        let cfg = GdConfig::new(1).with_iterations(5);
        let grad: ExampleGradient = Arc::new(|_, _, _| (vec![0.0], 0.0));
        let (model, result) = train(&java_ctx(), data, &cfg, "null", grad).unwrap();
        assert_eq!(model, LinearModel::zeros(1));
        assert_eq!(result.stats.platforms_used(), vec!["java"]);
    }

    /// A constant gradient moves the model linearly: after k iterations,
    /// w = -k · lr · g / n (modulo the tiny L2 term, which we zero out).
    #[test]
    fn constant_gradient_steps_linearly() {
        let data = vec![rec![1.0f64, 0.0f64]];
        let mut cfg = GdConfig::new(1).with_iterations(4).with_learning_rate(0.1);
        cfg.l2 = 0.0;
        let grad: ExampleGradient = Arc::new(|_, _, _| (vec![2.0], -1.0));
        let (model, _) = train(&java_ctx(), data, &cfg, "const", grad).unwrap();
        assert!((model.weights[0] - (-0.8)).abs() < 1e-12);
        assert!((model.bias - 0.4).abs() < 1e-12);
    }

    /// The gradient closure sees the evolving model state.
    #[test]
    fn gradient_sees_current_model() {
        let data = vec![rec![1.0f64, 1.0f64]];
        let mut cfg = GdConfig::new(1).with_iterations(3).with_learning_rate(1.0);
        cfg.l2 = 0.0;
        // Gradient = -w - 1 → w' = w + (w + 1) = 2w + 1: 0 → 1 → 3 → 7.
        let grad: ExampleGradient = Arc::new(|_, _, m| (vec![-m.weights[0] - 1.0], 0.0));
        let (model, _) = train(&java_ctx(), data, &cfg, "rec", grad).unwrap();
        assert!((model.weights[0] - 7.0).abs() < 1e-9);
    }
}
