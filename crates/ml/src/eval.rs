//! Model evaluation as RHEEM plans: scoring, train/test splits, and
//! cross-validation.
//!
//! Training produces a [`LinearModel`]; *using* it is also data processing,
//! so scoring runs through the same plan machinery (and therefore on
//! whichever platform the optimizer picks — large scoring jobs go to the
//! partitioned engine automatically).

use rheem_core::data::{Record, Value};
use rheem_core::error::{Result, RheemError};
use rheem_core::plan::{NodeId, PhysicalPlan, PlanBuilder};
use rheem_core::rec;
use rheem_core::udf::MapUdf;
use rheem_core::{JobResult, RheemContext};

use crate::model::LinearModel;

/// Deterministically split LIBSVM-layout records into train/test by a
/// position-hash (stable under reordering-free regeneration).
pub fn train_test_split(
    data: Vec<Record>,
    test_fraction: f64,
    seed: u64,
) -> (Vec<Record>, Vec<Record>) {
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (i, r) in data.into_iter().enumerate() {
        let mut z = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        if u < test_fraction.clamp(0.0, 1.0) {
            test.push(r);
        } else {
            train.push(r);
        }
    }
    (train, test)
}

/// Build a scoring plan: each record `[label, x...]` becomes
/// `[label, predicted_label, score]`.
pub fn build_scoring_plan(
    model: &LinearModel,
    data: Vec<Record>,
) -> Result<(PhysicalPlan, NodeId)> {
    let model = model.clone();
    let mut b = PlanBuilder::new();
    let src = b.collection("score-input", data);
    let scored = b.map(
        src,
        MapUdf::new("score", move |r: &Record| match model.score_record(r) {
            Ok(s) => {
                let pred = if s >= 0.0 { 1.0 } else { -1.0 };
                rec![r.float(0).unwrap_or(f64::NAN), pred, s]
            }
            Err(_) => Record::new(vec![Value::Null, Value::Null, Value::Null]),
        }),
    );
    let sink = b.collect(scored);
    Ok((b.build()?, sink))
}

/// Score a dataset; returns `(accuracy, job result)`.
pub fn evaluate(
    ctx: &RheemContext,
    model: &LinearModel,
    data: Vec<Record>,
) -> Result<(f64, JobResult)> {
    if data.is_empty() {
        return Err(RheemError::InvalidPlan("cannot evaluate on no data".into()));
    }
    let n = data.len();
    let (plan, sink) = build_scoring_plan(model, data)?;
    let result = ctx.execute(plan)?;
    let correct = result.outputs[&sink]
        .iter()
        .filter(|r| {
            matches!(
                (r.float(0), r.float(1)),
                (Ok(label), Ok(pred)) if (label >= 0.0) == (pred >= 0.0)
            )
        })
        .count();
    Ok((correct as f64 / n as f64, result))
}

/// K-fold cross-validation of any trainer closure; returns per-fold test
/// accuracy. `train` receives the fold's training records and returns a
/// model.
pub fn cross_validate<F>(
    ctx: &RheemContext,
    data: &[Record],
    folds: usize,
    mut train: F,
) -> Result<Vec<f64>>
where
    F: FnMut(&RheemContext, Vec<Record>) -> Result<LinearModel>,
{
    if folds < 2 || data.len() < folds {
        return Err(RheemError::InvalidPlan(format!(
            "need at least 2 folds and {folds} records, got {}",
            data.len()
        )));
    }
    let mut accuracies = Vec::with_capacity(folds);
    for fold in 0..folds {
        let mut train_set = Vec::new();
        let mut test_set = Vec::new();
        for (i, r) in data.iter().enumerate() {
            if i % folds == fold {
                test_set.push(r.clone());
            } else {
                train_set.push(r.clone());
            }
        }
        let model = train(ctx, train_set)?;
        let (acc, _) = evaluate(ctx, &model, test_set)?;
        accuracies.push(acc);
    }
    Ok(accuracies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svm::SvmTrainer;
    use rheem_datagen::libsvm::{generate, LibsvmConfig};
    use rheem_platforms::JavaPlatform;
    use std::sync::Arc;

    fn ctx() -> RheemContext {
        RheemContext::new().with_platform(Arc::new(JavaPlatform::new()))
    }

    #[test]
    fn split_is_deterministic_and_covering() {
        let data = generate(&LibsvmConfig::new(1000, 3));
        let (tr1, te1) = train_test_split(data.clone(), 0.3, 7);
        let (tr2, te2) = train_test_split(data.clone(), 0.3, 7);
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
        assert_eq!(tr1.len() + te1.len(), 1000);
        assert!(te1.len() > 200 && te1.len() < 400, "got {}", te1.len());
        // A different seed splits differently.
        let (tr3, _) = train_test_split(data, 0.3, 8);
        assert_ne!(tr1, tr3);
    }

    #[test]
    fn held_out_accuracy_is_high_on_separable_data() {
        let data = generate(&LibsvmConfig::new(600, 5).with_noise(0.0));
        let (train, test) = train_test_split(data, 0.25, 3);
        let (model, _) = SvmTrainer::new(5)
            .with_iterations(60)
            .train(&ctx(), train)
            .unwrap();
        let (acc, _) = evaluate(&ctx(), &model, test).unwrap();
        assert!(acc > 0.9, "held-out accuracy {acc}");
    }

    #[test]
    fn scoring_plan_reports_labels_predictions_scores() {
        let model = LinearModel {
            weights: vec![1.0],
            bias: 0.0,
        };
        let data = vec![rec![1.0f64, 2.0f64], rec![-1.0f64, -3.0f64]];
        let (plan, sink) = build_scoring_plan(&model, data).unwrap();
        let result = ctx().execute(plan).unwrap();
        let rows = result.outputs[&sink].records();
        assert_eq!(rows[0].float(1).unwrap(), 1.0);
        assert_eq!(rows[0].float(2).unwrap(), 2.0);
        assert_eq!(rows[1].float(1).unwrap(), -1.0);
    }

    #[test]
    fn cross_validation_runs_all_folds() {
        let data = generate(&LibsvmConfig::new(300, 4).with_noise(0.0));
        let accs = cross_validate(&ctx(), &data, 3, |ctx, train| {
            Ok(SvmTrainer::new(4).with_iterations(40).train(ctx, train)?.0)
        })
        .unwrap();
        assert_eq!(accs.len(), 3);
        for acc in accs {
            assert!(acc > 0.85, "fold accuracy {acc}");
        }
    }

    #[test]
    fn evaluate_rejects_empty_data() {
        let model = LinearModel::zeros(2);
        assert!(evaluate(&ctx(), &model, vec![]).is_err());
        assert!(cross_validate(&ctx(), &[], 3, |_, _| Ok(LinearModel::zeros(1))).is_err());
    }
}
