//! Linear SVM trained by full-batch subgradient descent on the hinge loss —
//! the algorithm behind the paper's Figure 2.

use std::sync::Arc;

use rheem_core::data::Record;
use rheem_core::error::Result;
use rheem_core::plan::{NodeId, PhysicalPlan};
use rheem_core::{JobResult, RheemContext};

use crate::gd::{build_training_plan, train, ExampleGradient, GdConfig};
use crate::model::LinearModel;

/// Hinge-loss subgradient: for `y(w·x+b) < 1`, contribute `(-y·x, -y)`.
fn hinge_gradient() -> ExampleGradient {
    Arc::new(|x: &[f64], y: f64, model: &LinearModel| {
        let margin = y * model.score(x);
        if margin < 1.0 {
            (x.iter().map(|xi| -y * xi).collect(), -y)
        } else {
            (vec![0.0; x.len()], 0.0)
        }
    })
}

/// SVM trainer configuration and entry points.
#[derive(Clone, Debug)]
pub struct SvmTrainer {
    /// Gradient-descent hyper-parameters.
    pub config: GdConfig,
}

impl SvmTrainer {
    /// A trainer for `dims`-dimensional data, 100 iterations (as in the
    /// paper's Figure 2).
    pub fn new(dims: usize) -> Self {
        SvmTrainer {
            config: GdConfig::new(dims),
        }
    }

    /// Override the iteration count.
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        self.config = self.config.with_iterations(iterations);
        self
    }

    /// Build the training plan without running it (for plan inspection and
    /// the benchmark harness).
    pub fn build_plan(&self, data: Vec<Record>) -> Result<(PhysicalPlan, NodeId)> {
        build_training_plan(data, &self.config, "svm", hinge_gradient())
    }

    /// Train on the given context; returns the model and the job result
    /// (with its execution statistics — platform choice, wall time).
    pub fn train(&self, ctx: &RheemContext, data: Vec<Record>) -> Result<(LinearModel, JobResult)> {
        train(ctx, data, &self.config, "svm", hinge_gradient())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rheem_datagen::libsvm::{generate, LibsvmConfig};
    use rheem_platforms::{JavaPlatform, OverheadConfig, SparkLikePlatform};

    fn java_ctx() -> RheemContext {
        RheemContext::new().with_platform(Arc::new(JavaPlatform::new()))
    }

    fn spark_ctx() -> RheemContext {
        RheemContext::new().with_platform(Arc::new(
            SparkLikePlatform::new(4).with_overheads(OverheadConfig::none()),
        ))
    }

    #[test]
    fn svm_learns_separable_data() {
        let data = generate(&LibsvmConfig::new(400, 6).with_noise(0.0));
        let trainer = SvmTrainer::new(6).with_iterations(60);
        let (model, _) = trainer.train(&java_ctx(), data.clone()).unwrap();
        let acc = model.accuracy(&data).unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn svm_is_platform_independent() {
        // Same plan, same data → numerically identical model on the
        // single-process and the partitioned platform (full-batch gradients
        // are order-insensitive up to float summation order; partition
        // sums can differ in the last ulps, so compare with tolerance).
        let data = generate(&LibsvmConfig::new(200, 4));
        let trainer = SvmTrainer::new(4).with_iterations(20);
        let (m1, r1) = trainer.train(&java_ctx(), data.clone()).unwrap();
        let (m2, r2) = trainer.train(&spark_ctx(), data).unwrap();
        assert_eq!(r1.stats.platforms_used(), vec!["java"]);
        assert_eq!(r2.stats.platforms_used(), vec!["sparklike"]);
        for (a, b) in m1.weights.iter().zip(&m2.weights) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert!((m1.bias - m2.bias).abs() < 1e-9);
    }

    #[test]
    fn more_iterations_do_not_hurt_training_accuracy_much() {
        let data = generate(&LibsvmConfig::new(300, 5).with_noise(0.0));
        let short = SvmTrainer::new(5).with_iterations(5);
        let long = SvmTrainer::new(5).with_iterations(80);
        let (m_short, _) = short.train(&java_ctx(), data.clone()).unwrap();
        let (m_long, _) = long.train(&java_ctx(), data.clone()).unwrap();
        let (a_short, a_long) = (
            m_short.accuracy(&data).unwrap(),
            m_long.accuracy(&data).unwrap(),
        );
        assert!(
            a_long >= a_short - 0.05,
            "long {a_long} much worse than short {a_short}"
        );
        assert!(a_long > 0.9);
    }
}
