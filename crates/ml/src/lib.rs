//! # rheem-ml
//!
//! The machine-learning application on top of RHEEM (one of the three
//! applications the paper builds or announces in §5). Algorithms are
//! expressed against the processing abstraction only — the same training
//! plan runs unchanged on any registered platform, which is precisely the
//! setup of the paper's Figure 2 experiment (SVM on Spark vs. plain Java).
//!
//! * [`gd`] — the Initialize/Process/Loop gradient-descent template
//!   (paper §3.1, Example 1);
//! * [`svm`] — hinge-loss SVM (Figure 2's algorithm);
//! * [`logreg`] / [`linreg`] — logistic and linear regression on the same
//!   template;
//! * [`kmeans`] — K-means built through the *logical* layer with
//!   `GetCentroid`/`SetCentroids` operators and a grouping enhancer
//!   (paper §3.2's example), lowered via the declarative mapping registry;
//! * [`model`] — the shared linear-model representation;
//! * [`eval`] — scoring plans, train/test splits, cross-validation.

#![warn(missing_docs)]

pub mod eval;
pub mod gd;
pub mod kmeans;
pub mod linreg;
pub mod logreg;
pub mod model;
pub mod svm;

pub use eval::{build_scoring_plan, cross_validate, evaluate, train_test_split};
pub use gd::{ExampleGradient, GdConfig};
pub use kmeans::{Clustering, KMeansTrainer};
pub use linreg::LinRegTrainer;
pub use logreg::LogRegTrainer;
pub use model::LinearModel;
pub use svm::SvmTrainer;
