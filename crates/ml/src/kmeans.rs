//! K-means clustering, built through the **logical layer** — the paper's
//! running example made executable.
//!
//! §3.2: "an application for K-means clustering might only expose the
//! `GetCentroid` (for getting the closest centroid of a data point) and
//! `SetCentroids` (for computing the new centroids) logical operators ...
//! the developer provides a `GroupBy` enhancer operator between
//! GetCentroid and SetCentroid." That is exactly the structure below:
//! custom [`LogicalOperator`] types (`ComputeDistances`, `GetCentroid`,
//! `SetCentroids`) compose a logical loop body, the mapping registry picks
//! the grouping algorithm for `SetCentroids` (`HashGroupBy` by default —
//! Example 2's choice point), and the application optimizer lowers the
//! whole thing to a physical plan.
//!
//! Layouts: points `[pid(Int), x_0..x_{d-1}]`; centroids (the loop state)
//! `[cid(Int), c_0..c_{d-1}]`.

use std::sync::Arc;

use rheem_core::data::{Dataset, Record, Value};
use rheem_core::error::{Result, RheemError};
use rheem_core::logical::{LogicalOperator, LogicalPayload, LogicalPlan, LogicalPlanBuilder};
use rheem_core::plan::NodeId;
use rheem_core::udf::{GroupMapUdf, KeyUdf, LoopCondUdf, MapUdf, ReduceUdf};
use rheem_core::{JobResult, RheemContext};

/// Computes, for every (point, centroid) pair, the squared distance.
/// Input: `[pid, x..., cid, c...]`; output: `[pid, cid, dist, x...]`.
struct ComputeDistances {
    dims: usize,
}

impl LogicalOperator for ComputeDistances {
    fn name(&self) -> &str {
        "ComputeDistances"
    }
    fn payload(&self) -> LogicalPayload {
        let dims = self.dims;
        LogicalPayload::Map(MapUdf::new("distance", move |r: &Record| {
            let take = |i: usize| r.float(i).expect("pair layout");
            let pid = r.int(0).expect("pid");
            let cid = r.int(dims + 1).expect("cid");
            let dist: f64 = (0..dims)
                .map(|i| {
                    let d = take(1 + i) - take(dims + 2 + i);
                    d * d
                })
                .sum();
            let mut fields = vec![Value::Int(pid), Value::Int(cid), Value::Float(dist)];
            fields.extend((0..dims).map(|i| Value::Float(take(1 + i))));
            Record::new(fields)
        }))
    }
}

/// Keeps, per point, the nearest centroid (the paper's `GetCentroid`).
struct GetCentroid;

impl LogicalOperator for GetCentroid {
    fn name(&self) -> &str {
        "GetCentroid"
    }
    fn payload(&self) -> LogicalPayload {
        LogicalPayload::Reduce {
            key: KeyUdf::field(0),
            reduce: ReduceUdf::new("min-dist", |a: Record, b: &Record| {
                let (da, db) = (a.float(2).expect("dist"), b.float(2).expect("dist"));
                if db < da {
                    b.clone()
                } else {
                    a
                }
            }),
        }
    }
}

/// Recomputes centroids as the mean of their assigned points (the paper's
/// `SetCentroids`, fused with its `GroupBy` enhancer).
struct SetCentroids {
    dims: usize,
}

impl LogicalOperator for SetCentroids {
    fn name(&self) -> &str {
        "SetCentroids"
    }
    fn payload(&self) -> LogicalPayload {
        let dims = self.dims;
        LogicalPayload::Group {
            key: KeyUdf::new("cid", |r: &Record| r.get(1).expect("cid field").clone()),
            group: GroupMapUdf::new("mean", move |cid: &Value, members: &[Record]| {
                let n = members.len().max(1) as f64;
                let mut mean = vec![0.0f64; dims];
                for m in members {
                    for (i, acc) in mean.iter_mut().enumerate() {
                        *acc += m.float(3 + i).expect("point coords");
                    }
                }
                let mut fields = vec![cid.clone()];
                fields.extend(mean.into_iter().map(|s| Value::Float(s / n)));
                vec![Record::new(fields)]
            }),
        }
    }
}

/// A trained clustering: centroid coordinates by centroid id.
#[derive(Clone, Debug, PartialEq)]
pub struct Clustering {
    /// `(cid, coordinates)` pairs, sorted by cid.
    pub centroids: Vec<(i64, Vec<f64>)>,
}

impl Clustering {
    /// Decode from the training output dataset.
    pub fn from_dataset(d: &Dataset, dims: usize) -> Result<Self> {
        let mut centroids = Vec::with_capacity(d.len());
        for r in d.iter() {
            if r.width() != dims + 1 {
                return Err(RheemError::Type {
                    expected: format!("centroid of width {}", dims + 1),
                    found: format!("width {}", r.width()),
                });
            }
            let cid = r.int(0)?;
            let coords: Result<Vec<f64>> = (0..dims).map(|i| r.float(1 + i)).collect();
            centroids.push((cid, coords?));
        }
        centroids.sort_by_key(|(cid, _)| *cid);
        Ok(Clustering { centroids })
    }

    /// Index (into `centroids`) of the nearest centroid.
    pub fn assign(&self, x: &[f64]) -> usize {
        let mut best = (0usize, f64::INFINITY);
        for (i, (_, c)) in self.centroids.iter().enumerate() {
            let d: f64 = c.iter().zip(x).map(|(a, b)| (a - b) * (a - b)).sum();
            if d < best.1 {
                best = (i, d);
            }
        }
        best.0
    }
}

/// K-means trainer (logical-layer construction).
#[derive(Clone, Debug)]
pub struct KMeansTrainer {
    /// Number of clusters.
    pub k: usize,
    /// Point dimensionality.
    pub dims: usize,
    /// Lloyd iterations.
    pub iterations: u64,
}

impl KMeansTrainer {
    /// A `k`-cluster trainer over `dims`-dimensional points, 20 iterations.
    pub fn new(k: usize, dims: usize) -> Self {
        KMeansTrainer {
            k,
            dims,
            iterations: 20,
        }
    }

    /// Override the iteration count.
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        self.iterations = iterations;
        self
    }

    /// Build the logical training plan. `points` are `[x_0..x_{d-1}]`
    /// records; returns the plan and the sink position (logical node ids
    /// map 1:1 onto physical node ids during lowering).
    pub fn build_logical_plan(&self, points: &[Record]) -> Result<(LogicalPlan, NodeId)> {
        if points.len() < self.k {
            return Err(RheemError::InvalidPlan(format!(
                "k-means needs at least k={} points, got {}",
                self.k,
                points.len()
            )));
        }
        // Attach point ids; seed centroids with evenly spaced points
        // (deterministic "Initialize", the paper's Example 1 operator (i)).
        let with_ids: Vec<Record> = points
            .iter()
            .enumerate()
            .map(|(pid, p)| {
                let mut fields = vec![Value::Int(pid as i64)];
                fields.extend_from_slice(p.fields());
                Record::new(fields)
            })
            .collect();
        let stride = points.len() / self.k;
        let centroids: Vec<Record> = (0..self.k)
            .map(|c| {
                let mut fields = vec![Value::Int(c as i64)];
                fields.extend_from_slice(points[c * stride].fields());
                Record::new(fields)
            })
            .collect();

        // Loop body, in logical operators.
        let mut body = LogicalPlanBuilder::new();
        let state = body.add_simple("centroids", LogicalPayload::LoopInput, vec![]);
        let pts = body.source("points", with_ids);
        let pairs = body.add_simple("pair", LogicalPayload::CrossProduct, vec![pts, state]);
        let dists = body.add(Arc::new(ComputeDistances { dims: self.dims }), vec![pairs]);
        let assigned = body.add(Arc::new(GetCentroid), vec![dists]);
        body.add(Arc::new(SetCentroids { dims: self.dims }), vec![assigned]);
        let body = body.build()?;

        // Outer plan.
        let mut b = LogicalPlanBuilder::new();
        let init = b.source("initial-centroids", centroids);
        let looped = b.add_simple(
            "Lloyd",
            LogicalPayload::Loop {
                body,
                condition: LoopCondUdf::fixed_iterations(self.iterations),
                max_iterations: self.iterations,
            },
            vec![init],
        );
        let sink = b.collect(looped);
        Ok((b.build()?, NodeId(sink.0)))
    }

    /// Train on the given context.
    pub fn train(&self, ctx: &RheemContext, points: &[Record]) -> Result<(Clustering, JobResult)> {
        let (plan, sink) = self.build_logical_plan(points)?;
        let result = ctx.execute_logical(&plan)?;
        let clustering = Clustering::from_dataset(&result.outputs[&sink], self.dims)?;
        Ok((clustering, result))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rheem_core::mapping::variants;
    use rheem_core::physical::PhysicalOp;
    use rheem_core::rec;
    use rheem_platforms::JavaPlatform;

    fn ctx() -> RheemContext {
        RheemContext::new().with_platform(Arc::new(JavaPlatform::new()))
    }

    /// Three well-separated 2-D blobs.
    fn blobs(per_cluster: usize, seed: u64) -> Vec<Record> {
        let centers = [(0.0, 0.0), (10.0, 10.0), (-10.0, 8.0)];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for &(cx, cy) in &centers {
            for _ in 0..per_cluster {
                out.push(rec![
                    cx + rng.gen_range(-1.0..1.0),
                    cy + rng.gen_range(-1.0..1.0)
                ]);
            }
        }
        out
    }

    #[test]
    fn kmeans_finds_well_separated_blobs() {
        let points = blobs(40, 2);
        let trainer = KMeansTrainer::new(3, 2).with_iterations(15);
        let (clustering, result) = trainer.train(&ctx(), &points).unwrap();
        assert_eq!(clustering.centroids.len(), 3);
        // Each centroid should be within 1.5 of some true center.
        let centers = [(0.0, 0.0), (10.0, 10.0), (-10.0, 8.0)];
        for (_, c) in &clustering.centroids {
            let best = centers
                .iter()
                .map(|(x, y)| ((c[0] - x).powi(2) + (c[1] - y).powi(2)).sqrt())
                .fold(f64::INFINITY, f64::min);
            assert!(best < 1.5, "centroid {c:?} far from every true center");
        }
        assert_eq!(result.stats.platforms_used(), vec!["java"]);
    }

    #[test]
    fn assignment_is_consistent_with_blob_membership() {
        let points = blobs(30, 5);
        let trainer = KMeansTrainer::new(3, 2).with_iterations(15);
        let (clustering, _) = trainer.train(&ctx(), &points).unwrap();
        // Points from the same blob map to the same centroid.
        for blob in 0..3 {
            let base = blob * 30;
            let first = clustering.assign(&[
                points[base].float(0).unwrap(),
                points[base].float(1).unwrap(),
            ]);
            for p in &points[base..base + 30] {
                let a = clustering.assign(&[p.float(0).unwrap(), p.float(1).unwrap()]);
                assert_eq!(a, first);
            }
        }
    }

    #[test]
    fn mapping_hint_switches_set_centroids_to_sort_group_by() {
        let points = blobs(10, 1);
        let trainer = KMeansTrainer::new(2, 2);
        let (logical, _) = trainer.build_logical_plan(&points).unwrap();

        let mut registry = rheem_core::mapping::MappingRegistry::with_defaults();
        let default_physical =
            rheem_core::optimizer::application::lower(&logical, &registry).unwrap();
        let uses = |plan: &rheem_core::PhysicalPlan, sort: bool| {
            fn scan(plan: &rheem_core::PhysicalPlan, sort: bool) -> bool {
                plan.nodes().iter().any(|n| match &n.op {
                    PhysicalOp::SortGroupBy { .. } => sort,
                    PhysicalOp::HashGroupBy { .. } => !sort,
                    PhysicalOp::Loop { body, .. } => scan(body, sort),
                    _ => false,
                })
            }
            scan(plan, sort)
        };
        assert!(uses(&default_physical, false), "default is hash grouping");

        registry.prefer("SetCentroids", variants::SORT_GROUP_BY);
        let hinted = rheem_core::optimizer::application::lower(&logical, &registry).unwrap();
        assert!(uses(&hinted, true), "hint selects sort grouping");
    }

    #[test]
    fn too_few_points_is_an_error() {
        let trainer = KMeansTrainer::new(5, 2);
        assert!(trainer.build_logical_plan(&blobs(1, 1)[..3]).is_err());
    }
}
