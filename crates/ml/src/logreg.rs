//! Logistic regression on the gradient-descent template.

use std::sync::Arc;

use rheem_core::data::Record;
use rheem_core::error::Result;
use rheem_core::{JobResult, RheemContext};

use crate::gd::{train, ExampleGradient, GdConfig};
use crate::model::LinearModel;

/// Log-loss gradient for labels in `{-1, +1}`: `σ(-y·s)·(-y·x)`.
fn logistic_gradient() -> ExampleGradient {
    Arc::new(|x: &[f64], y: f64, model: &LinearModel| {
        let s = model.score(x);
        let sigma = 1.0 / (1.0 + (y * s).exp()); // σ(-y·s)
        let scale = -y * sigma;
        (x.iter().map(|xi| scale * xi).collect(), scale)
    })
}

/// Logistic-regression trainer.
#[derive(Clone, Debug)]
pub struct LogRegTrainer {
    /// Gradient-descent hyper-parameters.
    pub config: GdConfig,
}

impl LogRegTrainer {
    /// A trainer for `dims`-dimensional data.
    pub fn new(dims: usize) -> Self {
        LogRegTrainer {
            config: GdConfig::new(dims).with_learning_rate(1.0),
        }
    }

    /// Override the iteration count.
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        self.config = self.config.with_iterations(iterations);
        self
    }

    /// Train on the given context.
    pub fn train(&self, ctx: &RheemContext, data: Vec<Record>) -> Result<(LinearModel, JobResult)> {
        train(ctx, data, &self.config, "logreg", logistic_gradient())
    }
}

/// Predicted probability of the positive class.
pub fn predict_proba(model: &LinearModel, x: &[f64]) -> f64 {
    1.0 / (1.0 + (-model.score(x)).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rheem_datagen::libsvm::{generate, LibsvmConfig};
    use rheem_platforms::JavaPlatform;

    fn ctx() -> RheemContext {
        RheemContext::new().with_platform(Arc::new(JavaPlatform::new()))
    }

    #[test]
    fn logreg_learns_separable_data() {
        let data = generate(&LibsvmConfig::new(300, 5).with_noise(0.0));
        let (model, _) = LogRegTrainer::new(5)
            .with_iterations(80)
            .train(&ctx(), data.clone())
            .unwrap();
        let acc = model.accuracy(&data).unwrap();
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn probabilities_are_calibrated_in_direction() {
        let data = generate(&LibsvmConfig::new(300, 4).with_noise(0.0));
        let (model, _) = LogRegTrainer::new(4)
            .with_iterations(60)
            .train(&ctx(), data.clone())
            .unwrap();
        // Positive examples should, on average, get higher probability.
        let (mut pos, mut neg, mut n_pos, mut n_neg) = (0.0, 0.0, 0, 0);
        for r in &data {
            let x: Vec<f64> = (1..r.width()).map(|i| r.float(i).unwrap()).collect();
            let p = predict_proba(&model, &x);
            if r.float(0).unwrap() > 0.0 {
                pos += p;
                n_pos += 1;
            } else {
                neg += p;
                n_neg += 1;
            }
        }
        assert!(pos / n_pos as f64 > 0.6);
        assert!((neg / n_neg as f64) < 0.4);
    }
}
