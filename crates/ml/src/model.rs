//! Linear model representation shared by the ML trainers.
//!
//! A trained model is `w ∈ R^d` plus a bias; in plans it travels as a
//! single data quantum `[w_0, ..., w_{d-1}, b]` (all `Float`), which is the
//! loop state of the training plans.

use rheem_core::data::{Dataset, Record, Value};
use rheem_core::error::{Result, RheemError};

/// A linear model `x ↦ w·x + b`.
#[derive(Clone, Debug, PartialEq)]
pub struct LinearModel {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Bias term.
    pub bias: f64,
}

impl LinearModel {
    /// The zero model of dimension `dims`.
    pub fn zeros(dims: usize) -> Self {
        LinearModel {
            weights: vec![0.0; dims],
            bias: 0.0,
        }
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.weights.len()
    }

    /// Raw score `w·x + b` for a feature slice.
    pub fn score(&self, x: &[f64]) -> f64 {
        self.weights
            .iter()
            .zip(x)
            .map(|(w, xi)| w * xi)
            .sum::<f64>()
            + self.bias
    }

    /// Raw score for a LIBSVM-layout record `[label, x_1, ..., x_d]`.
    pub fn score_record(&self, r: &Record) -> Result<f64> {
        if r.width() != self.dims() + 1 {
            return Err(RheemError::Type {
                expected: format!("record of width {}", self.dims() + 1),
                found: format!("record of width {}", r.width()),
            });
        }
        let mut s = self.bias;
        for (i, w) in self.weights.iter().enumerate() {
            s += w * r.float(i + 1)?;
        }
        Ok(s)
    }

    /// Classification accuracy (sign agreement) on LIBSVM-layout records.
    pub fn accuracy(&self, data: &[Record]) -> Result<f64> {
        if data.is_empty() {
            return Ok(0.0);
        }
        let mut correct = 0usize;
        for r in data {
            let label = r.float(0)?;
            let pred = if self.score_record(r)? >= 0.0 {
                1.0
            } else {
                -1.0
            };
            if pred == label {
                correct += 1;
            }
        }
        Ok(correct as f64 / data.len() as f64)
    }

    /// Mean squared error of `w·x + b` against the label field (regression).
    pub fn mse(&self, data: &[Record]) -> Result<f64> {
        if data.is_empty() {
            return Ok(0.0);
        }
        let mut total = 0.0;
        for r in data {
            let err = self.score_record(r)? - r.float(0)?;
            total += err * err;
        }
        Ok(total / data.len() as f64)
    }

    /// Encode as the loop-state record `[w..., b]`.
    pub fn to_record(&self) -> Record {
        let mut fields: Vec<Value> = self.weights.iter().copied().map(Value::Float).collect();
        fields.push(Value::Float(self.bias));
        Record::new(fields)
    }

    /// Decode from the loop-state record.
    pub fn from_record(r: &Record) -> Result<Self> {
        if r.width() == 0 {
            return Err(RheemError::Type {
                expected: "non-empty model record".into(),
                found: "empty record".into(),
            });
        }
        let mut weights = Vec::with_capacity(r.width() - 1);
        for i in 0..r.width() - 1 {
            weights.push(r.float(i)?);
        }
        Ok(LinearModel {
            weights,
            bias: r.float(r.width() - 1)?,
        })
    }

    /// Decode from a single-record training output.
    pub fn from_dataset(d: &Dataset) -> Result<Self> {
        match d.records() {
            [r] => LinearModel::from_record(r),
            other => Err(RheemError::Type {
                expected: "a single model record".into(),
                found: format!("{} records", other.len()),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rheem_core::rec;

    #[test]
    fn record_round_trip() {
        let m = LinearModel {
            weights: vec![0.5, -1.5],
            bias: 2.0,
        };
        let back = LinearModel::from_record(&m.to_record()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn scoring_and_accuracy() {
        let m = LinearModel {
            weights: vec![1.0, 0.0],
            bias: -0.5,
        };
        assert_eq!(m.score(&[2.0, 7.0]), 1.5);
        let data = vec![
            rec![1.0f64, 1.0f64, 0.0f64],  // score 0.5 -> +1 correct
            rec![-1.0f64, 0.0f64, 9.0f64], // score -0.5 -> -1 correct
            rec![1.0f64, 0.0f64, 0.0f64],  // score -0.5 -> -1 wrong
        ];
        assert!((m.accuracy(&data).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn width_mismatch_is_an_error() {
        let m = LinearModel::zeros(3);
        assert!(m.score_record(&rec![1.0f64, 2.0f64]).is_err());
    }

    #[test]
    fn mse_on_perfect_fit_is_zero() {
        let m = LinearModel {
            weights: vec![2.0],
            bias: 1.0,
        };
        let data = vec![rec![5.0f64, 2.0f64], rec![1.0f64, 0.0f64]];
        assert!(m.mse(&data).unwrap() < 1e-24);
    }

    #[test]
    fn from_dataset_requires_single_record() {
        let m = LinearModel::zeros(1);
        let ok = Dataset::new(vec![m.to_record()]);
        assert_eq!(LinearModel::from_dataset(&ok).unwrap(), m);
        let bad = Dataset::new(vec![m.to_record(), m.to_record()]);
        assert!(LinearModel::from_dataset(&bad).is_err());
    }
}
