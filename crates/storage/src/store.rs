//! Storage platforms (the x-store level of §6).
//!
//! Four stores with deliberately different cost profiles, mirroring the
//! heterogeneous storage engines the paper federates (HDFS, local files,
//! relational databases, in-memory caches):
//!
//! * [`MemStore`] — zero-latency in-memory storage;
//! * [`LocalFsStore`] — real files in the native codec;
//! * [`SimHdfsStore`] — a simulated distributed FS: datasets are chunked
//!   into fixed-size blocks, replicated, and charged a per-block latency
//!   (the substitution for a real HDFS cluster, see DESIGN.md);
//! * [`RelationalStore`] — schema-aware tables with optional B-tree
//!   secondary indexes and point/range lookups.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;

use rheem_core::data::{Dataset, Record, Schema, Value};
use rheem_core::error::{Result, RheemError};

use crate::codec;

/// Classification of storage platforms (used by the storage optimizer).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// In-memory.
    Memory,
    /// Local file system.
    LocalFs,
    /// Simulated distributed file system.
    SimHdfs,
    /// Relational tables.
    Relational,
}

/// Accounting data returned by storage operations.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StorageReport {
    /// Records moved.
    pub records: u64,
    /// Bytes moved (serialized size; 0 for purely in-memory moves).
    pub bytes: u64,
    /// Simulated latency charged for the operation, in milliseconds.
    pub simulated_ms: f64,
}

/// A storage platform: the execution level of the storage abstraction.
pub trait Store: Send + Sync {
    /// Unique store name.
    fn name(&self) -> &str;

    /// The store's kind.
    fn kind(&self) -> StoreKind;

    /// Write (or replace) a dataset.
    fn write(&self, id: &str, data: &Dataset) -> Result<StorageReport>;

    /// Read a dataset.
    fn read(&self, id: &str) -> Result<(Dataset, StorageReport)>;

    /// Delete a dataset; returns whether it existed.
    fn delete(&self, id: &str) -> Result<bool>;

    /// Ids of all stored datasets, sorted.
    fn list(&self) -> Vec<String>;

    /// Cardinality without a full read, if the store tracks it.
    fn cardinality(&self, id: &str) -> Option<u64>;

    /// Downcasting support (lets the storage layer reach store-specific
    /// capabilities such as relational index creation).
    fn as_any(&self) -> &dyn std::any::Any;
}

// ---------------------------------------------------------------------------
// MemStore
// ---------------------------------------------------------------------------

/// Zero-latency in-memory store.
#[derive(Default)]
pub struct MemStore {
    name: String,
    data: Mutex<HashMap<String, Dataset>>,
}

impl MemStore {
    /// A store named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        MemStore {
            name: name.into(),
            data: Mutex::new(HashMap::new()),
        }
    }
}

impl Store for MemStore {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn kind(&self) -> StoreKind {
        StoreKind::Memory
    }
    fn write(&self, id: &str, data: &Dataset) -> Result<StorageReport> {
        self.data.lock().insert(id.to_string(), data.clone());
        Ok(StorageReport {
            records: data.len() as u64,
            bytes: 0,
            simulated_ms: 0.0,
        })
    }
    fn read(&self, id: &str) -> Result<(Dataset, StorageReport)> {
        let data = self
            .data
            .lock()
            .get(id)
            .cloned()
            .ok_or_else(|| RheemError::DatasetNotFound(id.to_string()))?;
        let report = StorageReport {
            records: data.len() as u64,
            bytes: 0,
            simulated_ms: 0.0,
        };
        Ok((data, report))
    }
    fn delete(&self, id: &str) -> Result<bool> {
        Ok(self.data.lock().remove(id).is_some())
    }
    fn list(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.data.lock().keys().cloned().collect();
        ids.sort();
        ids
    }
    fn cardinality(&self, id: &str) -> Option<u64> {
        self.data.lock().get(id).map(|d| d.len() as u64)
    }
}

// ---------------------------------------------------------------------------
// LocalFsStore
// ---------------------------------------------------------------------------

/// File-per-dataset store using the native codec.
pub struct LocalFsStore {
    name: String,
    root: PathBuf,
}

impl LocalFsStore {
    /// A store rooted at `root` (created on demand).
    pub fn new(name: impl Into<String>, root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(LocalFsStore {
            name: name.into(),
            root,
        })
    }

    fn path_of(&self, id: &str) -> PathBuf {
        // Dataset ids may contain separators; flatten them for the FS.
        let safe: String = id
            .chars()
            .map(|c| {
                if c.is_alphanumeric() || c == '_' || c == '-' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.root.join(format!("{safe}.rrec"))
    }
}

impl Store for LocalFsStore {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn kind(&self) -> StoreKind {
        StoreKind::LocalFs
    }
    fn write(&self, id: &str, data: &Dataset) -> Result<StorageReport> {
        let text = codec::encode_batch(data.records());
        let path = self.path_of(id);
        std::fs::write(&path, &text)?;
        Ok(StorageReport {
            records: data.len() as u64,
            bytes: text.len() as u64,
            simulated_ms: 0.0,
        })
    }
    fn read(&self, id: &str) -> Result<(Dataset, StorageReport)> {
        let path = self.path_of(id);
        let text = std::fs::read_to_string(&path)
            .map_err(|_| RheemError::DatasetNotFound(id.to_string()))?;
        let records = codec::decode_batch(&text)?;
        let report = StorageReport {
            records: records.len() as u64,
            bytes: text.len() as u64,
            simulated_ms: 0.0,
        };
        Ok((Dataset::new(records), report))
    }
    fn delete(&self, id: &str) -> Result<bool> {
        let path = self.path_of(id);
        if path.exists() {
            std::fs::remove_file(path)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }
    fn list(&self) -> Vec<String> {
        let mut ids = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&self.root) {
            for e in entries.flatten() {
                if let Some(stem) = e.path().file_stem().and_then(|s| s.to_str()) {
                    ids.push(stem.to_string());
                }
            }
        }
        ids.sort();
        ids
    }
    fn cardinality(&self, _id: &str) -> Option<u64> {
        None // would require a read; the catalog caches this instead
    }
}

// ---------------------------------------------------------------------------
// SimHdfsStore
// ---------------------------------------------------------------------------

/// Configuration of the simulated HDFS.
#[derive(Clone, Copy, Debug)]
pub struct SimHdfsConfig {
    /// Records per block.
    pub block_records: usize,
    /// Replication factor (each block is written this many times).
    pub replication: u32,
    /// Simulated latency per block access.
    pub block_latency: Duration,
    /// Whether to actually sleep for the simulated latency.
    pub sleep: bool,
}

impl Default for SimHdfsConfig {
    fn default() -> Self {
        SimHdfsConfig {
            block_records: 10_000,
            replication: 3,
            block_latency: Duration::from_micros(500),
            sleep: false,
        }
    }
}

#[derive(Default)]
struct HdfsFile {
    blocks: Vec<Bytes>,
    records: u64,
}

/// A simulated block-based distributed file system.
///
/// Stands in for a real HDFS cluster: datasets are split into fixed-size
/// blocks, each serialized with the native codec, replicated, and charged a
/// per-block access latency — so scan cost grows stepwise with data size
/// and write cost additionally with the replication factor, the two
/// properties the data-movement experiments depend on.
pub struct SimHdfsStore {
    name: String,
    config: SimHdfsConfig,
    files: Mutex<HashMap<String, HdfsFile>>,
}

impl SimHdfsStore {
    /// A simulated HDFS with the given configuration.
    pub fn new(name: impl Into<String>, config: SimHdfsConfig) -> Self {
        SimHdfsStore {
            name: name.into(),
            config,
            files: Mutex::new(HashMap::new()),
        }
    }

    fn charge(&self, blocks: u64) -> f64 {
        let ms = blocks as f64 * self.config.block_latency.as_secs_f64() * 1e3;
        if self.config.sleep && ms > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(ms / 1e3));
        }
        ms
    }

    /// Number of blocks a stored dataset occupies (before replication).
    pub fn block_count(&self, id: &str) -> Option<usize> {
        self.files.lock().get(id).map(|f| f.blocks.len())
    }
}

impl Store for SimHdfsStore {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn kind(&self) -> StoreKind {
        StoreKind::SimHdfs
    }
    fn write(&self, id: &str, data: &Dataset) -> Result<StorageReport> {
        let mut blocks = Vec::new();
        let mut bytes = 0u64;
        for chunk in data.records().chunks(self.config.block_records.max(1)) {
            let text = codec::encode_batch(chunk);
            bytes += text.len() as u64;
            blocks.push(Bytes::from(text));
        }
        let n_blocks = blocks.len() as u64;
        self.files.lock().insert(
            id.to_string(),
            HdfsFile {
                blocks,
                records: data.len() as u64,
            },
        );
        // Writes pay for every replica.
        let simulated_ms = self.charge(n_blocks * u64::from(self.config.replication));
        Ok(StorageReport {
            records: data.len() as u64,
            bytes: bytes * u64::from(self.config.replication),
            simulated_ms,
        })
    }
    fn read(&self, id: &str) -> Result<(Dataset, StorageReport)> {
        let (blocks, records_hint) = {
            let files = self.files.lock();
            let f = files
                .get(id)
                .ok_or_else(|| RheemError::DatasetNotFound(id.to_string()))?;
            (f.blocks.clone(), f.records)
        };
        let mut records = Vec::with_capacity(records_hint as usize);
        let mut bytes = 0u64;
        for b in &blocks {
            bytes += b.len() as u64;
            let text = std::str::from_utf8(b)
                .map_err(|e| RheemError::Storage(format!("corrupt block: {e}")))?;
            records.extend(codec::decode_batch(text)?);
        }
        let simulated_ms = self.charge(blocks.len() as u64);
        Ok((
            Dataset::new(records),
            StorageReport {
                records: records_hint,
                bytes,
                simulated_ms,
            },
        ))
    }
    fn delete(&self, id: &str) -> Result<bool> {
        Ok(self.files.lock().remove(id).is_some())
    }
    fn list(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.files.lock().keys().cloned().collect();
        ids.sort();
        ids
    }
    fn cardinality(&self, id: &str) -> Option<u64> {
        self.files.lock().get(id).map(|f| f.records)
    }
}

// ---------------------------------------------------------------------------
// RelationalStore
// ---------------------------------------------------------------------------

struct Table {
    schema: Option<Schema>,
    rows: Vec<Record>,
    /// Secondary indexes: column index → (value → row positions).
    indexes: HashMap<usize, BTreeMap<Value, Vec<usize>>>,
}

/// A schema-aware tabular store with secondary B-tree indexes.
#[derive(Default)]
pub struct RelationalStore {
    name: String,
    tables: Mutex<HashMap<String, Table>>,
}

impl RelationalStore {
    /// A store named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        RelationalStore {
            name: name.into(),
            tables: Mutex::new(HashMap::new()),
        }
    }

    /// Attach a schema to a table; subsequent writes are validated.
    pub fn set_schema(&self, id: &str, schema: Schema) -> Result<()> {
        let mut tables = self.tables.lock();
        let table = tables.entry(id.to_string()).or_insert_with(|| Table {
            schema: None,
            rows: Vec::new(),
            indexes: HashMap::new(),
        });
        for row in &table.rows {
            schema.check(row)?;
        }
        table.schema = Some(schema);
        Ok(())
    }

    /// Build (or rebuild) a secondary index on `column`.
    pub fn create_index(&self, id: &str, column: usize) -> Result<()> {
        let mut tables = self.tables.lock();
        let table = tables
            .get_mut(id)
            .ok_or_else(|| RheemError::DatasetNotFound(id.to_string()))?;
        let mut index: BTreeMap<Value, Vec<usize>> = BTreeMap::new();
        for (pos, row) in table.rows.iter().enumerate() {
            index.entry(row.get(column)?.clone()).or_default().push(pos);
        }
        table.indexes.insert(column, index);
        Ok(())
    }

    /// Whether an index exists on `column`.
    pub fn has_index(&self, id: &str, column: usize) -> bool {
        self.tables
            .lock()
            .get(id)
            .is_some_and(|t| t.indexes.contains_key(&column))
    }

    /// Point lookup via index (falls back to a scan without one).
    pub fn lookup_eq(&self, id: &str, column: usize, value: &Value) -> Result<Vec<Record>> {
        let tables = self.tables.lock();
        let table = tables
            .get(id)
            .ok_or_else(|| RheemError::DatasetNotFound(id.to_string()))?;
        if let Some(index) = table.indexes.get(&column) {
            Ok(index
                .get(value)
                .map(|positions| positions.iter().map(|&p| table.rows[p].clone()).collect())
                .unwrap_or_default())
        } else {
            table
                .rows
                .iter()
                .filter_map(|r| match r.get(column) {
                    Ok(v) if v == value => Some(Ok(r.clone())),
                    Ok(_) => None,
                    Err(e) => Some(Err(e)),
                })
                .collect()
        }
    }

    /// Range lookup `lo <= value < hi` via index (scan fallback).
    pub fn lookup_range(
        &self,
        id: &str,
        column: usize,
        lo: &Value,
        hi: &Value,
    ) -> Result<Vec<Record>> {
        let tables = self.tables.lock();
        let table = tables
            .get(id)
            .ok_or_else(|| RheemError::DatasetNotFound(id.to_string()))?;
        if let Some(index) = table.indexes.get(&column) {
            let mut out = Vec::new();
            for (_, positions) in index.range(lo.clone()..hi.clone()) {
                out.extend(positions.iter().map(|&p| table.rows[p].clone()));
            }
            Ok(out)
        } else {
            table
                .rows
                .iter()
                .filter_map(|r| match r.get(column) {
                    Ok(v) if v >= lo && v < hi => Some(Ok(r.clone())),
                    Ok(_) => None,
                    Err(e) => Some(Err(e)),
                })
                .collect()
        }
    }

    /// Append rows (validated against the schema, indexes maintained).
    pub fn insert(&self, id: &str, rows: &[Record]) -> Result<()> {
        let mut tables = self.tables.lock();
        let table = tables
            .get_mut(id)
            .ok_or_else(|| RheemError::DatasetNotFound(id.to_string()))?;
        if let Some(schema) = &table.schema {
            for row in rows {
                schema.check(row)?;
            }
        }
        for row in rows {
            let pos = table.rows.len();
            table.rows.push(row.clone());
            for (col, index) in table.indexes.iter_mut() {
                let v = table.rows[pos].get(*col)?.clone();
                index.entry(v).or_default().push(pos);
            }
        }
        Ok(())
    }
}

impl Store for RelationalStore {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn kind(&self) -> StoreKind {
        StoreKind::Relational
    }
    fn write(&self, id: &str, data: &Dataset) -> Result<StorageReport> {
        let mut tables = self.tables.lock();
        let schema = tables.get(id).and_then(|t| t.schema.clone());
        if let Some(schema) = &schema {
            for row in data.iter() {
                schema.check(row)?;
            }
        }
        let existing_indexes: Vec<usize> = tables
            .get(id)
            .map(|t| t.indexes.keys().copied().collect())
            .unwrap_or_default();
        tables.insert(
            id.to_string(),
            Table {
                schema,
                rows: data.records().to_vec(),
                indexes: HashMap::new(),
            },
        );
        drop(tables);
        for col in existing_indexes {
            self.create_index(id, col)?;
        }
        Ok(StorageReport {
            records: data.len() as u64,
            bytes: 0,
            simulated_ms: 0.0,
        })
    }
    fn read(&self, id: &str) -> Result<(Dataset, StorageReport)> {
        let tables = self.tables.lock();
        let table = tables
            .get(id)
            .ok_or_else(|| RheemError::DatasetNotFound(id.to_string()))?;
        let data = Dataset::new(table.rows.clone());
        let report = StorageReport {
            records: data.len() as u64,
            bytes: 0,
            simulated_ms: 0.0,
        };
        Ok((data, report))
    }
    fn delete(&self, id: &str) -> Result<bool> {
        Ok(self.tables.lock().remove(id).is_some())
    }
    fn list(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.tables.lock().keys().cloned().collect();
        ids.sort();
        ids
    }
    fn cardinality(&self, id: &str) -> Option<u64> {
        self.tables.lock().get(id).map(|t| t.rows.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rheem_core::data::DataType;
    use rheem_core::rec;

    fn sample() -> Dataset {
        Dataset::new(vec![
            rec![1i64, "a", 10.0],
            rec![2i64, "b", 20.0],
            rec![3i64, "a", 30.0],
        ])
    }

    fn round_trip(store: &dyn Store) {
        let data = sample();
        let w = store.write("t", &data).unwrap();
        assert_eq!(w.records, 3);
        let (back, r) = store.read("t").unwrap();
        assert_eq!(back, data);
        assert_eq!(r.records, 3);
        assert_eq!(store.list(), vec!["t".to_string()]);
        assert!(store.delete("t").unwrap());
        assert!(!store.delete("t").unwrap());
        assert!(store.read("t").is_err());
    }

    #[test]
    fn mem_store_round_trip() {
        round_trip(&MemStore::new("mem"));
    }

    #[test]
    fn local_fs_store_round_trip() {
        let dir = std::env::temp_dir().join(format!("rheem_fs_test_{}", std::process::id()));
        let store = LocalFsStore::new("fs", &dir).unwrap();
        round_trip(&store);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn sim_hdfs_round_trip_and_blocks() {
        let store = SimHdfsStore::new(
            "hdfs",
            SimHdfsConfig {
                block_records: 2,
                replication: 3,
                block_latency: Duration::from_millis(1),
                sleep: false,
            },
        );
        round_trip(&store);
        let data = sample();
        let w = store.write("t", &data).unwrap();
        assert_eq!(store.block_count("t"), Some(2)); // 3 records / 2 per block
                                                     // Write pays replication × blocks of latency.
        assert!((w.simulated_ms - 6.0).abs() < 1e-9);
        let (_, r) = store.read("t").unwrap();
        assert!((r.simulated_ms - 2.0).abs() < 1e-9);
        assert_eq!(store.cardinality("t"), Some(3));
    }

    #[test]
    fn relational_store_round_trip() {
        round_trip(&RelationalStore::new("db"));
    }

    #[test]
    fn relational_schema_validation() {
        let store = RelationalStore::new("db");
        store.write("t", &sample()).unwrap();
        let schema = Schema::new(vec![
            ("id", DataType::Int),
            ("tag", DataType::Str),
            ("score", DataType::Float),
        ]);
        store.set_schema("t", schema).unwrap();
        // Conforming insert works; nonconforming fails.
        store.insert("t", &[rec![4i64, "c", 40.0]]).unwrap();
        assert!(store.insert("t", &[rec!["bad"]]).is_err());
        // A bad write is also rejected.
        assert!(store.write("t", &Dataset::new(vec![rec!["bad"]])).is_err());
    }

    #[test]
    fn relational_index_lookup_matches_scan() {
        let store = RelationalStore::new("db");
        store.write("t", &sample()).unwrap();
        let scan = store.lookup_eq("t", 1, &Value::str("a")).unwrap();
        store.create_index("t", 1).unwrap();
        assert!(store.has_index("t", 1));
        let indexed = store.lookup_eq("t", 1, &Value::str("a")).unwrap();
        assert_eq!(scan, indexed);
        assert_eq!(indexed.len(), 2);
        assert!(store
            .lookup_eq("t", 1, &Value::str("zzz"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn relational_range_lookup() {
        let store = RelationalStore::new("db");
        store.write("t", &sample()).unwrap();
        store.create_index("t", 0).unwrap();
        let out = store
            .lookup_range("t", 0, &Value::Int(2), &Value::Int(4))
            .unwrap();
        assert_eq!(out.len(), 2);
        // Scan fallback gives the same answer.
        let store2 = RelationalStore::new("db2");
        store2.write("t", &sample()).unwrap();
        let out2 = store2
            .lookup_range("t", 0, &Value::Int(2), &Value::Int(4))
            .unwrap();
        assert_eq!(out, out2);
    }

    #[test]
    fn relational_indexes_survive_rewrite_and_inserts() {
        let store = RelationalStore::new("db");
        store.write("t", &sample()).unwrap();
        store.create_index("t", 0).unwrap();
        store.write("t", &sample()).unwrap(); // rewrite rebuilds index
        assert!(store.has_index("t", 0));
        store.insert("t", &[rec![9i64, "z", 1.0]]).unwrap();
        let hit = store.lookup_eq("t", 0, &Value::Int(9)).unwrap();
        assert_eq!(hit.len(), 1);
    }
}
