//! Record serialization codecs.
//!
//! Storage platforms need a durable representation of data quanta. Two
//! codecs are provided:
//!
//! * the **native codec** — a loss-free, type-tagged, line-oriented text
//!   format used by the local-FS store, the simulated HDFS store, and the
//!   MapReduce-like platform's phase spills;
//! * a **CSV codec** — for importing/exporting interoperable tabular data
//!   (values are inferred as `Int`, then `Float`, then `Str`).

use std::sync::Arc;

use rheem_core::data::{Record, Value};
use rheem_core::error::{Result, RheemError};

/// Field separator in the native format (ASCII unit separator).
const FIELD_SEP: char = '\u{1f}';

/// Encode one record into a single native-format line (no trailing newline).
pub fn encode_record(record: &Record) -> String {
    let mut out = String::new();
    for (i, v) in record.fields().iter().enumerate() {
        if i > 0 {
            out.push(FIELD_SEP);
        }
        match v {
            Value::Null => out.push('N'),
            Value::Bool(b) => {
                out.push_str(if *b { "B1" } else { "B0" });
            }
            Value::Int(i) => {
                out.push('I');
                out.push_str(&i.to_string());
            }
            Value::Float(x) => {
                // Hex bit pattern: exact round trip, NaN payloads included.
                out.push('F');
                out.push_str(&format!("{:016x}", x.to_bits()));
            }
            Value::Str(s) => {
                out.push('S');
                out.push_str(&escape(s));
            }
        }
    }
    out
}

/// Decode one native-format line into a record.
pub fn decode_record(line: &str) -> Result<Record> {
    if line.is_empty() {
        return Ok(Record::empty());
    }
    let mut fields = Vec::new();
    for token in line.split(FIELD_SEP) {
        let mut chars = token.chars();
        let tag = chars.next().ok_or_else(|| bad(token, "empty field"))?;
        let payload = chars.as_str();
        let v = match tag {
            'N' => Value::Null,
            'B' => match payload {
                "1" => Value::Bool(true),
                "0" => Value::Bool(false),
                _ => return Err(bad(token, "bool payload")),
            },
            'I' => Value::Int(
                payload
                    .parse::<i64>()
                    .map_err(|_| bad(token, "int payload"))?,
            ),
            'F' => {
                let bits =
                    u64::from_str_radix(payload, 16).map_err(|_| bad(token, "float payload"))?;
                Value::Float(f64::from_bits(bits))
            }
            'S' => Value::Str(Arc::from(unescape(payload)?.as_str())),
            _ => return Err(bad(token, "unknown tag")),
        };
        fields.push(v);
    }
    Ok(Record::new(fields))
}

fn bad(token: &str, what: &str) -> RheemError {
    RheemError::Storage(format!("corrupt record field ({what}): {token:?}"))
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            FIELD_SEP => out.push_str("\\u"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('u') => out.push(FIELD_SEP),
            other => {
                return Err(RheemError::Storage(format!(
                    "bad escape sequence \\{other:?}"
                )))
            }
        }
    }
    Ok(out)
}

/// Encode a batch of records, one line each.
pub fn encode_batch(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&encode_record(r));
        out.push('\n');
    }
    out
}

/// Decode a native-format batch (inverse of [`encode_batch`]).
pub fn decode_batch(text: &str) -> Result<Vec<Record>> {
    text.lines().map(decode_record).collect()
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

/// Render records as RFC-4180-ish CSV (quotes doubled, fields quoted when
/// they contain separators). `Null` becomes the empty field.
pub fn to_csv(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        for (i, v) in r.fields().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match v {
                Value::Null => {}
                Value::Str(s) => out.push_str(&csv_quote(s)),
                other => out.push_str(&other.to_string()),
            }
        }
        out.push('\n');
    }
    out
}

fn csv_quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Parse CSV text into records with type inference per field:
/// empty → `Null`, else `Int`, else `Float`, else `Str`.
pub fn from_csv(text: &str) -> Result<Vec<Record>> {
    let mut records = Vec::new();
    for line in text.lines() {
        records.push(Record::new(parse_csv_line(line)?));
    }
    Ok(records)
}

fn parse_csv_line(line: &str) -> Result<Vec<Value>> {
    let mut fields = Vec::new();
    let mut chars = line.chars().peekable();
    loop {
        let mut field = String::new();
        let quoted = chars.peek() == Some(&'"');
        if quoted {
            chars.next();
            loop {
                match chars.next() {
                    Some('"') => {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            field.push('"');
                        } else {
                            break;
                        }
                    }
                    Some(c) => field.push(c),
                    None => {
                        return Err(RheemError::Storage(format!(
                            "unterminated quoted CSV field in {line:?}"
                        )))
                    }
                }
            }
        } else {
            while let Some(&c) = chars.peek() {
                if c == ',' {
                    break;
                }
                field.push(c);
                chars.next();
            }
        }
        fields.push(infer_value(&field, quoted));
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(c) => {
                return Err(RheemError::Storage(format!(
                    "unexpected character {c:?} after CSV field in {line:?}"
                )))
            }
        }
    }
    Ok(fields)
}

fn infer_value(field: &str, quoted: bool) -> Value {
    if quoted {
        return Value::str(field);
    }
    if field.is_empty() {
        return Value::Null;
    }
    if let Ok(i) = field.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(x) = field.parse::<f64>() {
        return Value::Float(x);
    }
    Value::str(field)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rheem_core::rec;

    fn tricky_records() -> Vec<Record> {
        vec![
            rec![1i64, "plain", 2.5, true],
            Record::new(vec![
                Value::Null,
                Value::str("with,comma"),
                Value::str("with\nnewline"),
                Value::str("with\"quote"),
            ]),
            Record::new(vec![
                Value::Float(f64::NAN),
                Value::Float(-0.0),
                Value::str(format!("sep{}inside", '\u{1f}')),
                Value::str("back\\slash"),
            ]),
            Record::empty(),
        ]
    }

    #[test]
    fn native_codec_round_trips_everything() {
        let records = tricky_records();
        let text = encode_batch(&records);
        let back = decode_batch(&text).unwrap();
        assert_eq!(records, back);
    }

    #[test]
    fn native_codec_preserves_nan_bits() {
        let weird = f64::from_bits(0x7ff8_0000_dead_beef);
        let r = Record::new(vec![Value::Float(weird)]);
        let back = decode_record(&encode_record(&r)).unwrap();
        if let Value::Float(x) = back.get(0).unwrap() {
            assert_eq!(x.to_bits(), weird.to_bits());
        } else {
            panic!("expected float");
        }
    }

    #[test]
    fn decode_rejects_corruption() {
        assert!(decode_record("Xwhat").is_err());
        assert!(decode_record("Inotanumber").is_err());
        assert!(decode_record("B7").is_err());
        assert!(decode_record("Fzz").is_err());
        assert!(decode_record("Sbad\\escape\\q").is_err());
    }

    #[test]
    fn empty_record_round_trips() {
        let r = Record::empty();
        assert_eq!(decode_record(&encode_record(&r)).unwrap(), r);
    }

    #[test]
    fn csv_round_trip_with_quoting() {
        let records = vec![
            rec![1i64, "alice", 3.5],
            Record::new(vec![
                Value::Null,
                Value::str("a,b"),
                Value::str("say \"hi\""),
            ]),
        ];
        let csv = to_csv(&records);
        let back = from_csv(&csv).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], rec![1i64, "alice", 3.5]);
        assert_eq!(back[1].get(0).unwrap(), &Value::Null);
        assert_eq!(back[1].str(1).unwrap(), "a,b");
        assert_eq!(back[1].str(2).unwrap(), "say \"hi\"");
    }

    #[test]
    fn csv_type_inference() {
        let rows = from_csv("1,2.5,x,,true\n").unwrap();
        let r = &rows[0];
        assert_eq!(r.int(0).unwrap(), 1);
        assert_eq!(r.float(1).unwrap(), 2.5);
        assert_eq!(r.str(2).unwrap(), "x");
        assert!(r.get(3).unwrap().is_null());
        // No bool inference from CSV — "true" stays a string.
        assert_eq!(r.str(4).unwrap(), "true");
    }

    #[test]
    fn csv_quoted_numbers_stay_strings() {
        let rows = from_csv("\"42\",42\n").unwrap();
        assert_eq!(rows[0].str(0).unwrap(), "42");
        assert_eq!(rows[0].int(1).unwrap(), 42);
    }

    #[test]
    fn csv_unterminated_quote_is_error() {
        assert!(from_csv("\"oops,1\n").is_err());
    }
}
