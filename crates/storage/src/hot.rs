//! Hot-data buffers (§6, *Embracing hot data*).
//!
//! "We envision processing platforms or storage applications with
//! specialized buffers for embracing frequently accessed data in their
//! native format." A [`HotDataBuffer`] is an LRU cache keyed by
//! `(dataset id, native format)` with a record-count capacity; the storage
//! layer consults it before touching the backing store, so repeated access
//! to hot datasets skips (simulated) I/O entirely.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rheem_core::data::Dataset;
use rheem_core::observe::{Counter, MetricsRegistry};

/// Cache key: which dataset, in which platform-native format.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct HotKey {
    /// Dataset id.
    pub dataset_id: String,
    /// Native format tag (usually the consuming platform's name).
    pub format: String,
}

impl HotKey {
    /// Build a key.
    pub fn new(dataset_id: impl Into<String>, format: impl Into<String>) -> Self {
        HotKey {
            dataset_id: dataset_id.into(),
            format: format.into(),
        }
    }
}

/// Cache hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HotStats {
    /// Lookups that found a cached dataset.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries dropped by [`HotDataBuffer::invalidate_dataset`].
    pub invalidations: u64,
}

struct Entry {
    data: Dataset,
    last_used: u64,
}

struct Inner {
    entries: HashMap<HotKey, Entry>,
    clock: u64,
    resident_records: usize,
    stats: HotStats,
}

/// Pre-resolved counter handles mirroring [`HotStats`] into a shared
/// [`MetricsRegistry`] (no per-lookup name hashing).
struct HotMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    invalidations: Arc<Counter>,
}

/// An LRU cache of datasets in platform-native formats.
pub struct HotDataBuffer {
    capacity_records: usize,
    inner: Mutex<Inner>,
    metrics: Option<HotMetrics>,
}

impl HotDataBuffer {
    /// A buffer that holds at most `capacity_records` records in total.
    pub fn new(capacity_records: usize) -> Self {
        HotDataBuffer {
            capacity_records,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                clock: 0,
                resident_records: 0,
                stats: HotStats::default(),
            }),
            metrics: None,
        }
    }

    /// Mirror hit/miss/eviction/invalidation counts into `registry` as
    /// the counters `storage.hot.hits`, `storage.hot.misses`,
    /// `storage.hot.evictions`, and `storage.hot.invalidations` (in
    /// addition to [`HotDataBuffer::stats`]).
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = Some(HotMetrics {
            hits: registry.counter("storage.hot.hits"),
            misses: registry.counter("storage.hot.misses"),
            evictions: registry.counter("storage.hot.evictions"),
            invalidations: registry.counter("storage.hot.invalidations"),
        });
        self
    }

    /// Look up a dataset, refreshing its recency on a hit.
    pub fn get(&self, key: &HotKey) -> Option<Dataset> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.entries.get_mut(key) {
            Some(e) => {
                e.last_used = clock;
                let data = e.data.clone();
                inner.stats.hits += 1;
                if let Some(m) = &self.metrics {
                    m.hits.inc();
                }
                Some(data)
            }
            None => {
                inner.stats.misses += 1;
                if let Some(m) = &self.metrics {
                    m.misses.inc();
                }
                None
            }
        }
    }

    /// Insert a dataset, evicting least-recently-used entries as needed.
    ///
    /// Datasets larger than the whole buffer are not cached at all, and
    /// neither are empty ones: an empty dataset carries no I/O worth
    /// skipping, but its entry would still occupy a map slot and — worse —
    /// could serve a stale empty result for a dataset that has since been
    /// written (the old behavior; see the regression test).
    pub fn put(&self, key: HotKey, data: Dataset) {
        let len = data.len();
        if len == 0 || len > self.capacity_records {
            return;
        }
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.entries.remove(&key) {
            inner.resident_records -= old.data.len();
        }
        while inner.resident_records + len > self.capacity_records {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    let e = inner.entries.remove(&k).expect("victim exists");
                    inner.resident_records -= e.data.len();
                    inner.stats.evictions += 1;
                    if let Some(m) = &self.metrics {
                        m.evictions.inc();
                    }
                }
                None => break,
            }
        }
        inner.resident_records += len;
        inner.entries.insert(
            key,
            Entry {
                data,
                last_used: clock,
            },
        );
    }

    /// Drop a dataset from the buffer in every format (called on writes so
    /// readers never see stale data).
    pub fn invalidate_dataset(&self, dataset_id: &str) {
        let mut inner = self.inner.lock();
        let victims: Vec<HotKey> = inner
            .entries
            .keys()
            .filter(|k| k.dataset_id == dataset_id)
            .cloned()
            .collect();
        for k in victims {
            let e = inner.entries.remove(&k).expect("victim exists");
            inner.resident_records -= e.data.len();
            inner.stats.invalidations += 1;
            if let Some(m) = &self.metrics {
                m.invalidations.inc();
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> HotStats {
        self.inner.lock().stats
    }

    /// Records currently cached.
    pub fn resident_records(&self) -> usize {
        self.inner.lock().resident_records
    }

    /// Number of cached entries (dataset × format pairs).
    pub fn entries(&self) -> usize {
        self.inner.lock().entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rheem_core::rec;

    fn ds(n: i64) -> Dataset {
        Dataset::new((0..n).map(|i| rec![i]).collect())
    }

    #[test]
    fn hit_after_put() {
        let buf = HotDataBuffer::new(100);
        let key = HotKey::new("a", "java");
        assert!(buf.get(&key).is_none());
        buf.put(key.clone(), ds(10));
        assert_eq!(buf.get(&key).unwrap().len(), 10);
        let s = buf.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn formats_are_distinct_entries() {
        let buf = HotDataBuffer::new(100);
        buf.put(HotKey::new("a", "java"), ds(5));
        assert!(buf.get(&HotKey::new("a", "spark")).is_none());
        assert!(buf.get(&HotKey::new("a", "java")).is_some());
    }

    #[test]
    fn lru_eviction_prefers_cold_entries() {
        let buf = HotDataBuffer::new(20);
        buf.put(HotKey::new("a", "f"), ds(10));
        buf.put(HotKey::new("b", "f"), ds(10));
        // Touch `a` so `b` is the LRU victim.
        buf.get(&HotKey::new("a", "f"));
        buf.put(HotKey::new("c", "f"), ds(10));
        assert!(buf.get(&HotKey::new("a", "f")).is_some());
        assert!(buf.get(&HotKey::new("b", "f")).is_none());
        assert!(buf.get(&HotKey::new("c", "f")).is_some());
        assert_eq!(buf.stats().evictions, 1);
        assert_eq!(buf.resident_records(), 20);
    }

    #[test]
    fn oversized_datasets_are_not_cached() {
        let buf = HotDataBuffer::new(5);
        buf.put(HotKey::new("big", "f"), ds(100));
        assert!(buf.get(&HotKey::new("big", "f")).is_none());
        assert_eq!(buf.resident_records(), 0);
    }

    #[test]
    fn invalidation_clears_all_formats() {
        let buf = HotDataBuffer::new(100);
        buf.put(HotKey::new("a", "java"), ds(5));
        buf.put(HotKey::new("a", "spark"), ds(5));
        buf.put(HotKey::new("b", "java"), ds(5));
        buf.invalidate_dataset("a");
        assert!(buf.get(&HotKey::new("a", "java")).is_none());
        assert!(buf.get(&HotKey::new("a", "spark")).is_none());
        assert!(buf.get(&HotKey::new("b", "java")).is_some());
        assert_eq!(buf.resident_records(), 5);
    }

    #[test]
    fn empty_datasets_are_not_cached() {
        // Regression: an empty dataset used to occupy an entry and could
        // serve a stale empty result after the real dataset was written.
        let buf = HotDataBuffer::new(100);
        let key = HotKey::new("a", "java");
        buf.put(key.clone(), ds(0));
        assert_eq!(buf.entries(), 0);
        assert!(buf.get(&key).is_none());
        // The backing store is consulted, sees the freshly written data,
        // and caches the non-empty version.
        buf.put(key.clone(), ds(7));
        assert_eq!(buf.get(&key).unwrap().len(), 7);
    }

    #[test]
    fn invalidations_are_counted_per_entry_and_mirrored() {
        let registry = MetricsRegistry::new();
        let buf = HotDataBuffer::new(100).with_metrics(&registry);
        buf.put(HotKey::new("a", "java"), ds(5));
        buf.put(HotKey::new("a", "spark"), ds(5));
        buf.put(HotKey::new("b", "java"), ds(5));
        buf.invalidate_dataset("a");
        buf.invalidate_dataset("missing");
        assert_eq!(buf.stats().invalidations, 2);
        assert_eq!(
            registry.counter("storage.hot.invalidations").get(),
            2,
            "registry mirror must match HotStats"
        );
        assert_eq!(buf.entries(), 1);
    }

    #[test]
    fn replacing_an_entry_updates_residency() {
        let buf = HotDataBuffer::new(100);
        buf.put(HotKey::new("a", "f"), ds(10));
        buf.put(HotKey::new("a", "f"), ds(3));
        assert_eq!(buf.resident_records(), 3);
    }
}
