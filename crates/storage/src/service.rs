//! The storage layer: RHEEM's three-level data storage abstraction (§6).
//!
//! * **l-store** — [`StorageRequest`]s: what an application or processing
//!   platform wants done with a dataset, with no placement decision;
//! * **p-store** — [`StorageAtom`]s: requests bound to a concrete store and
//!   transformation plan ("the minimum unit of data quanta transformation");
//! * **x-store** — the [`crate::store::Store`] implementations that execute
//!   atoms.
//!
//! [`StorageLayer`] owns the registered stores, a catalog mapping dataset
//! ids to their placement, the hot-data buffer, and implements the
//! processing side's [`StorageService`] trait so `StorageSource`/
//! `StorageSink` operators work against it transparently.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use rheem_core::data::Dataset;
use rheem_core::error::{Result, RheemError};
use rheem_core::platform::StorageService;

use crate::hot::{HotDataBuffer, HotKey};
use crate::optimizer::{decide, AccessPattern};
use crate::store::{Store, StoreKind};
use crate::transform::TransformationPlan;

/// An l-store request: placement-free intent.
#[derive(Clone)]
pub enum StorageRequest {
    /// Ingest a dataset (the layer decides where/how unless pinned).
    Ingest {
        /// Dataset id to create.
        dataset_id: String,
        /// The data.
        data: Dataset,
        /// Expected workload, for the storage optimizer.
        pattern: Option<AccessPattern>,
    },
    /// Re-materialize a dataset under a transformation.
    Transform {
        /// Source dataset.
        source_id: String,
        /// Target dataset id.
        target_id: String,
        /// The Cartilage transformation plan.
        plan: TransformationPlan,
    },
    /// Move a dataset to a specific store.
    Migrate {
        /// Dataset to move.
        dataset_id: String,
        /// Destination store name.
        to_store: String,
    },
    /// Drop a dataset.
    Drop {
        /// Dataset to drop.
        dataset_id: String,
    },
}

/// A p-store atom: a request bound to a concrete store.
#[derive(Clone)]
pub struct StorageAtom {
    /// The bound request.
    pub request: StorageRequest,
    /// Store that executes it.
    pub store: String,
    /// Index to build after ingestion, when placed on a relational store.
    pub index_column: Option<usize>,
}

/// Aggregated I/O accounting for the layer.
#[derive(Clone, Copy, Debug, Default)]
pub struct StorageMetrics {
    /// Dataset reads served (including hot-buffer hits).
    pub reads: u64,
    /// Dataset writes.
    pub writes: u64,
    /// Serialized bytes moved by backing stores.
    pub bytes: u64,
    /// Simulated store latency charged.
    pub simulated_ms: f64,
}

/// The storage abstraction's core-layer component.
pub struct StorageLayer {
    stores: Vec<Arc<dyn Store>>,
    default_store: String,
    catalog: Mutex<HashMap<String, String>>,
    hot: Option<HotDataBuffer>,
    metrics: Mutex<StorageMetrics>,
}

impl StorageLayer {
    /// A layer with one default store and no hot buffer.
    pub fn new(default_store: Arc<dyn Store>) -> Self {
        let name = default_store.name().to_string();
        StorageLayer {
            stores: vec![default_store],
            default_store: name,
            catalog: Mutex::new(HashMap::new()),
            hot: None,
            metrics: Mutex::new(StorageMetrics::default()),
        }
    }

    /// Register an additional store.
    pub fn with_store(mut self, store: Arc<dyn Store>) -> Self {
        self.stores.push(store);
        self
    }

    /// Enable a hot-data buffer with the given record capacity.
    pub fn with_hot_buffer(mut self, capacity_records: usize) -> Self {
        self.hot = Some(HotDataBuffer::new(capacity_records));
        self
    }

    /// Enable a hot-data buffer that also mirrors its hit/miss/eviction
    /// counts into a shared observability registry (see
    /// [`HotDataBuffer::with_metrics`]).
    pub fn with_observed_hot_buffer(
        mut self,
        capacity_records: usize,
        registry: &rheem_core::observe::MetricsRegistry,
    ) -> Self {
        self.hot = Some(HotDataBuffer::new(capacity_records).with_metrics(registry));
        self
    }

    /// Resolve a store by name.
    pub fn store(&self, name: &str) -> Result<&Arc<dyn Store>> {
        self.stores
            .iter()
            .find(|s| s.name() == name)
            .ok_or_else(|| RheemError::Storage(format!("unknown store: {name}")))
    }

    /// The first registered store of a given kind, if any.
    pub fn store_of_kind(&self, kind: StoreKind) -> Option<&Arc<dyn Store>> {
        self.stores.iter().find(|s| s.kind() == kind)
    }

    /// Which store holds a dataset (catalog lookup, default otherwise).
    pub fn placement(&self, dataset_id: &str) -> String {
        self.catalog
            .lock()
            .get(dataset_id)
            .cloned()
            .unwrap_or_else(|| self.default_store.clone())
    }

    /// Pin a dataset id to a store (for data that already lives somewhere).
    pub fn place(&self, dataset_id: impl Into<String>, store: impl Into<String>) {
        self.catalog.lock().insert(dataset_id.into(), store.into());
    }

    /// Kinds of all registered stores.
    pub fn available_kinds(&self) -> Vec<StoreKind> {
        self.stores.iter().map(|s| s.kind()).collect()
    }

    /// Current accounting.
    pub fn metrics(&self) -> StorageMetrics {
        *self.metrics.lock()
    }

    /// Hot buffer statistics, if a buffer is enabled.
    pub fn hot_stats(&self) -> Option<crate::hot::HotStats> {
        self.hot.as_ref().map(|h| h.stats())
    }

    // -- planning ----------------------------------------------------------

    /// Bind an l-store request to a store and transformation (p-store).
    ///
    /// `Ingest` without an explicit pattern lands on the default store with
    /// the identity plan; with a pattern, the WWHow!-style optimizer picks
    /// placement, layout, and indexing.
    pub fn plan(&self, request: StorageRequest) -> Result<StorageAtom> {
        match &request {
            StorageRequest::Ingest { pattern, .. } => {
                let (store, index_column) = match pattern {
                    None => (self.default_store.clone(), None),
                    Some(p) => {
                        let decision = decide(p, &self.available_kinds())?;
                        let store = self
                            .store_of_kind(decision.kind)
                            .ok_or_else(|| {
                                RheemError::Storage(format!(
                                    "optimizer chose {:?} but no such store is registered",
                                    decision.kind
                                ))
                            })?
                            .name()
                            .to_string();
                        (store, decision.index_column)
                    }
                };
                Ok(StorageAtom {
                    request,
                    store,
                    index_column,
                })
            }
            StorageRequest::Transform { source_id, .. } => Ok(StorageAtom {
                store: self.placement(source_id),
                request,
                index_column: None,
            }),
            StorageRequest::Migrate { to_store, .. } => {
                // Validate the destination now, fail fast.
                self.store(to_store)?;
                Ok(StorageAtom {
                    store: to_store.clone(),
                    request,
                    index_column: None,
                })
            }
            StorageRequest::Drop { dataset_id } => Ok(StorageAtom {
                store: self.placement(dataset_id),
                request,
                index_column: None,
            }),
        }
    }

    /// Execute a bound storage atom (x-store level).
    pub fn execute(&self, atom: StorageAtom) -> Result<()> {
        match atom.request {
            StorageRequest::Ingest {
                dataset_id,
                data,
                pattern,
            } => {
                let plan = match &pattern {
                    Some(p) => decide(p, &self.available_kinds())?.plan,
                    None => TransformationPlan::identity(),
                };
                let transformed = plan.apply(data)?;
                let store = self.store(&atom.store)?;
                let report = store.write(&dataset_id, &transformed)?;
                self.account_write(report);
                if let Some(col) = atom.index_column {
                    if let Some(rel) = store
                        .as_ref()
                        .as_any()
                        .downcast_ref::<crate::store::RelationalStore>()
                    {
                        rel.create_index(&dataset_id, col)?;
                    }
                }
                self.place(&dataset_id, &atom.store);
                self.invalidate(&dataset_id);
                Ok(())
            }
            StorageRequest::Transform {
                source_id,
                target_id,
                plan,
            } => {
                let data = self.read_internal(&source_id)?;
                let transformed = plan.apply(data)?;
                let store = self.store(&atom.store)?;
                let report = store.write(&target_id, &transformed)?;
                self.account_write(report);
                self.place(&target_id, &atom.store);
                self.invalidate(&target_id);
                Ok(())
            }
            StorageRequest::Migrate {
                dataset_id,
                to_store,
            } => {
                let from = self.placement(&dataset_id);
                if from == to_store {
                    return Ok(());
                }
                let data = self.read_internal(&dataset_id)?;
                let report = self.store(&to_store)?.write(&dataset_id, &data)?;
                self.account_write(report);
                self.store(&from)?.delete(&dataset_id)?;
                self.place(&dataset_id, &to_store);
                self.invalidate(&dataset_id);
                Ok(())
            }
            StorageRequest::Drop { dataset_id } => {
                self.store(&atom.store)?.delete(&dataset_id)?;
                self.catalog.lock().remove(&dataset_id);
                self.invalidate(&dataset_id);
                Ok(())
            }
        }
    }

    /// Plan and execute a request in one step.
    pub fn submit(&self, request: StorageRequest) -> Result<()> {
        let atom = self.plan(request)?;
        self.execute(atom)
    }

    /// Plan and execute a whole *storage plan* — an ordered sequence of
    /// requests (the storage-side analogue of an execution plan's task
    /// atoms, §6: "an execution storage plan is composed of storage
    /// atoms"). Atoms are planned eagerly but executed in order, so later
    /// requests see the placements earlier ones created. Fails fast on the
    /// first error; earlier atoms remain applied (storage operations are
    /// not transactional, as in the systems being modeled).
    pub fn submit_all(&self, requests: Vec<StorageRequest>) -> Result<usize> {
        let n = requests.len();
        for request in requests {
            self.submit(request)?;
        }
        Ok(n)
    }

    // -- internals ---------------------------------------------------------

    fn invalidate(&self, dataset_id: &str) {
        if let Some(hot) = &self.hot {
            hot.invalidate_dataset(dataset_id);
        }
    }

    fn account_write(&self, report: crate::store::StorageReport) {
        let mut m = self.metrics.lock();
        m.writes += 1;
        m.bytes += report.bytes;
        m.simulated_ms += report.simulated_ms;
    }

    fn read_internal(&self, dataset_id: &str) -> Result<Dataset> {
        let store_name = self.placement(dataset_id);
        if let Some(hot) = &self.hot {
            let key = HotKey::new(dataset_id, "raw");
            if let Some(data) = hot.get(&key) {
                self.metrics.lock().reads += 1;
                return Ok(data);
            }
            let (data, report) = self.store(&store_name)?.read(dataset_id)?;
            {
                let mut m = self.metrics.lock();
                m.reads += 1;
                m.bytes += report.bytes;
                m.simulated_ms += report.simulated_ms;
            }
            hot.put(key, data.clone());
            Ok(data)
        } else {
            let (data, report) = self.store(&store_name)?.read(dataset_id)?;
            let mut m = self.metrics.lock();
            m.reads += 1;
            m.bytes += report.bytes;
            m.simulated_ms += report.simulated_ms;
            Ok(data)
        }
    }
}

impl StorageService for StorageLayer {
    fn read(&self, dataset_id: &str) -> Result<Dataset> {
        self.read_internal(dataset_id)
    }

    fn write(&self, dataset_id: &str, data: &Dataset) -> Result<()> {
        self.submit(StorageRequest::Ingest {
            dataset_id: dataset_id.to_string(),
            data: data.clone(),
            pattern: None,
        })
    }

    fn cardinality(&self, dataset_id: &str) -> Option<u64> {
        let store_name = self.placement(dataset_id);
        self.store(&store_name).ok()?.cardinality(dataset_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{MemStore, RelationalStore, SimHdfsConfig, SimHdfsStore};
    use rheem_core::rec;

    fn layer_all_stores() -> StorageLayer {
        StorageLayer::new(Arc::new(MemStore::new("mem")))
            .with_store(Arc::new(SimHdfsStore::new(
                "hdfs",
                SimHdfsConfig::default(),
            )))
            .with_store(Arc::new(RelationalStore::new("db")))
    }

    fn nums(n: i64) -> Dataset {
        Dataset::new((0..n).map(|i| rec![i, i * 10]).collect())
    }

    #[test]
    fn ingest_without_pattern_uses_default_store() {
        let layer = layer_all_stores();
        layer
            .submit(StorageRequest::Ingest {
                dataset_id: "d".into(),
                data: nums(5),
                pattern: None,
            })
            .unwrap();
        assert_eq!(layer.placement("d"), "mem");
        assert_eq!(StorageService::read(&layer, "d").unwrap().len(), 5);
    }

    #[test]
    fn optimizer_places_scan_heavy_big_data_on_hdfs() {
        let layer = layer_all_stores();
        layer
            .submit(StorageRequest::Ingest {
                dataset_id: "big".into(),
                data: nums(1000),
                pattern: Some(AccessPattern::scan_heavy(1e8, 10.0)),
            })
            .unwrap();
        assert_eq!(layer.placement("big"), "hdfs");
    }

    #[test]
    fn optimizer_places_lookup_heavy_data_on_relational_with_index() {
        let layer = layer_all_stores();
        layer
            .submit(StorageRequest::Ingest {
                dataset_id: "ops".into(),
                data: nums(100),
                pattern: Some(AccessPattern::lookup_heavy(1e7, 1e5, 0)),
            })
            .unwrap();
        assert_eq!(layer.placement("ops"), "db");
        let db = layer.store("db").unwrap();
        let rel = db
            .as_ref()
            .as_any()
            .downcast_ref::<RelationalStore>()
            .unwrap();
        assert!(rel.has_index("ops", 0));
    }

    #[test]
    fn migrate_moves_data_and_updates_catalog() {
        let layer = layer_all_stores();
        StorageService::write(&layer, "d", &nums(3)).unwrap();
        layer
            .submit(StorageRequest::Migrate {
                dataset_id: "d".into(),
                to_store: "hdfs".into(),
            })
            .unwrap();
        assert_eq!(layer.placement("d"), "hdfs");
        assert_eq!(StorageService::read(&layer, "d").unwrap().len(), 3);
        // Gone from the old store.
        assert!(layer.store("mem").unwrap().read("d").is_err());
    }

    #[test]
    fn transform_materializes_derived_dataset() {
        use crate::transform::TransformStep;
        let layer = layer_all_stores();
        StorageService::write(&layer, "src", &nums(4)).unwrap();
        layer
            .submit(StorageRequest::Transform {
                source_id: "src".into(),
                target_id: "proj".into(),
                plan: TransformationPlan::named("p").then(TransformStep::Project(vec![1])),
            })
            .unwrap();
        let out = StorageService::read(&layer, "proj").unwrap();
        assert_eq!(out.records()[0], rec![0i64]);
        assert_eq!(out.records()[3], rec![30i64]);
    }

    #[test]
    fn drop_removes_dataset() {
        let layer = layer_all_stores();
        StorageService::write(&layer, "d", &nums(2)).unwrap();
        layer
            .submit(StorageRequest::Drop {
                dataset_id: "d".into(),
            })
            .unwrap();
        assert!(StorageService::read(&layer, "d").is_err());
    }

    #[test]
    fn hot_buffer_serves_repeated_reads() {
        let layer = StorageLayer::new(Arc::new(SimHdfsStore::new(
            "hdfs",
            SimHdfsConfig {
                block_records: 10,
                ..SimHdfsConfig::default()
            },
        )))
        .with_hot_buffer(10_000);
        StorageService::write(&layer, "d", &nums(100)).unwrap();
        let before = layer.metrics();
        for _ in 0..5 {
            StorageService::read(&layer, "d").unwrap();
        }
        let after = layer.metrics();
        let hot = layer.hot_stats().unwrap();
        assert_eq!(hot.hits, 4); // first read misses, rest hit
        assert_eq!(hot.misses, 1);
        // Only one read hit the backing store's simulated latency.
        assert!(after.simulated_ms - before.simulated_ms > 0.0);
        assert_eq!(after.reads - before.reads, 5);
    }

    #[test]
    fn writes_invalidate_hot_entries() {
        let layer = StorageLayer::new(Arc::new(MemStore::new("mem"))).with_hot_buffer(10_000);
        StorageService::write(&layer, "d", &nums(3)).unwrap();
        assert_eq!(StorageService::read(&layer, "d").unwrap().len(), 3);
        StorageService::write(&layer, "d", &nums(7)).unwrap();
        assert_eq!(StorageService::read(&layer, "d").unwrap().len(), 7);
    }

    #[test]
    fn storage_plans_execute_in_order() {
        use crate::transform::TransformStep;
        let layer = layer_all_stores();
        let n = layer
            .submit_all(vec![
                StorageRequest::Ingest {
                    dataset_id: "raw".into(),
                    data: nums(10),
                    pattern: None,
                },
                StorageRequest::Transform {
                    source_id: "raw".into(),
                    target_id: "slim".into(),
                    plan: TransformationPlan::named("p").then(TransformStep::Project(vec![0])),
                },
                StorageRequest::Migrate {
                    dataset_id: "slim".into(),
                    to_store: "hdfs".into(),
                },
                StorageRequest::Drop {
                    dataset_id: "raw".into(),
                },
            ])
            .unwrap();
        assert_eq!(n, 4);
        assert_eq!(layer.placement("slim"), "hdfs");
        let slim = StorageService::read(&layer, "slim").unwrap();
        assert_eq!(slim.records()[0].width(), 1);
        assert!(StorageService::read(&layer, "raw").is_err());
    }

    #[test]
    fn storage_plans_fail_fast_but_keep_earlier_effects() {
        let layer = layer_all_stores();
        let err = layer.submit_all(vec![
            StorageRequest::Ingest {
                dataset_id: "kept".into(),
                data: nums(3),
                pattern: None,
            },
            StorageRequest::Migrate {
                dataset_id: "kept".into(),
                to_store: "nonexistent".into(),
            },
        ]);
        assert!(err.is_err());
        assert_eq!(StorageService::read(&layer, "kept").unwrap().len(), 3);
    }

    #[test]
    fn unknown_store_references_fail_fast() {
        let layer = layer_all_stores();
        StorageService::write(&layer, "d", &nums(1)).unwrap();
        assert!(layer
            .plan(StorageRequest::Migrate {
                dataset_id: "d".into(),
                to_store: "nope".into(),
            })
            .is_err());
    }
}
