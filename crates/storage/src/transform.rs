//! Cartilage-style data transformation plans (§6).
//!
//! "Cartilage introduces the notion of data transformation plans, analogous
//! to logical query plans, that specify a sequence of data transformations
//! that should be applied to raw data as it is uploaded into a storage
//! system." A [`TransformationPlan`] is exactly that: an ordered list of
//! [`TransformStep`]s applied between the raw input and the stored layout.

use rheem_core::data::{Dataset, Record, Value};
use rheem_core::error::{Result, RheemError};
use rheem_core::kernels;
use rheem_core::udf::{FilterUdf, KeyUdf, MapUdf};

use crate::codec;

/// One step of a transformation plan.
#[derive(Clone)]
pub enum TransformStep {
    /// Parse raw single-string-field records as CSV lines.
    ParseCsv,
    /// Keep only the given columns, in order.
    Project(Vec<usize>),
    /// Drop rows failing the predicate (e.g. corrupt sensor readings).
    FilterRows(FilterUdf),
    /// Cluster the stored layout by a column.
    SortBy {
        /// Column to sort on.
        column: usize,
        /// Sort direction.
        descending: bool,
    },
    /// Prepend a dense `Int` row id column.
    AddRowIds,
    /// Compute a derived column layout (arbitrary re-mapping).
    Derive(MapUdf),
    /// Deduplicate rows.
    Dedup,
}

impl TransformStep {
    fn name(&self) -> String {
        match self {
            TransformStep::ParseCsv => "ParseCsv".into(),
            TransformStep::Project(cols) => format!("Project({cols:?})"),
            TransformStep::FilterRows(f) => format!("FilterRows({})", f.name),
            TransformStep::SortBy { column, descending } => {
                format!("SortBy(col{column}, desc={descending})")
            }
            TransformStep::AddRowIds => "AddRowIds".into(),
            TransformStep::Derive(m) => format!("Derive({})", m.name),
            TransformStep::Dedup => "Dedup".into(),
        }
    }
}

/// A named sequence of transformation steps.
#[derive(Clone, Default)]
pub struct TransformationPlan {
    /// Plan name for catalogs and explanations.
    pub name: String,
    steps: Vec<TransformStep>,
}

impl TransformationPlan {
    /// The identity plan (raw data stored as-is).
    pub fn identity() -> Self {
        TransformationPlan {
            name: "identity".into(),
            steps: Vec::new(),
        }
    }

    /// An empty plan with a name; chain steps with [`TransformationPlan::then`].
    pub fn named(name: impl Into<String>) -> Self {
        TransformationPlan {
            name: name.into(),
            steps: Vec::new(),
        }
    }

    /// Append a step.
    pub fn then(mut self, step: TransformStep) -> Self {
        self.steps.push(step);
        self
    }

    /// The steps in application order.
    pub fn steps(&self) -> &[TransformStep] {
        &self.steps
    }

    /// Apply all steps to a dataset.
    pub fn apply(&self, data: Dataset) -> Result<Dataset> {
        let mut records = data.into_records();
        for step in &self.steps {
            records = match step {
                TransformStep::ParseCsv => {
                    let mut out = Vec::with_capacity(records.len());
                    for r in &records {
                        if r.width() != 1 {
                            return Err(RheemError::Storage(format!(
                                "ParseCsv expects single-field raw records, got width {}",
                                r.width()
                            )));
                        }
                        let line = r.str(0)?;
                        out.extend(codec::from_csv(line)?);
                    }
                    out
                }
                TransformStep::Project(cols) => kernels::project(&records, cols)?,
                TransformStep::FilterRows(f) => kernels::filter(&records, f),
                TransformStep::SortBy { column, descending } => {
                    let col = *column;
                    kernels::sort(&records, &KeyUdf::field(col), *descending)
                }
                TransformStep::AddRowIds => records
                    .iter()
                    .enumerate()
                    .map(|(i, r)| {
                        let mut fields = vec![Value::Int(i as i64)];
                        fields.extend_from_slice(r.fields());
                        Record::new(fields)
                    })
                    .collect(),
                TransformStep::Derive(m) => kernels::map(&records, m),
                TransformStep::Dedup => kernels::distinct(&records),
            };
        }
        Ok(Dataset::new(records))
    }

    /// Human-readable rendering.
    pub fn explain(&self) -> String {
        let steps: Vec<String> = self.steps.iter().map(|s| s.name()).collect();
        format!("{}: [{}]", self.name, steps.join(" -> "))
    }
}

impl std::fmt::Debug for TransformationPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rheem_core::rec;

    #[test]
    fn identity_plan_is_a_no_op() {
        let data = Dataset::new(vec![rec![1i64, "a"]]);
        let out = TransformationPlan::identity().apply(data.clone()).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn csv_ingestion_pipeline() {
        // Raw lines -> parse -> drop corrupt -> project -> sort.
        let raw = Dataset::new(vec![rec!["3,c,30"], rec!["1,a,10"], rec!["2,b,oops"]]);
        let plan = TransformationPlan::named("ingest")
            .then(TransformStep::ParseCsv)
            .then(TransformStep::FilterRows(FilterUdf::new("numeric", |r| {
                r.int(2).is_ok()
            })))
            .then(TransformStep::Project(vec![0, 2]))
            .then(TransformStep::SortBy {
                column: 0,
                descending: false,
            });
        let out = plan.apply(raw).unwrap();
        assert_eq!(out.records(), &[rec![1i64, 10i64], rec![3i64, 30i64]]);
        assert!(plan.explain().contains("ParseCsv"));
    }

    #[test]
    fn row_ids_and_dedup() {
        let data = Dataset::new(vec![rec!["x"], rec!["x"], rec!["y"]]);
        let plan = TransformationPlan::named("p")
            .then(TransformStep::Dedup)
            .then(TransformStep::AddRowIds);
        let out = plan.apply(data).unwrap();
        assert_eq!(out.records(), &[rec![0i64, "x"], rec![1i64, "y"]]);
    }

    #[test]
    fn parse_csv_rejects_multi_field_input() {
        let data = Dataset::new(vec![rec!["a", "b"]]);
        let plan = TransformationPlan::named("p").then(TransformStep::ParseCsv);
        assert!(plan.apply(data).is_err());
    }

    #[test]
    fn derive_step_reshapes_rows() {
        let data = Dataset::new(vec![rec![2i64, 3i64]]);
        let plan = TransformationPlan::named("p")
            .then(TransformStep::Derive(MapUdf::new("sum", |r| {
                rec![r.int(0).unwrap() + r.int(1).unwrap()]
            })));
        assert_eq!(plan.apply(data).unwrap().records(), &[rec![5i64]]);
    }
}
