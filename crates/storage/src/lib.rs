//! # rheem-storage
//!
//! RHEEM's three-level **data storage abstraction** (paper §6, Figure 4):
//! logical storage requests (l-store), placement-bound storage atoms
//! (p-store), and concrete storage platforms (x-store).
//!
//! * [`store`] — the storage platforms: in-memory, local FS, simulated
//!   HDFS (block-based, replicated, latency-charged), and a relational
//!   store with secondary indexes;
//! * [`transform`] — Cartilage-style data transformation plans applied as
//!   raw data is uploaded;
//! * [`optimizer`] — a WWHow!-style unified storage optimizer deciding
//!   *where* and *how* to store a dataset from a declarative access
//!   pattern;
//! * [`hot`] — hot-data buffers keeping frequently accessed datasets in a
//!   platform's native format;
//! * [`service`] — [`service::StorageLayer`], which routes dataset ids to
//!   stores, runs the optimizer, maintains the hot buffer, and implements
//!   the processing side's `StorageService` trait;
//! * [`codec`] — record serialization (native format + CSV).

#![warn(missing_docs)]

pub mod codec;
pub mod hot;
pub mod optimizer;
pub mod service;
pub mod store;
pub mod transform;

pub use hot::{HotDataBuffer, HotKey, HotStats};
pub use optimizer::{decide, AccessPattern, CostTable, StorageDecision};
pub use service::{StorageAtom, StorageLayer, StorageMetrics, StorageRequest};
pub use store::{
    LocalFsStore, MemStore, RelationalStore, SimHdfsConfig, SimHdfsStore, StorageReport, Store,
    StoreKind,
};
pub use transform::{TransformStep, TransformationPlan};
