//! The unified storage optimizer (§6).
//!
//! "WWHow! is a first effort for a unified data storage optimizer" deciding
//! *where* and *how* to store data. Given a declarative [`AccessPattern`]
//! for a dataset, [`decide`] prices every available [`StoreKind`] with a
//! simple analytical model and returns the cheapest placement together with
//! the [`TransformationPlan`] that prepares the layout (e.g. clustering by
//! the lookup column before loading into the relational store).

use rheem_core::error::{Result, RheemError};

use crate::store::StoreKind;
use crate::transform::{TransformStep, TransformationPlan};

/// Expected workload against one dataset (per "period"; only ratios matter).
#[derive(Clone, Debug)]
pub struct AccessPattern {
    /// Dataset cardinality (records).
    pub dataset_card: f64,
    /// Expected full scans.
    pub full_scans: f64,
    /// Expected point lookups.
    pub point_lookups: f64,
    /// Column the point lookups key on, if any.
    pub lookup_column: Option<usize>,
    /// Expected append batches.
    pub appends: f64,
}

impl AccessPattern {
    /// A scan-only analytical pattern.
    pub fn scan_heavy(dataset_card: f64, full_scans: f64) -> Self {
        AccessPattern {
            dataset_card,
            full_scans,
            point_lookups: 0.0,
            lookup_column: None,
            appends: 0.0,
        }
    }

    /// A lookup-dominated operational pattern.
    pub fn lookup_heavy(dataset_card: f64, point_lookups: f64, column: usize) -> Self {
        AccessPattern {
            dataset_card,
            full_scans: 0.0,
            point_lookups,
            lookup_column: Some(column),
            appends: 0.0,
        }
    }
}

/// The optimizer's verdict for one dataset.
#[derive(Clone, Debug)]
pub struct StorageDecision {
    /// Which kind of store to place the dataset on.
    pub kind: StoreKind,
    /// Column to build a secondary index on, if any.
    pub index_column: Option<usize>,
    /// Estimated total access cost (abstract ms) under the pattern.
    pub estimated_cost: f64,
    /// Layout preparation applied at load time.
    pub plan: TransformationPlan,
}

/// Per-store analytical prices (abstract ms). Exposed so deployments can
/// recalibrate; [`CostTable::default`] matches the simulated stores.
#[derive(Clone, Debug)]
pub struct CostTable {
    /// (per-record scan price, point-lookup price, per-record append price)
    /// for each store kind, plus a residency penalty for memory.
    pub mem_scan: f64,
    /// Point lookup on memory (hash scan unless tiny).
    pub mem_lookup: f64,
    /// Memory residency price per record (opportunity cost of RAM).
    pub mem_residency: f64,
    /// Local FS scan per record.
    pub fs_scan: f64,
    /// Local FS point lookup (always a scan).
    pub fs_lookup_per_record: f64,
    /// Sim-HDFS scan per record (cheap at scale: parallel blocks).
    pub hdfs_scan: f64,
    /// Sim-HDFS lookup per record (terrible: full scan, replication misses).
    pub hdfs_lookup_per_record: f64,
    /// Sim-HDFS fixed per-access block overhead.
    pub hdfs_fixed: f64,
    /// Relational scan per record.
    pub rel_scan: f64,
    /// Relational indexed point lookup (logarithmic, priced flat).
    pub rel_indexed_lookup: f64,
    /// Relational per-record append price (index maintenance).
    pub rel_append: f64,
}

impl Default for CostTable {
    fn default() -> Self {
        CostTable {
            mem_scan: 0.00005,
            mem_lookup: 0.001,
            mem_residency: 0.002,
            fs_scan: 0.0004,
            fs_lookup_per_record: 0.0004,
            hdfs_scan: 0.0001,
            hdfs_lookup_per_record: 0.0005,
            hdfs_fixed: 2.0,
            rel_scan: 0.0003,
            rel_indexed_lookup: 0.01,
            rel_append: 0.0006,
        }
    }
}

fn cost_for(kind: StoreKind, p: &AccessPattern, t: &CostTable) -> f64 {
    let n = p.dataset_card.max(1.0);
    match kind {
        StoreKind::Memory => {
            p.full_scans * n * t.mem_scan
                + p.point_lookups * t.mem_lookup
                + p.appends * 1.0
                + n * t.mem_residency
        }
        StoreKind::LocalFs => {
            p.full_scans * n * t.fs_scan
                + p.point_lookups * n * t.fs_lookup_per_record
                + p.appends * n * t.fs_scan
        }
        StoreKind::SimHdfs => {
            p.full_scans * (n * t.hdfs_scan + t.hdfs_fixed)
                + p.point_lookups * (n * t.hdfs_lookup_per_record + t.hdfs_fixed)
                + p.appends * (n * t.hdfs_scan * 3.0 + t.hdfs_fixed)
        }
        StoreKind::Relational => {
            let lookup = if p.lookup_column.is_some() {
                t.rel_indexed_lookup
            } else {
                n * t.rel_scan
            };
            p.full_scans * n * t.rel_scan + p.point_lookups * lookup + p.appends * n * t.rel_append
        }
    }
}

/// Choose the cheapest placement among `available` store kinds.
pub fn decide(pattern: &AccessPattern, available: &[StoreKind]) -> Result<StorageDecision> {
    decide_with(pattern, available, &CostTable::default())
}

/// [`decide`] with an explicit cost table.
pub fn decide_with(
    pattern: &AccessPattern,
    available: &[StoreKind],
    table: &CostTable,
) -> Result<StorageDecision> {
    let mut best: Option<(StoreKind, f64)> = None;
    for &kind in available {
        let cost = cost_for(kind, pattern, table);
        if best.is_none_or(|(_, c)| cost < c) {
            best = Some((kind, cost));
        }
    }
    let (kind, estimated_cost) =
        best.ok_or_else(|| RheemError::Storage("no stores available to decide among".into()))?;

    let index_column = match kind {
        StoreKind::Relational => pattern.lookup_column,
        _ => None,
    };
    // "How" to store: cluster by the lookup column when one exists, so even
    // scan-based stores benefit from locality.
    let plan = match pattern.lookup_column {
        Some(column) => TransformationPlan::named("clustered").then(TransformStep::SortBy {
            column,
            descending: false,
        }),
        None => TransformationPlan::identity(),
    };
    Ok(StorageDecision {
        kind,
        index_column,
        estimated_cost,
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [StoreKind; 4] = [
        StoreKind::Memory,
        StoreKind::LocalFs,
        StoreKind::SimHdfs,
        StoreKind::Relational,
    ];

    #[test]
    fn huge_scan_heavy_data_goes_to_hdfs() {
        let d = decide(&AccessPattern::scan_heavy(1e8, 10.0), &ALL).unwrap();
        assert_eq!(d.kind, StoreKind::SimHdfs);
        assert!(d.index_column.is_none());
    }

    #[test]
    fn small_hot_data_stays_in_memory() {
        let d = decide(&AccessPattern::scan_heavy(1_000.0, 100.0), &ALL).unwrap();
        assert_eq!(d.kind, StoreKind::Memory);
    }

    #[test]
    fn lookup_heavy_data_goes_relational_with_index() {
        let d = decide(&AccessPattern::lookup_heavy(1e7, 10_000.0, 2), &ALL).unwrap();
        assert_eq!(d.kind, StoreKind::Relational);
        assert_eq!(d.index_column, Some(2));
        // The "how": clustered layout on the lookup column.
        assert!(d.plan.explain().contains("SortBy(col2"));
    }

    #[test]
    fn restricted_availability_is_respected() {
        let d = decide(
            &AccessPattern::lookup_heavy(1e7, 10_000.0, 0),
            &[StoreKind::LocalFs, StoreKind::SimHdfs],
        )
        .unwrap();
        assert!(matches!(d.kind, StoreKind::LocalFs | StoreKind::SimHdfs));
    }

    #[test]
    fn no_stores_is_an_error() {
        assert!(decide(&AccessPattern::scan_heavy(10.0, 1.0), &[]).is_err());
    }

    #[test]
    fn costs_are_monotone_in_workload() {
        let light = AccessPattern::scan_heavy(1e6, 1.0);
        let heavy = AccessPattern::scan_heavy(1e6, 100.0);
        let t = CostTable::default();
        for kind in ALL {
            assert!(cost_for(kind, &heavy, &t) > cost_for(kind, &light, &t));
        }
    }
}
