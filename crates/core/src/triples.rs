//! A tiny in-memory triple store for declarative system metadata.
//!
//! The paper's first research challenge (§8.1) envisions operator mappings
//! and rule/cost models specified "in RDF triples" that the optimizer uses
//! "as a first-class citizen". We implement the spirit of that idea without
//! an RDF dependency: a `(subject, predicate, object)` store with pattern
//! queries. The [`crate::mapping::MappingRegistry`] and the optimizer's hint
//! mechanism are both backed by this store, so developers extend the system
//! by *asserting facts*, not by editing optimizer code.

use std::collections::BTreeSet;
use std::fmt;

/// A `(subject, predicate, object)` fact.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triple {
    /// The entity the fact is about (e.g. a logical operator name).
    pub subject: String,
    /// The relation (e.g. `"mapsTo"`, `"prefersPlatform"`).
    pub predicate: String,
    /// The value (e.g. a physical operator name).
    pub object: String,
}

impl Triple {
    /// Construct a triple from string-likes.
    pub fn new(
        subject: impl Into<String>,
        predicate: impl Into<String>,
        object: impl Into<String>,
    ) -> Self {
        Triple {
            subject: subject.into(),
            predicate: predicate.into(),
            object: object.into(),
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} {} {})", self.subject, self.predicate, self.object)
    }
}

/// A pattern component: match anything or an exact string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Term {
    /// Wildcard.
    Any,
    /// Exact match.
    Is(String),
}

impl Term {
    /// Convenience constructor for [`Term::Is`].
    pub fn is(s: impl Into<String>) -> Self {
        Term::Is(s.into())
    }

    fn matches(&self, s: &str) -> bool {
        match self {
            Term::Any => true,
            Term::Is(t) => t == s,
        }
    }
}

/// An ordered, duplicate-free set of triples with pattern queries.
#[derive(Clone, Debug, Default)]
pub struct TripleStore {
    triples: BTreeSet<Triple>,
}

impl TripleStore {
    /// An empty store.
    pub fn new() -> Self {
        TripleStore::default()
    }

    /// Assert a fact. Returns `true` if it was new.
    pub fn assert(&mut self, t: Triple) -> bool {
        self.triples.insert(t)
    }

    /// Assert a fact from its components.
    pub fn assert_parts(
        &mut self,
        s: impl Into<String>,
        p: impl Into<String>,
        o: impl Into<String>,
    ) -> bool {
        self.assert(Triple::new(s, p, o))
    }

    /// Retract a fact. Returns `true` if it was present.
    pub fn retract(&mut self, t: &Triple) -> bool {
        self.triples.remove(t)
    }

    /// All facts matching the pattern, in lexicographic order.
    pub fn query(&self, s: &Term, p: &Term, o: &Term) -> Vec<&Triple> {
        self.triples
            .iter()
            .filter(|t| s.matches(&t.subject) && p.matches(&t.predicate) && o.matches(&t.object))
            .collect()
    }

    /// Objects of all `(subject, predicate, ?)` facts, in order.
    pub fn objects(&self, subject: &str, predicate: &str) -> Vec<&str> {
        self.query(&Term::is(subject), &Term::is(predicate), &Term::Any)
            .into_iter()
            .map(|t| t.object.as_str())
            .collect()
    }

    /// The single object of `(subject, predicate, ?)`, if exactly one exists.
    pub fn object(&self, subject: &str, predicate: &str) -> Option<&str> {
        let mut objs = self.objects(subject, predicate);
        if objs.len() == 1 {
            objs.pop()
        } else {
            None
        }
    }

    /// Number of stored facts.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True iff no facts are stored.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Iterate over all facts.
    pub fn iter(&self) -> impl Iterator<Item = &Triple> {
        self.triples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TripleStore {
        let mut s = TripleStore::new();
        s.assert_parts("Process", "mapsTo", "HashGroupBy");
        s.assert_parts("Process", "mapsTo", "SortGroupBy");
        s.assert_parts("Process", "prefers", "HashGroupBy");
        s.assert_parts("Initialize", "mapsTo", "Map");
        s
    }

    #[test]
    fn assert_is_idempotent() {
        let mut s = store();
        assert!(!s.assert_parts("Process", "mapsTo", "HashGroupBy"));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn pattern_queries() {
        let s = store();
        assert_eq!(
            s.query(&Term::is("Process"), &Term::is("mapsTo"), &Term::Any)
                .len(),
            2
        );
        assert_eq!(
            s.query(&Term::Any, &Term::is("mapsTo"), &Term::Any).len(),
            3
        );
        assert_eq!(s.query(&Term::Any, &Term::Any, &Term::Any).len(), 4);
        assert!(s
            .query(&Term::is("Nope"), &Term::Any, &Term::Any)
            .is_empty());
    }

    #[test]
    fn objects_are_ordered_and_object_requires_uniqueness() {
        let s = store();
        assert_eq!(
            s.objects("Process", "mapsTo"),
            vec!["HashGroupBy", "SortGroupBy"]
        );
        assert_eq!(s.object("Process", "prefers"), Some("HashGroupBy"));
        assert_eq!(s.object("Process", "mapsTo"), None); // ambiguous
        assert_eq!(s.object("Missing", "mapsTo"), None);
    }

    #[test]
    fn retract_removes_facts() {
        let mut s = store();
        let t = Triple::new("Initialize", "mapsTo", "Map");
        assert!(s.retract(&t));
        assert!(!s.retract(&t));
        assert!(s.objects("Initialize", "mapsTo").is_empty());
    }

    #[test]
    fn display_formats_triple() {
        assert_eq!(Triple::new("a", "b", "c").to_string(), "(a b c)");
    }
}
