//! Physical plans: DAGs of physical operators, and the execution plans the
//! multi-platform optimizer derives from them.
//!
//! A [`PhysicalPlan`] is what an application (layer 1) hands to the core
//! (layer 2). The optimizer annotates every node with a platform and splits
//! the plan into [`TaskAtom`]s — "sub-tasks ... the units of execution ...
//! to be executed on a single data processing platform" (§3.1) — producing
//! an [`ExecutionPlan`].

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use crate::cost::ChannelKind;
use crate::data::Dataset;
use crate::error::{Result, RheemError};
use crate::physical::{CustomPhysicalOp, PhysicalOp};
use crate::udf::{
    FilterUdf, FlatMapUdf, GroupMapUdf, KeyUdf, LoopCondUdf, MapUdf, PairPredicateFn, ReduceUdf,
};

/// Identifier of a node inside one plan. Node ids are assigned in
/// construction order, which the builder guarantees to be a topological
/// order (every input id is smaller than the node's own id).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One operator instance in a plan.
#[derive(Clone, Debug)]
pub struct PhysicalNode {
    /// This node's id.
    pub id: NodeId,
    /// The operator.
    pub op: PhysicalOp,
    /// Producer nodes, one per input slot.
    pub inputs: Vec<NodeId>,
}

/// A directed acyclic graph of physical operators.
#[derive(Clone, Debug, Default)]
pub struct PhysicalPlan {
    nodes: Vec<PhysicalNode>,
}

impl PhysicalPlan {
    /// Assemble a plan from pre-built nodes (rewrite framework only).
    pub(crate) fn from_nodes(nodes: Vec<PhysicalNode>) -> Self {
        PhysicalPlan { nodes }
    }

    /// All nodes in topological (construction) order.
    pub fn nodes(&self) -> &[PhysicalNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the plan has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node by id.
    pub fn node(&self, id: NodeId) -> &PhysicalNode {
        &self.nodes[id.0]
    }

    /// Ids of all sink nodes.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.op.is_sink())
            .map(|n| n.id)
            .collect()
    }

    /// Ids of nodes that no other node consumes.
    pub fn terminals(&self) -> Vec<NodeId> {
        let mut consumed = vec![false; self.nodes.len()];
        for n in &self.nodes {
            for &i in &n.inputs {
                consumed[i.0] = true;
            }
        }
        self.nodes
            .iter()
            .filter(|n| !consumed[n.id.0])
            .map(|n| n.id)
            .collect()
    }

    /// Consumers of each node, indexed by node id.
    pub fn consumers(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for n in &self.nodes {
            for &i in &n.inputs {
                out[i.0].push(n.id);
            }
        }
        out
    }

    /// Structural validation: arity, edge direction, loop-body shape.
    pub fn validate(&self) -> Result<()> {
        if self.nodes.is_empty() {
            return Err(RheemError::InvalidPlan("plan has no nodes".into()));
        }
        for n in &self.nodes {
            if n.inputs.len() != n.op.arity() {
                return Err(RheemError::InvalidPlan(format!(
                    "node {} ({}) has {} inputs but arity {}",
                    n.id,
                    n.op.name(),
                    n.inputs.len(),
                    n.op.arity()
                )));
            }
            for &i in &n.inputs {
                if i.0 >= n.id.0 {
                    return Err(RheemError::InvalidPlan(format!(
                        "node {} consumes non-earlier node {} (cycle or dangling edge)",
                        n.id, i
                    )));
                }
            }
            if let PhysicalOp::Loop { body, .. } = &n.op {
                validate_loop_body(body)?;
            }
        }
        Ok(())
    }

    /// Multi-line, indentation-free textual rendering for debugging.
    pub fn explain(&self) -> String {
        let mut s = String::new();
        for n in &self.nodes {
            let inputs: Vec<String> = n.inputs.iter().map(|i| i.to_string()).collect();
            s.push_str(&format!(
                "{}: {} <- [{}]\n",
                n.id,
                n.op.name(),
                inputs.join(", ")
            ));
        }
        s
    }

    /// Canonical fingerprint of this plan, for plan-cache keying.
    ///
    /// The fingerprint covers every node in topological order: the operator
    /// tag, its declarative payload (expression trees via their canonical
    /// `Display` form, `FieldReduce` specs, projection indices, cost hints
    /// as exact `f64` bit patterns, source names and cardinalities), and the
    /// input wiring. UDFs that carry no declarative payload — arbitrary
    /// closures, [`CustomPhysicalOp`]s, loop conditions — are fingerprinted
    /// by `Arc` identity and flip [`PlanFingerprint::opaque`] on: two plans
    /// sharing such a fingerprint provably share the very same closure
    /// objects, which is why the plan cache confines opaque fingerprints to
    /// one session and never shares them across sessions.
    pub fn fingerprint(&self) -> PlanFingerprint {
        let mut fp = FpHasher::new();
        fingerprint_plan(&mut fp, self);
        fp.finish()
    }
}

/// Canonical identity of a [`PhysicalPlan`] for plan-cache keying.
///
/// Produced by [`PhysicalPlan::fingerprint`]. Equal fingerprints with
/// `opaque == false` mean the two plans are structurally identical down to
/// every declarative payload; with `opaque == true` they additionally share
/// the same closure objects by pointer identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanFingerprint {
    /// 64-bit hash over the canonical plan encoding.
    pub hash: u64,
    /// True when any operator was fingerprinted by closure identity rather
    /// than by a declarative payload. Opaque fingerprints are only
    /// meaningful within the process (and, for the plan cache, within one
    /// session): the pointer a closure hashes to is not stable across
    /// plan reconstructions.
    pub opaque: bool,
}

/// FNV-1a-based streaming hasher used by [`PhysicalPlan::fingerprint`],
/// with a SplitMix64 finalizer for avalanche.
struct FpHasher {
    h: u64,
    opaque: bool,
}

impl FpHasher {
    fn new() -> Self {
        FpHasher {
            h: 0xCBF2_9CE4_8422_2325,
            opaque: false,
        }
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.h ^= b as u64;
            self.h = self.h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }

    fn tag(&mut self, t: u8) {
        self.bytes(&[t]);
    }

    /// Hash a closure by pointer identity and mark the fingerprint opaque.
    fn ptr<T: ?Sized>(&mut self, p: *const T) {
        self.opaque = true;
        self.u64(p as *const () as u64);
    }

    fn finish(self) -> PlanFingerprint {
        PlanFingerprint {
            hash: crate::fault::splitmix64(self.h),
            opaque: self.opaque,
        }
    }
}

fn fingerprint_plan(fp: &mut FpHasher, plan: &PhysicalPlan) {
    fp.usize(plan.len());
    for n in plan.nodes() {
        fp.usize(n.id.0);
        fingerprint_op(fp, &n.op);
        fp.usize(n.inputs.len());
        for i in &n.inputs {
            fp.usize(i.0);
        }
    }
}

fn fingerprint_map(fp: &mut FpHasher, u: &MapUdf) {
    fp.str(&u.name);
    match &u.exprs {
        Some(exprs) => {
            fp.tag(1);
            fp.usize(exprs.len());
            for e in exprs.iter() {
                fp.str(&e.to_string());
            }
        }
        None => {
            fp.tag(0);
            fp.ptr(Arc::as_ptr(&u.f));
        }
    }
}

fn fingerprint_filter(fp: &mut FpHasher, u: &FilterUdf) {
    fp.str(&u.name);
    fp.f64(u.selectivity);
    match &u.expr {
        Some(e) => {
            fp.tag(1);
            fp.str(&e.to_string());
        }
        None => {
            fp.tag(0);
            fp.ptr(Arc::as_ptr(&u.f));
        }
    }
}

fn fingerprint_key(fp: &mut FpHasher, u: &KeyUdf) {
    fp.str(&u.name);
    match u.distinct_keys {
        Some(d) => {
            fp.tag(1);
            fp.f64(d);
        }
        None => fp.tag(0),
    }
    match u.field_index {
        Some(i) => {
            fp.tag(1);
            fp.usize(i);
        }
        None => {
            fp.tag(0);
            fp.ptr(Arc::as_ptr(&u.f));
        }
    }
}

fn fingerprint_reduce(fp: &mut FpHasher, u: &ReduceUdf) {
    fp.str(&u.name);
    match &u.spec {
        Some(spec) => {
            fp.tag(1);
            fp.usize(spec.len());
            for r in spec.iter() {
                fp.tag(match r {
                    crate::udf::FieldReduce::First => 0,
                    crate::udf::FieldReduce::SumInt => 1,
                    crate::udf::FieldReduce::SumFloat => 2,
                    crate::udf::FieldReduce::Min => 3,
                    crate::udf::FieldReduce::Max => 4,
                });
            }
        }
        None => {
            fp.tag(0);
            fp.ptr(Arc::as_ptr(&u.f));
        }
    }
}

fn fingerprint_group(fp: &mut FpHasher, u: &GroupMapUdf) {
    fp.str(&u.name);
    fp.f64(u.per_group_output);
    fp.ptr(Arc::as_ptr(&u.f));
}

fn fingerprint_op(fp: &mut FpHasher, op: &PhysicalOp) {
    match op {
        PhysicalOp::CollectionSource { data, name } => {
            fp.tag(0);
            fp.str(name);
            // Cardinality, not content: the cached artifact (assignments,
            // atoms, estimates) only depends on how *much* data flows, and
            // a cache hit always re-executes against the new plan's data.
            fp.usize(data.len());
        }
        PhysicalOp::StorageSource { dataset_id } => {
            fp.tag(1);
            fp.str(dataset_id);
        }
        PhysicalOp::LoopInput => fp.tag(2),
        PhysicalOp::Map(u) => {
            fp.tag(3);
            fingerprint_map(fp, u);
        }
        PhysicalOp::FlatMap(u) => {
            fp.tag(4);
            fp.str(&u.name);
            fp.f64(u.fanout);
            fp.ptr(Arc::as_ptr(&u.f));
        }
        PhysicalOp::Filter(u) => {
            fp.tag(5);
            fingerprint_filter(fp, u);
        }
        PhysicalOp::Project { indices } => {
            fp.tag(6);
            fp.usize(indices.len());
            for i in indices {
                fp.usize(*i);
            }
        }
        PhysicalOp::SortGroupBy { key, group } => {
            fp.tag(7);
            fingerprint_key(fp, key);
            fingerprint_group(fp, group);
        }
        PhysicalOp::HashGroupBy { key, group } => {
            fp.tag(8);
            fingerprint_key(fp, key);
            fingerprint_group(fp, group);
        }
        PhysicalOp::ReduceByKey { key, reduce } => {
            fp.tag(9);
            fingerprint_key(fp, key);
            fingerprint_reduce(fp, reduce);
        }
        PhysicalOp::GlobalReduce { reduce } => {
            fp.tag(10);
            fingerprint_reduce(fp, reduce);
        }
        PhysicalOp::Sort { key, descending } => {
            fp.tag(11);
            fingerprint_key(fp, key);
            fp.tag(*descending as u8);
        }
        PhysicalOp::Distinct => fp.tag(12),
        PhysicalOp::Sample { fraction, seed } => {
            fp.tag(13);
            fp.f64(*fraction);
            fp.u64(*seed);
        }
        PhysicalOp::Limit { n } => {
            fp.tag(14);
            fp.usize(*n);
        }
        PhysicalOp::ZipWithId => fp.tag(15),
        PhysicalOp::ChunkPipeline { stages } => {
            fp.tag(16);
            fp.usize(stages.len());
            for s in stages.iter() {
                fp.str(&s.name);
                match &s.kind {
                    crate::physical::StageKind::Filter { expr, selectivity } => {
                        fp.tag(0);
                        fp.str(&expr.to_string());
                        fp.f64(*selectivity);
                    }
                    crate::physical::StageKind::Map { exprs } => {
                        fp.tag(1);
                        fp.usize(exprs.len());
                        for e in exprs.iter() {
                            fp.str(&e.to_string());
                        }
                    }
                    crate::physical::StageKind::Project { indices } => {
                        fp.tag(2);
                        fp.usize(indices.len());
                        for i in indices.iter() {
                            fp.usize(*i);
                        }
                    }
                }
            }
        }
        PhysicalOp::HashJoin {
            left_key,
            right_key,
        } => {
            fp.tag(17);
            fingerprint_key(fp, left_key);
            fingerprint_key(fp, right_key);
        }
        PhysicalOp::SortMergeJoin {
            left_key,
            right_key,
        } => {
            fp.tag(18);
            fingerprint_key(fp, left_key);
            fingerprint_key(fp, right_key);
        }
        PhysicalOp::NestedLoopJoin {
            predicate,
            name,
            selectivity,
        } => {
            fp.tag(19);
            fp.str(name);
            fp.f64(*selectivity);
            fp.ptr(Arc::as_ptr(predicate));
        }
        PhysicalOp::CrossProduct => fp.tag(20),
        PhysicalOp::Union => fp.tag(21),
        PhysicalOp::Loop {
            body,
            condition,
            max_iterations,
            expected_iterations,
        } => {
            fp.tag(22);
            fp.str(&condition.name);
            fp.ptr(Arc::as_ptr(&condition.f));
            fp.u64(*max_iterations);
            fp.f64(*expected_iterations);
            fingerprint_plan(fp, body);
        }
        PhysicalOp::Custom(op) => {
            fp.tag(23);
            fp.str(op.name());
            fp.ptr(Arc::as_ptr(op));
        }
        PhysicalOp::CollectSink => fp.tag(24),
        PhysicalOp::CountSink => fp.tag(25),
        PhysicalOp::StorageSink { dataset_id } => {
            fp.tag(26);
            fp.str(dataset_id);
        }
    }
}

fn validate_loop_body(body: &PhysicalPlan) -> Result<()> {
    body.validate()?;
    let loop_inputs = body
        .nodes()
        .iter()
        .filter(|n| matches!(n.op, PhysicalOp::LoopInput))
        .count();
    if loop_inputs != 1 {
        return Err(RheemError::InvalidPlan(format!(
            "loop body must contain exactly one LoopInput, found {loop_inputs}"
        )));
    }
    let terminals = body.terminals();
    if terminals.len() != 1 {
        return Err(RheemError::InvalidPlan(format!(
            "loop body must have exactly one terminal node, found {}",
            terminals.len()
        )));
    }
    if body.node(terminals[0]).op.is_sink() {
        return Err(RheemError::InvalidPlan(
            "loop body terminal must not be a sink; its output is the loop state".into(),
        ));
    }
    Ok(())
}

/// Fluent builder for [`PhysicalPlan`]s.
///
/// Handles returned by builder methods are plain [`NodeId`]s, so arbitrary
/// DAGs (shared sub-plans, multi-sink jobs) can be expressed:
///
/// ```
/// use rheem_core::plan::PlanBuilder;
/// use rheem_core::udf::{FilterUdf, KeyUdf};
/// use rheem_core::rec;
///
/// let mut b = PlanBuilder::new();
/// let src = b.collection("nums", vec![rec![1i64], rec![2i64], rec![3i64]]);
/// let odd = b.filter(src, FilterUdf::new("odd", |r| r.int(0).unwrap() % 2 == 1));
/// b.collect(odd);
/// let plan = b.build().unwrap();
/// assert_eq!(plan.len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct PlanBuilder {
    nodes: Vec<PhysicalNode>,
}

impl PlanBuilder {
    /// A fresh, empty builder.
    pub fn new() -> Self {
        PlanBuilder::default()
    }

    /// Append an arbitrary operator node; inputs must already exist.
    pub fn add(&mut self, op: PhysicalOp, inputs: Vec<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len());
        debug_assert!(inputs.iter().all(|i| i.0 < id.0), "inputs must pre-exist");
        self.nodes.push(PhysicalNode { id, op, inputs });
        id
    }

    /// In-memory collection source.
    pub fn collection(
        &mut self,
        name: impl Into<String>,
        records: Vec<crate::data::Record>,
    ) -> NodeId {
        self.add(
            PhysicalOp::CollectionSource {
                data: Dataset::new(records),
                name: name.into(),
            },
            vec![],
        )
    }

    /// Source over an already-wrapped [`Dataset`].
    pub fn dataset(&mut self, name: impl Into<String>, data: Dataset) -> NodeId {
        self.add(
            PhysicalOp::CollectionSource {
                data,
                name: name.into(),
            },
            vec![],
        )
    }

    /// Source reading from the storage layer.
    pub fn storage_source(&mut self, dataset_id: impl Into<String>) -> NodeId {
        self.add(
            PhysicalOp::StorageSource {
                dataset_id: dataset_id.into(),
            },
            vec![],
        )
    }

    /// The loop-state placeholder (only valid inside loop bodies).
    pub fn loop_input(&mut self) -> NodeId {
        self.add(PhysicalOp::LoopInput, vec![])
    }

    /// Per-quantum map.
    pub fn map(&mut self, input: NodeId, udf: MapUdf) -> NodeId {
        self.add(PhysicalOp::Map(udf), vec![input])
    }

    /// Per-quantum flat map.
    pub fn flat_map(&mut self, input: NodeId, udf: FlatMapUdf) -> NodeId {
        self.add(PhysicalOp::FlatMap(udf), vec![input])
    }

    /// Per-quantum filter.
    pub fn filter(&mut self, input: NodeId, udf: FilterUdf) -> NodeId {
        self.add(PhysicalOp::Filter(udf), vec![input])
    }

    /// Projection onto the given field indices.
    pub fn project(&mut self, input: NodeId, indices: Vec<usize>) -> NodeId {
        self.add(PhysicalOp::Project { indices }, vec![input])
    }

    /// Hash-based group-by (the optimizer may later swap the algorithm).
    pub fn group_by(&mut self, input: NodeId, key: KeyUdf, group: GroupMapUdf) -> NodeId {
        self.add(PhysicalOp::HashGroupBy { key, group }, vec![input])
    }

    /// Explicit sort-based group-by.
    pub fn sort_group_by(&mut self, input: NodeId, key: KeyUdf, group: GroupMapUdf) -> NodeId {
        self.add(PhysicalOp::SortGroupBy { key, group }, vec![input])
    }

    /// Keyed reduction.
    pub fn reduce_by_key(&mut self, input: NodeId, key: KeyUdf, reduce: ReduceUdf) -> NodeId {
        self.add(PhysicalOp::ReduceByKey { key, reduce }, vec![input])
    }

    /// Global reduction to a single quantum.
    pub fn global_reduce(&mut self, input: NodeId, reduce: ReduceUdf) -> NodeId {
        self.add(PhysicalOp::GlobalReduce { reduce }, vec![input])
    }

    /// Sort ascending (or descending) by key.
    pub fn sort(&mut self, input: NodeId, key: KeyUdf, descending: bool) -> NodeId {
        self.add(PhysicalOp::Sort { key, descending }, vec![input])
    }

    /// Duplicate elimination.
    pub fn distinct(&mut self, input: NodeId) -> NodeId {
        self.add(PhysicalOp::Distinct, vec![input])
    }

    /// Bernoulli sampling.
    pub fn sample(&mut self, input: NodeId, fraction: f64, seed: u64) -> NodeId {
        self.add(PhysicalOp::Sample { fraction, seed }, vec![input])
    }

    /// Prefix of `n` quanta.
    pub fn limit(&mut self, input: NodeId, n: usize) -> NodeId {
        self.add(PhysicalOp::Limit { n }, vec![input])
    }

    /// Append a unique id field.
    pub fn zip_with_id(&mut self, input: NodeId) -> NodeId {
        self.add(PhysicalOp::ZipWithId, vec![input])
    }

    /// Hash equi-join.
    pub fn hash_join(
        &mut self,
        left: NodeId,
        right: NodeId,
        left_key: KeyUdf,
        right_key: KeyUdf,
    ) -> NodeId {
        self.add(
            PhysicalOp::HashJoin {
                left_key,
                right_key,
            },
            vec![left, right],
        )
    }

    /// Sort-merge equi-join.
    pub fn sort_merge_join(
        &mut self,
        left: NodeId,
        right: NodeId,
        left_key: KeyUdf,
        right_key: KeyUdf,
    ) -> NodeId {
        self.add(
            PhysicalOp::SortMergeJoin {
                left_key,
                right_key,
            },
            vec![left, right],
        )
    }

    /// Theta join with an arbitrary pair predicate.
    pub fn theta_join(
        &mut self,
        left: NodeId,
        right: NodeId,
        name: impl Into<String>,
        selectivity: f64,
        predicate: PairPredicateFn,
    ) -> NodeId {
        self.add(
            PhysicalOp::NestedLoopJoin {
                predicate,
                name: name.into(),
                selectivity,
            },
            vec![left, right],
        )
    }

    /// Cross product.
    pub fn cross_product(&mut self, left: NodeId, right: NodeId) -> NodeId {
        self.add(PhysicalOp::CrossProduct, vec![left, right])
    }

    /// Bag union.
    pub fn union(&mut self, left: NodeId, right: NodeId) -> NodeId {
        self.add(PhysicalOp::Union, vec![left, right])
    }

    /// Iterate `body` starting from `input` while `condition` holds.
    pub fn repeat(
        &mut self,
        input: NodeId,
        body: PhysicalPlan,
        condition: LoopCondUdf,
        max_iterations: u64,
    ) -> NodeId {
        let expected_iterations = max_iterations as f64;
        self.add(
            PhysicalOp::Loop {
                body: Arc::new(body),
                condition,
                max_iterations,
                expected_iterations,
            },
            vec![input],
        )
    }

    /// An application-defined operator.
    pub fn custom(&mut self, op: Arc<dyn CustomPhysicalOp>, inputs: Vec<NodeId>) -> NodeId {
        self.add(PhysicalOp::Custom(op), inputs)
    }

    /// Materializing sink.
    pub fn collect(&mut self, input: NodeId) -> NodeId {
        self.add(PhysicalOp::CollectSink, vec![input])
    }

    /// Counting sink.
    pub fn count(&mut self, input: NodeId) -> NodeId {
        self.add(PhysicalOp::CountSink, vec![input])
    }

    /// Storage-writing sink.
    pub fn write_storage(&mut self, input: NodeId, dataset_id: impl Into<String>) -> NodeId {
        self.add(
            PhysicalOp::StorageSink {
                dataset_id: dataset_id.into(),
            },
            vec![input],
        )
    }

    /// Finish and validate the plan.
    pub fn build(self) -> Result<PhysicalPlan> {
        let plan = PhysicalPlan { nodes: self.nodes };
        plan.validate()?;
        Ok(plan)
    }

    /// Finish without requiring sinks (used for loop bodies).
    pub fn build_fragment(self) -> Result<PhysicalPlan> {
        let plan = PhysicalPlan { nodes: self.nodes };
        plan.validate()?;
        Ok(plan)
    }
}

// ---------------------------------------------------------------------------
// Execution plans
// ---------------------------------------------------------------------------

/// A dataset flowing from one atom to another.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AtomInput {
    /// The consuming node inside this atom.
    pub consumer: NodeId,
    /// Which input slot of the consumer.
    pub slot: usize,
    /// The producing node (inside another atom).
    pub producer: NodeId,
    /// The channel kind the consumer reads this input from (the last hop
    /// of the chosen conversion route). [`ChannelKind::Memory`] for plans
    /// enumerated without channel information.
    pub channel: ChannelKind,
}

/// A maximal same-platform fragment of the plan — the paper's *task atom*.
#[derive(Clone, Debug)]
pub struct TaskAtom {
    /// Atom index within the execution plan.
    pub id: usize,
    /// Name of the platform that runs this atom.
    pub platform: String,
    /// The plan nodes in this atom, in topological order.
    pub nodes: Vec<NodeId>,
    /// Cross-atom input edges.
    pub inputs: Vec<AtomInput>,
    /// Nodes whose outputs must be surfaced (consumed by other atoms or
    /// being sinks).
    pub outputs: Vec<NodeId>,
}

/// The optimizer's per-node prediction, kept on the execution plan so the
/// observability layer can compare it against what actually happened.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NodeEstimate {
    /// Estimated cost of the node on its assigned platform, in abstract
    /// milliseconds (after calibration factors were applied).
    pub cost_ms: f64,
    /// Estimated output cardinality.
    pub card: f64,
}

/// Which enumeration algorithm produced an [`ExecutionPlan`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EnumerationPath {
    /// The greedy DP enumerator (the historical default, and what
    /// hand-built plans report).
    #[default]
    Greedy,
    /// The v2 subplan-lattice enumerator with lossless pruning.
    LatticeV2,
    /// The v2 enumerator exhausted its budget and degraded gracefully to
    /// the greedy DP.
    GreedyFallback,
}

impl EnumerationPath {
    /// Stable display name (used in stats, traces, and explains).
    pub fn as_str(&self) -> &'static str {
        match self {
            EnumerationPath::Greedy => "greedy-dp",
            EnumerationPath::LatticeV2 => "lattice-v2",
            EnumerationPath::GreedyFallback => "greedy-fallback",
        }
    }
}

impl fmt::Display for EnumerationPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A chosen channel conversion route for one cross-platform boundary edge
/// (recorded by the v2 enumerator for explain rendering and runner-side
/// channel accounting).
#[derive(Clone, Debug)]
pub struct ChannelConversion {
    /// The producing node.
    pub producer: NodeId,
    /// The consuming node.
    pub consumer: NodeId,
    /// The consumer's input slot.
    pub slot: usize,
    /// Producer-side platform.
    pub from: String,
    /// Consumer-side platform.
    pub to: String,
    /// Channel kinds the data passes through, producer side first; empty
    /// when the movement model had no channel declarations.
    pub path: Vec<ChannelKind>,
    /// Priced movement for this edge (transport + conversions).
    pub cost_ms: f64,
}

/// How an [`ExecutionPlan`] was enumerated: which algorithm ran, how much
/// search it did, and what structure it exploited. Defaults describe the
/// greedy DP (no contraction, no recorded conversions).
#[derive(Clone, Debug, Default)]
pub struct EnumerationInfo {
    /// The algorithm that produced the plan.
    pub path: EnumerationPath,
    /// Lattice state expansions performed (0 for the greedy DP).
    pub expansions: usize,
    /// Maximal linear chains contracted into super-nodes before the
    /// search (only chains of ≥ 2 nodes are recorded).
    pub groups: Vec<Vec<NodeId>>,
    /// Channel conversion routes chosen for cross-platform edges.
    pub conversions: Vec<ChannelConversion>,
}

/// The optimizer's final product: a platform-annotated, atom-partitioned plan.
#[derive(Clone, Debug)]
pub struct ExecutionPlan {
    /// The underlying physical plan.
    pub physical: Arc<PhysicalPlan>,
    /// Platform assigned to each node (indexed by node id).
    pub assignments: Vec<String>,
    /// Task atoms in a valid scheduling order.
    pub atoms: Vec<TaskAtom>,
    /// Estimated total cost (platform costs + movement costs), in abstract
    /// milliseconds; what the optimizer minimized.
    pub estimated_cost: f64,
    /// Per-node estimates (indexed by node id). Optimizer-produced plans
    /// always fill this; hand-built plans may leave it empty, in which
    /// case observed-vs-estimated reporting and calibration are skipped.
    pub estimates: Vec<NodeEstimate>,
    /// How the plan was enumerated (algorithm, search effort, contracted
    /// chains, chosen channel conversions).
    pub enumeration: EnumerationInfo,
}

impl ExecutionPlan {
    /// Which atom owns each node.
    pub fn atom_of(&self) -> HashMap<NodeId, usize> {
        let mut m = HashMap::new();
        for atom in &self.atoms {
            for &n in &atom.nodes {
                m.insert(n, atom.id);
            }
        }
        m
    }

    /// Number of platform switches (atom boundary edges).
    pub fn platform_switches(&self) -> usize {
        self.atoms.iter().map(|a| a.inputs.len()).sum()
    }

    /// The atom dependency DAG: for each atom (by index), the sorted,
    /// deduplicated indices of the atoms whose outputs it consumes.
    ///
    /// Validates the plan's cross-atom wiring while it walks it, so the
    /// executor can schedule without any panicking index. Fails with
    /// [`RheemError::InvalidPlan`] if atom ids are not dense (`atoms[i].id
    /// != i`), a boundary edge names a producer node outside the physical
    /// plan or the platform assignments, a producer node is not owned by
    /// any atom, or an atom consumes its own output across a boundary edge
    /// (a self-cycle).
    pub fn atom_dependencies(&self) -> Result<Vec<Vec<usize>>> {
        for (i, atom) in self.atoms.iter().enumerate() {
            if atom.id != i {
                return Err(RheemError::InvalidPlan(format!(
                    "atom at position {i} has id {}; atom ids must be dense",
                    atom.id
                )));
            }
        }
        let atom_of = self.atom_of();
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); self.atoms.len()];
        for atom in &self.atoms {
            for input in &atom.inputs {
                let p = input.producer;
                if p.0 >= self.physical.len() || p.0 >= self.assignments.len() {
                    return Err(RheemError::InvalidPlan(format!(
                        "atom {} consumes node {} outside the plan ({} nodes, {} assignments)",
                        atom.id,
                        p,
                        self.physical.len(),
                        self.assignments.len()
                    )));
                }
                let producer_atom = *atom_of.get(&p).ok_or_else(|| {
                    RheemError::InvalidPlan(format!(
                        "atom {} consumes node {} that no atom produces",
                        atom.id, p
                    ))
                })?;
                if producer_atom == atom.id {
                    return Err(RheemError::InvalidPlan(format!(
                        "atom {} consumes its own node {} across an atom boundary",
                        atom.id, p
                    )));
                }
                deps[atom.id].push(producer_atom);
            }
        }
        for d in &mut deps {
            d.sort_unstable();
            d.dedup();
        }
        Ok(deps)
    }

    /// Position-based variant of [`ExecutionPlan::atom_dependencies`] for
    /// plans whose atom ids are no longer dense — suffix plans spliced in
    /// by mid-job re-planning keep globally unique (but gappy) ids, so
    /// dependencies are expressed over atom *positions* instead.
    ///
    /// Returns, for each atom position, the sorted, deduplicated positions
    /// of the atoms whose outputs it consumes. Producer nodes listed in
    /// `materialized` already have their outputs available (they were
    /// produced before the re-plan) and contribute no edge; everything
    /// else gets the same wiring validation as `atom_dependencies`
    /// (producer bounds, ownership, boundary self-cycles).
    pub fn pending_dependencies(&self, materialized: &HashSet<NodeId>) -> Result<Vec<Vec<usize>>> {
        let mut pos_of: HashMap<NodeId, usize> = HashMap::new();
        for (pos, atom) in self.atoms.iter().enumerate() {
            for &n in &atom.nodes {
                pos_of.insert(n, pos);
            }
        }
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); self.atoms.len()];
        for (pos, atom) in self.atoms.iter().enumerate() {
            for input in &atom.inputs {
                let p = input.producer;
                if p.0 >= self.physical.len() || p.0 >= self.assignments.len() {
                    return Err(RheemError::InvalidPlan(format!(
                        "atom {} consumes node {} outside the plan ({} nodes, {} assignments)",
                        atom.id,
                        p,
                        self.physical.len(),
                        self.assignments.len()
                    )));
                }
                if materialized.contains(&p) {
                    continue;
                }
                let producer_pos = *pos_of.get(&p).ok_or_else(|| {
                    RheemError::InvalidPlan(format!(
                        "atom {} consumes node {} that no pending atom produces \
                         and that is not materialized",
                        atom.id, p
                    ))
                })?;
                if producer_pos == pos {
                    return Err(RheemError::InvalidPlan(format!(
                        "atom {} consumes its own node {} across an atom boundary",
                        atom.id, p
                    )));
                }
                deps[pos].push(producer_pos);
            }
        }
        for d in &mut deps {
            d.sort_unstable();
            d.dedup();
        }
        Ok(deps)
    }

    /// How many boundary edges consume each producer node's output.
    ///
    /// The executor decrements these as atoms finish and drops an
    /// intermediate dataset once its last consumer has run (sink outputs
    /// are kept regardless — they are the job's results).
    pub fn boundary_consumer_counts(&self) -> HashMap<NodeId, usize> {
        let mut counts = HashMap::new();
        for atom in &self.atoms {
            for input in &atom.inputs {
                *counts.entry(input.producer).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Human-readable rendering: node, platform, atom.
    pub fn explain(&self) -> String {
        let atom_of = self.atom_of();
        let mut s = String::new();
        for n in self.physical.nodes() {
            let inputs: Vec<String> = n.inputs.iter().map(|i| i.to_string()).collect();
            s.push_str(&format!(
                "{}: {} <- [{}]  @{} (atom {})\n",
                n.id,
                n.op.name(),
                inputs.join(", "),
                self.assignments[n.id.0],
                atom_of.get(&n.id).copied().unwrap_or(usize::MAX),
            ));
        }
        s.push_str(&format!(
            "atoms: {}, switches: {}, estimated cost: {:.3} ms\n",
            self.atoms.len(),
            self.platform_switches(),
            self.estimated_cost
        ));
        s
    }

    /// The enumerator's companion of [`ExecutionPlan::explain`]: the same
    /// node/platform/atom listing followed by how the plan was found —
    /// which enumeration path ran, how many lattice states it expanded,
    /// the linear chains it contracted into super-nodes, and the channel
    /// conversion route chosen for every cross-platform edge.
    pub fn explain_enumeration(&self) -> String {
        let mut s = self.explain();
        let info = &self.enumeration;
        s.push_str(&format!(
            "enumeration: {} (expansions: {}, contracted groups: {})\n",
            info.path,
            info.expansions,
            info.groups.len()
        ));
        for (i, group) in info.groups.iter().enumerate() {
            let nodes: Vec<String> = group.iter().map(|n| n.to_string()).collect();
            s.push_str(&format!(
                "group {} ({} nodes): {}\n",
                i,
                group.len(),
                nodes.join(" ")
            ));
        }
        for c in &info.conversions {
            let path = if c.path.is_empty() {
                "flat".to_string()
            } else {
                c.path
                    .iter()
                    .map(|k| k.as_str())
                    .collect::<Vec<_>>()
                    .join("->")
            };
            s.push_str(&format!(
                "channel {} -> {}: {} -> {} via [{}] ({:.3} ms)\n",
                c.producer, c.consumer, c.from, c.to, path, c.cost_ms
            ));
        }
        s
    }

    /// The `--observed` companion of [`ExecutionPlan::explain`]: compares,
    /// per atom, the optimizer's estimated cost and output cardinality
    /// against what the job actually measured, with error ratios
    /// (observed/estimated; `x1.000` means the estimate was exact).
    ///
    /// Requires the plan to carry optimizer [`NodeEstimate`]s; hand-built
    /// plans without them get an explanatory note instead of a table.
    pub fn explain_observed(&self, stats: &crate::executor::ExecutionStats) -> String {
        if self.estimates.len() != self.physical.len() {
            return format!(
                "no optimizer estimates attached to this plan; \
                 run it through the optimizer to compare estimated vs observed\n\
                 fault: {} retries, {} replans, {} failovers\n",
                stats.retries, stats.replans, stats.failovers,
            );
        }
        let by_id: HashMap<usize, &crate::executor::AtomStats> =
            stats.atoms.iter().map(|a| (a.atom_id, a)).collect();
        let ratio = |observed: f64, estimated: f64| -> String {
            if estimated > 0.0 && observed.is_finite() {
                format!("x{:.3}", observed / estimated)
            } else {
                "-".into()
            }
        };
        let mut s = String::from(
            "atom  platform     est_ms      obs_ms      ms_ratio  est_out    obs_out    card_ratio\n",
        );
        let mut total_est = 0.0;
        let mut total_obs = 0.0;
        for atom in &self.atoms {
            let est_ms: f64 = atom.nodes.iter().map(|n| self.estimates[n.0].cost_ms).sum();
            let est_out: f64 = atom.nodes.iter().map(|n| self.estimates[n.0].card).sum();
            let (obs_ms, obs_out) = match by_id.get(&atom.id) {
                Some(a) => (a.simulated_elapsed_ms, a.records_out as f64),
                None => {
                    s.push_str(&format!(
                        "{:<4}  {:<11}  {:>10.3}  (not executed)\n",
                        atom.id, atom.platform, est_ms
                    ));
                    continue;
                }
            };
            total_est += est_ms;
            total_obs += obs_ms;
            s.push_str(&format!(
                "{:<4}  {:<11}  {:>10.3}  {:>10.3}  {:>8}  {:>9.0}  {:>9.0}  {:>10}\n",
                atom.id,
                atom.platform,
                est_ms,
                obs_ms,
                ratio(obs_ms, est_ms),
                est_out,
                obs_out,
                ratio(obs_out, est_out),
            ));
        }
        s.push_str(&format!(
            "total: {:.3} estimated ms vs {:.3} observed ms ({}), {:.3} ms movement observed\n",
            total_est,
            total_obs,
            ratio(total_obs, total_est),
            stats.total_movement_ms,
        ));
        s.push_str(&format!(
            "fault: {} retries, {} replans, {} failovers\n",
            stats.retries, stats.replans, stats.failovers,
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rec;
    use crate::udf::{FilterUdf, LoopCondUdf, MapUdf};

    fn simple_plan() -> PhysicalPlan {
        let mut b = PlanBuilder::new();
        let src = b.collection("src", vec![rec![1i64], rec![2i64]]);
        let m = b.map(src, MapUdf::new("inc", |r| rec![r.int(0).unwrap() + 1]));
        b.collect(m);
        b.build().unwrap()
    }

    /// A fully declarative (expression-based) plan: two independent builds
    /// must fingerprint identically.
    fn declarative_plan(records: usize, threshold: i64) -> PhysicalPlan {
        use crate::expr::Expr;
        let mut b = PlanBuilder::new();
        let src = b.collection("s", (0..records as i64).map(|i| rec![i]).collect());
        let f = b.filter(
            src,
            FilterUdf::from_expr("big", Expr::field(0).gt(Expr::lit(threshold))),
        );
        let m = b.map(
            f,
            MapUdf::from_exprs("double", vec![Expr::field(0).mul(Expr::lit(2i64))]),
        );
        b.collect(m);
        b.build().unwrap()
    }

    #[test]
    fn declarative_fingerprints_are_stable_and_transparent() {
        let a = declarative_plan(10, 3).fingerprint();
        let b = declarative_plan(10, 3).fingerprint();
        assert_eq!(a, b, "independent builds of the same plan must agree");
        assert!(!a.opaque, "expression payloads need no identity hashing");
        // Any declarative detail changes the hash: literal, cardinality.
        assert_ne!(a.hash, declarative_plan(10, 4).fingerprint().hash);
        assert_ne!(a.hash, declarative_plan(11, 3).fingerprint().hash);
    }

    #[test]
    fn closure_udfs_fingerprint_by_identity_and_mark_opaque() {
        let udf = FilterUdf::new("pos", |r: &crate::data::Record| r.int(0).unwrap() > 0);
        let build = |u: &FilterUdf| {
            let mut b = PlanBuilder::new();
            let src = b.collection("s", vec![rec![1i64]]);
            let f = b.filter(src, u.clone());
            b.collect(f);
            b.build().unwrap()
        };
        let a = build(&udf).fingerprint();
        let b = build(&udf).fingerprint();
        assert!(a.opaque);
        assert_eq!(a, b, "cloned UDFs share the closure Arc");
        // A freshly constructed closure — even with identical source — is a
        // different identity and must not collide.
        let other = FilterUdf::new("pos", |r: &crate::data::Record| r.int(0).unwrap() > 0);
        assert_ne!(a.hash, build(&other).fingerprint().hash);
    }

    #[test]
    fn loop_bodies_contribute_to_the_fingerprint() {
        let build = |iters: u64| {
            let mut body = PlanBuilder::new();
            let li = body.loop_input();
            body.map(
                li,
                MapUdf::from_exprs(
                    "inc",
                    vec![crate::expr::Expr::field(0).add(crate::expr::Expr::lit(1i64))],
                ),
            );
            let body = body.build_fragment().unwrap();
            let mut b = PlanBuilder::new();
            let src = b.collection("s", vec![rec![0i64]]);
            let l = b.repeat(src, body, LoopCondUdf::fixed_iterations(iters), iters);
            b.collect(l);
            b.build().unwrap()
        };
        let a = build(2).fingerprint();
        assert!(a.opaque, "loop conditions are closures");
        assert_ne!(a.hash, build(3).fingerprint().hash);
    }

    #[test]
    fn builder_produces_topologically_ordered_nodes() {
        let plan = simple_plan();
        assert_eq!(plan.len(), 3);
        for n in plan.nodes() {
            for &i in &n.inputs {
                assert!(i.0 < n.id.0);
            }
        }
        assert_eq!(plan.sinks(), vec![NodeId(2)]);
        assert_eq!(plan.terminals(), vec![NodeId(2)]);
    }

    #[test]
    fn validate_rejects_bad_arity() {
        let plan = PhysicalPlan {
            nodes: vec![PhysicalNode {
                id: NodeId(0),
                op: PhysicalOp::Distinct,
                inputs: vec![],
            }],
        };
        assert!(matches!(plan.validate(), Err(RheemError::InvalidPlan(_))));
    }

    #[test]
    fn validate_rejects_forward_edges() {
        let plan = PhysicalPlan {
            nodes: vec![
                PhysicalNode {
                    id: NodeId(0),
                    op: PhysicalOp::Distinct,
                    inputs: vec![NodeId(1)],
                },
                PhysicalNode {
                    id: NodeId(1),
                    op: PhysicalOp::CollectionSource {
                        data: Dataset::empty(),
                        name: "x".into(),
                    },
                    inputs: vec![],
                },
            ],
        };
        assert!(plan.validate().is_err());
    }

    #[test]
    fn empty_plan_is_invalid() {
        assert!(PhysicalPlan::default().validate().is_err());
    }

    #[test]
    fn loop_body_shape_is_checked() {
        // Valid body: LoopInput -> Map.
        let mut b = PlanBuilder::new();
        let li = b.loop_input();
        b.map(li, MapUdf::new("id", |r| r.clone()));
        let body = b.build_fragment().unwrap();

        let mut outer = PlanBuilder::new();
        let src = outer.collection("s", vec![rec![0i64]]);
        let l = outer.repeat(src, body, LoopCondUdf::fixed_iterations(2), 2);
        outer.collect(l);
        assert!(outer.build().is_ok());

        // Invalid body: no LoopInput.
        let mut b = PlanBuilder::new();
        b.collection("s", vec![rec![0i64]]);
        let bad_body = PhysicalPlan { nodes: b.nodes };
        let mut outer = PlanBuilder::new();
        let src = outer.collection("s", vec![rec![0i64]]);
        let l = outer.repeat(src, bad_body, LoopCondUdf::fixed_iterations(2), 2);
        outer.collect(l);
        assert!(outer.build().is_err());

        // Invalid body: terminal is a sink.
        let mut b = PlanBuilder::new();
        let li = b.loop_input();
        b.collect(li);
        let sink_body = PhysicalPlan { nodes: b.nodes };
        let mut outer = PlanBuilder::new();
        let src = outer.collection("s", vec![rec![0i64]]);
        let l = outer.repeat(src, sink_body, LoopCondUdf::fixed_iterations(2), 2);
        outer.collect(l);
        assert!(outer.build().is_err());
    }

    #[test]
    fn consumers_and_shared_subplans() {
        let mut b = PlanBuilder::new();
        let src = b.collection("s", vec![rec![1i64]]);
        let f1 = b.filter(src, FilterUdf::new("a", |_| true));
        let f2 = b.filter(src, FilterUdf::new("b", |_| true));
        let u = b.union(f1, f2);
        b.collect(u);
        let plan = b.build().unwrap();
        let consumers = plan.consumers();
        assert_eq!(consumers[src.0].len(), 2);
        assert_eq!(consumers[u.0].len(), 1);
    }

    #[test]
    fn explain_mentions_every_node() {
        let plan = simple_plan();
        let text = plan.explain();
        assert!(text.contains("CollectionSource"));
        assert!(text.contains("Map(inc)"));
        assert!(text.contains("CollectSink"));
    }

    /// `{src+map}@a -> {collect}@b`, split into two atoms.
    fn two_atom_exec_plan() -> ExecutionPlan {
        let physical = Arc::new(simple_plan());
        ExecutionPlan {
            physical,
            assignments: vec!["a".into(), "a".into(), "b".into()],
            atoms: vec![
                TaskAtom {
                    id: 0,
                    platform: "a".into(),
                    nodes: vec![NodeId(0), NodeId(1)],
                    inputs: vec![],
                    outputs: vec![NodeId(1)],
                },
                TaskAtom {
                    id: 1,
                    platform: "b".into(),
                    nodes: vec![NodeId(2)],
                    inputs: vec![AtomInput {
                        consumer: NodeId(2),
                        slot: 0,
                        producer: NodeId(1),
                        channel: ChannelKind::Memory,
                    }],
                    outputs: vec![NodeId(2)],
                },
            ],
            estimated_cost: 0.0,
            estimates: vec![],
            enumeration: EnumerationInfo::default(),
        }
    }

    #[test]
    fn explain_observed_without_estimates_degrades_gracefully() {
        let plan = two_atom_exec_plan();
        let text = plan.explain_observed(&crate::executor::ExecutionStats::default());
        assert!(text.contains("no optimizer estimates"));
    }

    #[test]
    fn atom_dependencies_follow_boundary_edges() {
        let plan = two_atom_exec_plan();
        let deps = plan.atom_dependencies().unwrap();
        assert_eq!(deps, vec![vec![], vec![0]]);
        let counts = plan.boundary_consumer_counts();
        assert_eq!(counts.get(&NodeId(1)), Some(&1));
        assert_eq!(counts.get(&NodeId(0)), None);
    }

    #[test]
    fn pending_dependencies_tolerate_gappy_ids_and_materialized_producers() {
        // Same wiring as `two_atom_exec_plan`, but with the suffix shape a
        // re-plan produces: the first atom already ran (its node outputs
        // are materialized), the remaining atom keeps a non-dense id.
        let mut plan = two_atom_exec_plan();
        plan.atoms.remove(0);
        plan.atoms[0].id = 7;
        assert!(plan.atom_dependencies().is_err()); // non-dense ids
        let materialized: HashSet<NodeId> = [NodeId(0), NodeId(1)].into_iter().collect();
        let deps = plan.pending_dependencies(&materialized).unwrap();
        assert_eq!(deps, vec![Vec::<usize>::new()]);
        // Without the materialized set, the dangling producer is an error.
        assert!(plan.pending_dependencies(&HashSet::new()).is_err());
        // On a dense full plan with nothing materialized, positions match
        // `atom_dependencies` exactly.
        let full = two_atom_exec_plan();
        assert_eq!(
            full.pending_dependencies(&HashSet::new()).unwrap(),
            full.atom_dependencies().unwrap()
        );
    }

    #[test]
    fn atom_dependencies_reject_out_of_range_producers() {
        let mut plan = two_atom_exec_plan();
        plan.atoms[1].inputs[0].producer = NodeId(99);
        assert!(matches!(
            plan.atom_dependencies(),
            Err(RheemError::InvalidPlan(_))
        ));
    }

    #[test]
    fn atom_dependencies_reject_unowned_and_truncated_assignments() {
        // Producer node exists but no atom owns it.
        let mut plan = two_atom_exec_plan();
        plan.atoms[0].nodes = vec![NodeId(0)];
        assert!(matches!(
            plan.atom_dependencies(),
            Err(RheemError::InvalidPlan(_))
        ));
        // Assignments vector shorter than the plan: the old executor would
        // have panicked indexing `assignments[edge.producer.0]`.
        let mut plan = two_atom_exec_plan();
        plan.assignments.truncate(1);
        assert!(matches!(
            plan.atom_dependencies(),
            Err(RheemError::InvalidPlan(_))
        ));
    }

    #[test]
    fn atom_dependencies_reject_non_dense_ids_and_self_edges() {
        let mut plan = two_atom_exec_plan();
        plan.atoms[1].id = 7;
        assert!(plan.atom_dependencies().is_err());

        let mut plan = two_atom_exec_plan();
        // Make atom 1 own the node it consumes: a boundary self-edge.
        plan.atoms[1].nodes.push(NodeId(1));
        assert!(plan.atom_dependencies().is_err());
    }
}
