//! Declarative operator mappings.
//!
//! "Defining mappings between execution and physical operators is the
//! developers' responsibility whenever a new platform is plugged to the
//! core ... Developers will provide only a declarative specification of such
//! mappings" (§3.1, *Flexible operator mappings*). We realize this with a
//! [`MappingRegistry`] backed by the RDF-flavoured
//! [`crate::triples::TripleStore`]:
//!
//! * `(<logical-name> mapsTo <physical-variant>)` — admissible translations;
//! * `(<logical-name> prefers <physical-variant>)` — a context hint that
//!   overrides the default choice (the paper's "hints to the optimizer for
//!   choosing the right physical operator at run time");
//! * `(kind:<K> mapsTo/prefers <physical-variant>)` — fallbacks per payload
//!   kind, so applications only assert facts for the operators they care
//!   about.
//!
//! Physical variants are identified by name (e.g. `"HashGroupBy"`); the
//! application optimizer interprets the chosen name when instantiating the
//! physical operator with the logical operator's UDF payload.

use crate::triples::{Term, TripleStore};

/// Physical-variant names understood by the application optimizer.
pub mod variants {
    /// Hash-based grouping.
    pub const HASH_GROUP_BY: &str = "HashGroupBy";
    /// Sort-based grouping.
    pub const SORT_GROUP_BY: &str = "SortGroupBy";
    /// Hash-based equi-join.
    pub const HASH_JOIN: &str = "HashJoin";
    /// Sort-merge equi-join.
    pub const SORT_MERGE_JOIN: &str = "SortMergeJoin";
}

/// The predicate names used in the triple store.
mod predicates {
    pub const MAPS_TO: &str = "mapsTo";
    pub const PREFERS: &str = "prefers";
}

/// Registry of logical-to-physical operator mappings.
#[derive(Clone, Debug)]
pub struct MappingRegistry {
    store: TripleStore,
}

impl Default for MappingRegistry {
    fn default() -> Self {
        MappingRegistry::with_defaults()
    }
}

impl MappingRegistry {
    /// An empty registry with no mappings at all.
    pub fn empty() -> Self {
        MappingRegistry {
            store: TripleStore::new(),
        }
    }

    /// A registry pre-loaded with the kind-level defaults RHEEM ships.
    pub fn with_defaults() -> Self {
        let mut r = MappingRegistry::empty();
        // Grouping has two admissible algorithms; hash is the default.
        r.register_kind("kind:Group", variants::HASH_GROUP_BY);
        r.register_kind("kind:Group", variants::SORT_GROUP_BY);
        r.prefer_kind("kind:Group", variants::HASH_GROUP_BY);
        // Equi-joins likewise.
        r.register_kind("kind:Join", variants::HASH_JOIN);
        r.register_kind("kind:Join", variants::SORT_MERGE_JOIN);
        r.prefer_kind("kind:Join", variants::HASH_JOIN);
        r
    }

    /// Declare that logical operator `logical` may translate to `variant`.
    pub fn register(&mut self, logical: &str, variant: &str) {
        self.store
            .assert_parts(logical, predicates::MAPS_TO, variant);
    }

    /// Declare a kind-level admissible translation (e.g. for `"kind:Group"`).
    pub fn register_kind(&mut self, kind_key: &str, variant: &str) {
        self.store
            .assert_parts(kind_key, predicates::MAPS_TO, variant);
    }

    /// Hint that `logical` should preferably translate to `variant`.
    pub fn prefer(&mut self, logical: &str, variant: &str) {
        // A new preference replaces any previous one for the same subject.
        let old: Vec<_> = self
            .store
            .query(
                &Term::is(logical),
                &Term::is(predicates::PREFERS),
                &Term::Any,
            )
            .into_iter()
            .cloned()
            .collect();
        for t in old {
            self.store.retract(&t);
        }
        self.store
            .assert_parts(logical, predicates::PREFERS, variant);
    }

    /// Kind-level preference.
    pub fn prefer_kind(&mut self, kind_key: &str, variant: &str) {
        self.prefer(kind_key, variant);
    }

    /// All admissible variants for a logical operator, most specific first.
    pub fn alternatives(&self, logical_name: &str, kind_key: &str) -> Vec<String> {
        let mut out: Vec<String> = self
            .store
            .objects(logical_name, predicates::MAPS_TO)
            .into_iter()
            .map(String::from)
            .collect();
        if out.is_empty() {
            out = self
                .store
                .objects(kind_key, predicates::MAPS_TO)
                .into_iter()
                .map(String::from)
                .collect();
        }
        out
    }

    /// Resolve the variant to instantiate for a logical operator.
    ///
    /// Resolution order: operator-specific preference, operator-specific
    /// unique mapping, kind-level preference, first kind-level mapping.
    /// Returns `None` when the registry has no opinion (the optimizer then
    /// falls back to its built-in default for the payload).
    pub fn choose(&self, logical_name: &str, kind_key: &str) -> Option<String> {
        if let Some(v) = self.store.object(logical_name, predicates::PREFERS) {
            return Some(v.to_string());
        }
        let specific = self.store.objects(logical_name, predicates::MAPS_TO);
        if specific.len() == 1 {
            return Some(specific[0].to_string());
        }
        if let Some(v) = self.store.object(kind_key, predicates::PREFERS) {
            return Some(v.to_string());
        }
        self.store
            .objects(kind_key, predicates::MAPS_TO)
            .first()
            .map(|s| s.to_string())
    }

    /// Direct access to the backing triple store (read-only).
    pub fn triples(&self) -> &TripleStore {
        &self.store
    }

    /// Load declarative mapping facts from a textual specification — the
    /// paper's challenge 1 ("Developers will specify mappings between
    /// operators ... The optimizer will use this ... representation as a
    /// first-class citizen"). One fact per line:
    ///
    /// ```text
    /// # BigDansing's Block operator groups by sorting.
    /// Block       mapsTo   SortGroupBy
    /// kind:Join   prefers  SortMergeJoin
    /// ```
    ///
    /// Returns the number of facts loaded.
    pub fn load_spec(&mut self, text: &str) -> crate::error::Result<usize> {
        let mut loaded = 0usize;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.split_whitespace().collect();
            let [subject, predicate, object] = parts.as_slice() else {
                return Err(crate::error::RheemError::InvalidPlan(format!(
                    "mapping spec line {}: expected `subject predicate object`, got `{raw}`",
                    lineno + 1
                )));
            };
            match *predicate {
                "mapsTo" => self.register(subject, object),
                "prefers" => self.prefer(subject, object),
                other => {
                    return Err(crate::error::RheemError::InvalidPlan(format!(
                        "mapping spec line {}: unknown predicate `{other}`",
                        lineno + 1
                    )))
                }
            }
            loaded += 1;
        }
        Ok(loaded)
    }

    /// Render every fact in the registry as a loadable specification.
    pub fn dump_spec(&self) -> String {
        let mut out = String::new();
        for t in self.store.iter() {
            out.push_str(&format!("{} {} {}\n", t.subject, t.predicate, t.object));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_choose_hash_variants() {
        let r = MappingRegistry::with_defaults();
        assert_eq!(
            r.choose("Process", "kind:Group").as_deref(),
            Some(variants::HASH_GROUP_BY)
        );
        assert_eq!(
            r.choose("anything", "kind:Join").as_deref(),
            Some(variants::HASH_JOIN)
        );
    }

    #[test]
    fn operator_specific_preference_overrides_kind_default() {
        let mut r = MappingRegistry::with_defaults();
        r.prefer("Process", variants::SORT_GROUP_BY);
        assert_eq!(
            r.choose("Process", "kind:Group").as_deref(),
            Some(variants::SORT_GROUP_BY)
        );
        // Other operators still get the default.
        assert_eq!(
            r.choose("Other", "kind:Group").as_deref(),
            Some(variants::HASH_GROUP_BY)
        );
    }

    #[test]
    fn re_preferring_replaces_the_old_hint() {
        let mut r = MappingRegistry::with_defaults();
        r.prefer("Process", variants::SORT_GROUP_BY);
        r.prefer("Process", variants::HASH_GROUP_BY);
        assert_eq!(
            r.choose("Process", "kind:Group").as_deref(),
            Some(variants::HASH_GROUP_BY)
        );
    }

    #[test]
    fn unique_specific_mapping_wins_without_preference() {
        let mut r = MappingRegistry::with_defaults();
        r.register("Block", variants::SORT_GROUP_BY);
        assert_eq!(
            r.choose("Block", "kind:Group").as_deref(),
            Some(variants::SORT_GROUP_BY)
        );
    }

    #[test]
    fn ambiguous_specific_mappings_fall_back_to_kind() {
        let mut r = MappingRegistry::with_defaults();
        r.register("Block", variants::SORT_GROUP_BY);
        r.register("Block", variants::HASH_GROUP_BY);
        assert_eq!(
            r.choose("Block", "kind:Group").as_deref(),
            Some(variants::HASH_GROUP_BY) // kind preference
        );
    }

    #[test]
    fn empty_registry_has_no_opinion() {
        let r = MappingRegistry::empty();
        assert_eq!(r.choose("x", "kind:Group"), None);
        assert!(r.alternatives("x", "kind:Group").is_empty());
    }

    #[test]
    fn spec_round_trip() {
        let mut r = MappingRegistry::empty();
        let spec = "\
# grouping\n\
Block mapsTo SortGroupBy\n\
kind:Join prefers SortMergeJoin   # joins sort-merge by default\n\
\n";
        assert_eq!(r.load_spec(spec).unwrap(), 2);
        assert_eq!(
            r.choose("Block", "kind:Group").as_deref(),
            Some(variants::SORT_GROUP_BY)
        );
        assert_eq!(
            r.choose("x", "kind:Join").as_deref(),
            Some(variants::SORT_MERGE_JOIN)
        );
        // Dump reloads into an equivalent registry.
        let mut r2 = MappingRegistry::empty();
        r2.load_spec(&r.dump_spec()).unwrap();
        assert_eq!(r.triples().len(), r2.triples().len());
    }

    #[test]
    fn spec_rejects_malformed_lines() {
        let mut r = MappingRegistry::empty();
        assert!(r.load_spec("just two").is_err());
        assert!(r.load_spec("a unknownPredicate b").is_err());
    }

    #[test]
    fn alternatives_prefer_specific_over_kind() {
        let mut r = MappingRegistry::with_defaults();
        assert_eq!(r.alternatives("x", "kind:Group").len(), 2);
        r.register("x", variants::SORT_GROUP_BY);
        assert_eq!(
            r.alternatives("x", "kind:Group"),
            vec![variants::SORT_GROUP_BY]
        );
    }
}
