//! The physical operator algebra (core layer).
//!
//! A physical operator is "a platform-independent implementation of a
//! logical operator ... representing an algorithmic decision for executing
//! an analytic task" (§3.1). The pool below covers relational, ML, and
//! graph workloads; notably it contains *algorithmic alternatives* for the
//! same semantics (e.g. [`PhysicalOp::SortGroupBy`] vs
//! [`PhysicalOp::HashGroupBy`], three join algorithms) among which the
//! optimizer chooses — exactly the paper's Example 2.
//!
//! Extensibility (§5.2): applications plug new algorithms in via
//! [`CustomPhysicalOp`] without touching this enum — the data cleaning
//! crate's `IEJoin` is implemented that way, mirroring how the paper's
//! authors "extended the set of physical RHEEM operators with a new join
//! operator".

use std::fmt;
use std::sync::Arc;

use crate::data::Dataset;
use crate::error::Result;
use crate::expr::Expr;
use crate::plan::PhysicalPlan;
use crate::udf::{
    FilterUdf, FlatMapUdf, GroupMapUdf, KeyUdf, LoopCondUdf, MapUdf, PairPredicateFn, ReduceUdf,
};

/// The operation performed by one stage of a [`PhysicalOp::ChunkPipeline`].
///
/// Stages are purely declarative (expression-bearing), which is what allows
/// the whole pipeline to run as a single per-chunk evaluation loop with no
/// intermediate record materialization.
#[derive(Clone, Debug)]
pub enum StageKind {
    /// Keep rows whose predicate evaluates to `Bool(true)`.
    Filter {
        /// The predicate expression.
        expr: Arc<Expr>,
        /// Expected fraction of rows kept (inherited from the filter UDF).
        selectivity: f64,
    },
    /// Replace each row with one output field per expression.
    Map {
        /// Output-field expressions.
        exprs: Arc<[Expr]>,
    },
    /// Keep the given columns, in order (zero-copy on chunks).
    Project {
        /// Column indices to keep.
        indices: Arc<[usize]>,
    },
}

/// One fused stage of a [`PhysicalOp::ChunkPipeline`], keeping the display
/// name of the operator it was fused from.
#[derive(Clone, Debug)]
pub struct PipelineStage {
    /// Display name of the original operator (shows up in explains).
    pub name: String,
    /// The stage's operation.
    pub kind: StageKind,
}

/// An application-defined physical operator (extension point).
///
/// The default execution path is single-batch; platforms that partition data
/// call [`CustomPhysicalOp::execute`] once per co-partitioned input set when
/// [`CustomPhysicalOp::partitionable`] returns `true`, and fall back to a
/// single gathered call otherwise.
pub trait CustomPhysicalOp: Send + Sync {
    /// Display name (also used in operator mappings).
    fn name(&self) -> &str;

    /// Number of input datasets the operator consumes.
    fn arity(&self) -> usize;

    /// Execute on fully gathered inputs.
    fn execute(&self, inputs: &[Dataset]) -> Result<Dataset>;

    /// Estimated output cardinality given input cardinalities.
    fn output_cardinality(&self, input_cards: &[f64]) -> f64 {
        input_cards.iter().sum()
    }

    /// Per-record work multiplier used by platform cost models.
    fn cost_factor(&self) -> f64 {
        1.0
    }

    /// Whether the operator may be applied independently per partition.
    ///
    /// `false` (the default) forces platforms to gather inputs first, which
    /// is the safe choice for joins and other cross-partition operators.
    fn partitionable(&self) -> bool {
        false
    }
}

/// A platform-independent physical operator, carrying its UDFs and hints.
#[derive(Clone)]
pub enum PhysicalOp {
    // ---------------------------------------------------------------- sources
    /// An in-memory collection source (arity 0).
    CollectionSource {
        /// The data.
        data: Dataset,
        /// Display name.
        name: String,
    },
    /// A source reading a named dataset from the storage layer (arity 0).
    StorageSource {
        /// Dataset id resolved through the execution context's storage service.
        dataset_id: String,
    },
    /// Placeholder source inside a [`PhysicalOp::Loop`] body, bound to the
    /// loop state at each iteration (arity 0).
    LoopInput,

    // ------------------------------------------------------------- unary ops
    /// Apply a function to each data quantum.
    Map(MapUdf),
    /// Apply a 1-to-many function to each data quantum.
    FlatMap(FlatMapUdf),
    /// Keep quanta satisfying a predicate.
    Filter(FilterUdf),
    /// Keep only the given fields of each quantum.
    Project {
        /// Field indices to keep, in output order.
        indices: Vec<usize>,
    },
    /// Group by key via sorting, then apply a per-group function.
    SortGroupBy {
        /// Grouping key.
        key: KeyUdf,
        /// Per-group transformation.
        group: GroupMapUdf,
    },
    /// Group by key via hashing, then apply a per-group function.
    HashGroupBy {
        /// Grouping key.
        key: KeyUdf,
        /// Per-group transformation.
        group: GroupMapUdf,
    },
    /// Keyed incremental reduction (one output quantum per key).
    ReduceByKey {
        /// Grouping key.
        key: KeyUdf,
        /// Associative combiner.
        reduce: ReduceUdf,
    },
    /// Reduce the whole input to (at most) one quantum.
    GlobalReduce {
        /// Associative combiner.
        reduce: ReduceUdf,
    },
    /// Sort by key.
    Sort {
        /// Sort key.
        key: KeyUdf,
        /// Sort direction.
        descending: bool,
    },
    /// Remove duplicate quanta.
    Distinct,
    /// Bernoulli sample.
    Sample {
        /// Probability of keeping each quantum.
        fraction: f64,
        /// RNG seed (kept explicit for reproducibility).
        seed: u64,
    },
    /// Keep the first `n` quanta.
    Limit {
        /// Number of quanta to keep.
        n: usize,
    },
    /// Append a unique `Int` id field to each quantum.
    ZipWithId,
    /// A fused chain of expression-bearing filter/map/project operators,
    /// evaluated in one pass per columnar chunk (plan-time compilation of
    /// adjacent transparent operators; see `optimizer::fuse`).
    ChunkPipeline {
        /// The fused stages, applied in order.
        stages: Arc<[PipelineStage]>,
    },

    // ------------------------------------------------------------ binary ops
    /// Equality join via hashing; output is `left ++ right`.
    HashJoin {
        /// Key of the left input.
        left_key: KeyUdf,
        /// Key of the right input.
        right_key: KeyUdf,
    },
    /// Equality join via sort-merge; output is `left ++ right`.
    SortMergeJoin {
        /// Key of the left input.
        left_key: KeyUdf,
        /// Key of the right input.
        right_key: KeyUdf,
    },
    /// Theta join evaluating an arbitrary pair predicate.
    NestedLoopJoin {
        /// The join predicate.
        predicate: PairPredicateFn,
        /// Display name.
        name: String,
        /// Fraction of the cross product kept (cardinality hint).
        selectivity: f64,
    },
    /// Full cross product; output is `left ++ right`.
    CrossProduct,
    /// Bag union of two inputs.
    Union,

    // --------------------------------------------------------------- control
    /// Iterate a sub-plan until a condition fails (ML-style loops, §3.1 Ex.1).
    ///
    /// The body must contain exactly one [`PhysicalOp::LoopInput`] node and
    /// exactly one sink-less terminal node whose output becomes the next
    /// loop state.
    Loop {
        /// The loop body.
        body: Arc<PhysicalPlan>,
        /// Continuation test evaluated *before* each iteration.
        condition: LoopCondUdf,
        /// Hard iteration cap (safety net).
        max_iterations: u64,
        /// Expected iteration count for the cost model.
        expected_iterations: f64,
    },

    /// An application-defined operator (extensibility, §5.2).
    Custom(Arc<dyn CustomPhysicalOp>),

    // ----------------------------------------------------------------- sinks
    /// Materialize the input as a job result.
    CollectSink,
    /// Produce a single quantum holding the input cardinality.
    CountSink,
    /// Write the input to the storage layer under the given id.
    StorageSink {
        /// Dataset id for the storage service.
        dataset_id: String,
    },
}

impl PhysicalOp {
    /// Number of input datasets the operator consumes.
    pub fn arity(&self) -> usize {
        match self {
            PhysicalOp::CollectionSource { .. }
            | PhysicalOp::StorageSource { .. }
            | PhysicalOp::LoopInput => 0,
            PhysicalOp::HashJoin { .. }
            | PhysicalOp::SortMergeJoin { .. }
            | PhysicalOp::NestedLoopJoin { .. }
            | PhysicalOp::CrossProduct
            | PhysicalOp::Union => 2,
            PhysicalOp::Custom(op) => op.arity(),
            _ => 1,
        }
    }

    /// True for arity-0 operators.
    pub fn is_source(&self) -> bool {
        self.arity() == 0
    }

    /// True for operators that terminate a plan and surface results.
    pub fn is_sink(&self) -> bool {
        matches!(
            self,
            PhysicalOp::CollectSink | PhysicalOp::CountSink | PhysicalOp::StorageSink { .. }
        )
    }

    /// A short display name, e.g. `Filter(is_adult)`.
    pub fn name(&self) -> String {
        match self {
            PhysicalOp::CollectionSource { name, data } => {
                format!("CollectionSource({name}, {} quanta)", data.len())
            }
            PhysicalOp::StorageSource { dataset_id } => format!("StorageSource({dataset_id})"),
            PhysicalOp::LoopInput => "LoopInput".into(),
            PhysicalOp::Map(u) => format!("Map({})", u.name),
            PhysicalOp::FlatMap(u) => format!("FlatMap({})", u.name),
            PhysicalOp::Filter(u) => format!("Filter({})", u.name),
            PhysicalOp::Project { indices } => format!("Project({indices:?})"),
            PhysicalOp::SortGroupBy { key, group } => {
                format!("SortGroupBy(key={}, group={})", key.name, group.name)
            }
            PhysicalOp::HashGroupBy { key, group } => {
                format!("HashGroupBy(key={}, group={})", key.name, group.name)
            }
            PhysicalOp::ReduceByKey { key, reduce } => {
                format!("ReduceByKey(key={}, reduce={})", key.name, reduce.name)
            }
            PhysicalOp::GlobalReduce { reduce } => format!("GlobalReduce({})", reduce.name),
            PhysicalOp::Sort { key, descending } => {
                format!("Sort(key={}, desc={descending})", key.name)
            }
            PhysicalOp::Distinct => "Distinct".into(),
            PhysicalOp::Sample { fraction, .. } => format!("Sample({fraction})"),
            PhysicalOp::Limit { n } => format!("Limit({n})"),
            PhysicalOp::ZipWithId => "ZipWithId".into(),
            PhysicalOp::ChunkPipeline { stages } => {
                let names: Vec<&str> = stages.iter().map(|s| s.name.as_str()).collect();
                format!("ChunkPipeline[{}]", names.join("→"))
            }
            PhysicalOp::HashJoin {
                left_key,
                right_key,
            } => {
                format!("HashJoin({} = {})", left_key.name, right_key.name)
            }
            PhysicalOp::SortMergeJoin {
                left_key,
                right_key,
            } => {
                format!("SortMergeJoin({} = {})", left_key.name, right_key.name)
            }
            PhysicalOp::NestedLoopJoin { name, .. } => format!("NestedLoopJoin({name})"),
            PhysicalOp::CrossProduct => "CrossProduct".into(),
            PhysicalOp::Union => "Union".into(),
            PhysicalOp::Loop {
                condition,
                max_iterations,
                ..
            } => format!("Loop(cond={}, max={max_iterations})", condition.name),
            PhysicalOp::Custom(op) => format!("Custom({})", op.name()),
            PhysicalOp::CollectSink => "CollectSink".into(),
            PhysicalOp::CountSink => "CountSink".into(),
            PhysicalOp::StorageSink { dataset_id } => format!("StorageSink({dataset_id})"),
        }
    }

    /// A coarse operator-kind tag used by mappings and cost models.
    pub fn kind(&self) -> OpKind {
        match self {
            PhysicalOp::CollectionSource { .. }
            | PhysicalOp::StorageSource { .. }
            | PhysicalOp::LoopInput => OpKind::Source,
            PhysicalOp::Map(_)
            | PhysicalOp::Project { .. }
            | PhysicalOp::ZipWithId
            | PhysicalOp::ChunkPipeline { .. } => OpKind::Map,
            PhysicalOp::FlatMap(_) => OpKind::FlatMap,
            PhysicalOp::Filter(_) | PhysicalOp::Sample { .. } | PhysicalOp::Limit { .. } => {
                OpKind::Filter
            }
            PhysicalOp::SortGroupBy { .. } | PhysicalOp::HashGroupBy { .. } => OpKind::GroupBy,
            PhysicalOp::ReduceByKey { .. } | PhysicalOp::GlobalReduce { .. } => OpKind::Reduce,
            PhysicalOp::Sort { .. } => OpKind::Sort,
            PhysicalOp::Distinct => OpKind::Distinct,
            PhysicalOp::HashJoin { .. } | PhysicalOp::SortMergeJoin { .. } => OpKind::EquiJoin,
            PhysicalOp::NestedLoopJoin { .. } | PhysicalOp::CrossProduct => OpKind::ThetaJoin,
            PhysicalOp::Union => OpKind::Union,
            PhysicalOp::Loop { .. } => OpKind::Loop,
            PhysicalOp::Custom(_) => OpKind::Custom,
            PhysicalOp::CollectSink | PhysicalOp::CountSink | PhysicalOp::StorageSink { .. } => {
                OpKind::Sink
            }
        }
    }
}

impl fmt::Debug for PhysicalOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Coarse classification of physical operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Arity-0 data producers.
    Source,
    /// One-to-one record transforms.
    Map,
    /// One-to-many record transforms.
    FlatMap,
    /// Cardinality-reducing record selections.
    Filter,
    /// Full grouping (materializes groups).
    GroupBy,
    /// Incremental keyed/global reduction.
    Reduce,
    /// Sorting.
    Sort,
    /// Duplicate elimination.
    Distinct,
    /// Equality joins.
    EquiJoin,
    /// Theta joins / cross products.
    ThetaJoin,
    /// Bag union.
    Union,
    /// Iteration.
    Loop,
    /// Application-defined operators.
    Custom,
    /// Result-producing terminals.
    Sink,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Record;
    use crate::rec;

    struct Doubler;
    impl CustomPhysicalOp for Doubler {
        fn name(&self) -> &str {
            "Doubler"
        }
        fn arity(&self) -> usize {
            1
        }
        fn execute(&self, inputs: &[Dataset]) -> Result<Dataset> {
            Ok(inputs[0]
                .iter()
                .map(|r| rec![r.int(0).unwrap() * 2])
                .collect())
        }
    }

    #[test]
    fn arity_and_kind_classification() {
        assert_eq!(PhysicalOp::CrossProduct.arity(), 2);
        assert_eq!(PhysicalOp::Distinct.arity(), 1);
        assert_eq!(PhysicalOp::LoopInput.arity(), 0);
        assert!(PhysicalOp::LoopInput.is_source());
        assert!(PhysicalOp::CollectSink.is_sink());
        assert_eq!(PhysicalOp::CrossProduct.kind(), OpKind::ThetaJoin);
        assert_eq!(
            PhysicalOp::Map(MapUdf::new("id", |r: &Record| r.clone())).kind(),
            OpKind::Map
        );
    }

    #[test]
    fn custom_op_defaults_and_execution() {
        let op = PhysicalOp::Custom(Arc::new(Doubler));
        assert_eq!(op.arity(), 1);
        assert_eq!(op.kind(), OpKind::Custom);
        assert_eq!(op.name(), "Custom(Doubler)");
        if let PhysicalOp::Custom(c) = &op {
            let out = c.execute(&[Dataset::new(vec![rec![3i64]])]).unwrap();
            assert_eq!(out.records(), &[rec![6i64]]);
            assert_eq!(c.output_cardinality(&[10.0]), 10.0);
            assert!(!c.partitionable());
        } else {
            unreachable!()
        }
    }

    #[test]
    fn names_are_descriptive() {
        let op = PhysicalOp::Filter(FilterUdf::new("is_adult", |_| true));
        assert_eq!(op.name(), "Filter(is_adult)");
        let op = PhysicalOp::HashGroupBy {
            key: KeyUdf::field(0),
            group: GroupMapUdf::identity(),
        };
        assert!(op.name().contains("field#0"));
    }
}
