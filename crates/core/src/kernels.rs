//! Shared record-batch algorithms ("execution kernels").
//!
//! Execution operators are platform-*dependent* (§3.1), but the underlying
//! per-batch algorithms are not: a hash join hashes the same way whether the
//! batch is a whole dataset (single-process platform) or one partition of a
//! shuffle (parallel platform). Platforms compose these kernels with their
//! own orchestration — partitioning, threading, disk materialization,
//! simulated overheads — which is where their cost profiles diverge.

pub mod chunked;
pub mod hash;
pub mod parallel;

use std::collections::HashMap;

use crate::data::{Record, Value};
use crate::error::Result;
use crate::udf::{FilterUdf, FlatMapUdf, GroupMapUdf, KeyUdf, MapUdf, PairPredicateFn, ReduceUdf};

/// Apply a map UDF to every record.
pub fn map(records: &[Record], udf: &MapUdf) -> Vec<Record> {
    records.iter().map(|r| (udf.f)(r)).collect()
}

/// Apply a flat-map UDF to every record.
pub fn flat_map(records: &[Record], udf: &FlatMapUdf) -> Vec<Record> {
    let mut out = Vec::with_capacity(records.len());
    for r in records {
        out.extend((udf.f)(r));
    }
    out
}

/// Keep records satisfying the predicate.
pub fn filter(records: &[Record], udf: &FilterUdf) -> Vec<Record> {
    records.iter().filter(|r| (udf.f)(r)).cloned().collect()
}

/// Like [`filter`], but consumes the input batch: surviving records are
/// retained in place instead of cloned. Platforms that own their partition
/// buffers (task closures get the partition by value) use this to keep the
/// kernel hot path allocation-free.
pub fn filter_owned(mut records: Vec<Record>, udf: &FilterUdf) -> Vec<Record> {
    records.retain(|r| (udf.f)(r));
    records
}

/// Project every record onto the given field indices.
pub fn project(records: &[Record], indices: &[usize]) -> Result<Vec<Record>> {
    records.iter().map(|r| r.project(indices)).collect()
}

/// Group records by key using a hash table. Group order is normalized by
/// sorting on the key so results are deterministic across platforms.
pub fn hash_group(records: &[Record], key: &KeyUdf) -> Vec<(Value, Vec<Record>)> {
    let mut groups: HashMap<Value, Vec<Record>> = HashMap::new();
    for r in records {
        groups.entry((key.f)(r)).or_default().push(r.clone());
    }
    let mut out: Vec<(Value, Vec<Record>)> = groups.into_iter().collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Group records by key by sorting; same output contract as [`hash_group`]
/// but with an `O(n log n)` comparison-based profile.
pub fn sort_group(records: &[Record], key: &KeyUdf) -> Vec<(Value, Vec<Record>)> {
    let mut keyed: Vec<(Value, Record)> = records.iter().map(|r| ((key.f)(r), r.clone())).collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out: Vec<(Value, Vec<Record>)> = Vec::new();
    for (k, r) in keyed {
        match out.last_mut() {
            Some((lk, group)) if *lk == k => group.push(r),
            _ => out.push((k, vec![r])),
        }
    }
    out
}

/// Apply a per-group UDF to grouped records.
pub fn apply_group_map(groups: &[(Value, Vec<Record>)], udf: &GroupMapUdf) -> Vec<Record> {
    let mut out = Vec::new();
    for (k, members) in groups {
        out.extend((udf.f)(k, members));
    }
    out
}

/// Keyed incremental reduction; one output record per key, ordered by key.
pub fn reduce_by_key(records: &[Record], key: &KeyUdf, reduce: &ReduceUdf) -> Vec<Record> {
    let mut acc: HashMap<Value, Record> = HashMap::new();
    for r in records {
        // One hash lookup per record: accumulate in place via the entry
        // API (the old remove-then-insert hashed every key twice).
        acc.entry((key.f)(r))
            .and_modify(|a| *a = (reduce.f)(std::mem::take(a), r))
            .or_insert_with(|| r.clone());
    }
    let mut keyed: Vec<(Value, Record)> = acc.into_iter().collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    keyed.into_iter().map(|(_, r)| r).collect()
}

/// Reduce all records into at most one.
pub fn global_reduce(records: &[Record], reduce: &ReduceUdf) -> Vec<Record> {
    let mut it = records.iter();
    match it.next() {
        None => Vec::new(),
        Some(first) => {
            let mut acc = first.clone();
            for r in it {
                acc = (reduce.f)(acc, r);
            }
            vec![acc]
        }
    }
}

/// Hash equi-join; output records are `left ++ right`.
pub fn hash_join(
    left: &[Record],
    right: &[Record],
    left_key: &KeyUdf,
    right_key: &KeyUdf,
) -> Vec<Record> {
    // Always build on the right and probe with the left so the output order
    // is deterministic (left-major) regardless of input sizes.
    let mut table: HashMap<Value, Vec<&Record>> = HashMap::new();
    for r in right {
        table.entry((right_key.f)(r)).or_default().push(r);
    }
    let mut out = Vec::new();
    for l in left {
        if let Some(matches) = table.get(&(left_key.f)(l)) {
            for r in matches {
                out.push(l.concat(r));
            }
        }
    }
    out
}

/// Sort-merge equi-join; output records are `left ++ right`.
pub fn sort_merge_join(
    left: &[Record],
    right: &[Record],
    left_key: &KeyUdf,
    right_key: &KeyUdf,
) -> Vec<Record> {
    let mut l: Vec<(Value, &Record)> = left.iter().map(|r| ((left_key.f)(r), r)).collect();
    let mut r: Vec<(Value, &Record)> = right.iter().map(|r| ((right_key.f)(r), r)).collect();
    l.sort_by(|a, b| a.0.cmp(&b.0));
    r.sort_by(|a, b| a.0.cmp(&b.0));

    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < l.len() && j < r.len() {
        match l[i].0.cmp(&r[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Emit the full match rectangle for this key.
                let key = l[i].0.clone();
                let i_end = l[i..].iter().take_while(|(k, _)| *k == key).count() + i;
                let j_end = r[j..].iter().take_while(|(k, _)| *k == key).count() + j;
                for (_, lrec) in &l[i..i_end] {
                    for (_, rrec) in &r[j..j_end] {
                        out.push(lrec.concat(rrec));
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    out
}

/// Nested-loop theta join with an arbitrary pair predicate.
pub fn nested_loop_join(
    left: &[Record],
    right: &[Record],
    predicate: &PairPredicateFn,
) -> Vec<Record> {
    let mut out = Vec::new();
    for l in left {
        for r in right {
            if predicate(l, r) {
                out.push(l.concat(r));
            }
        }
    }
    out
}

/// Full cross product.
pub fn cross_product(left: &[Record], right: &[Record]) -> Vec<Record> {
    let mut out = Vec::with_capacity(left.len() * right.len());
    for l in left {
        for r in right {
            out.push(l.concat(r));
        }
    }
    out
}

/// Stable sort by key.
pub fn sort(records: &[Record], key: &KeyUdf, descending: bool) -> Vec<Record> {
    let mut keyed: Vec<(Value, Record)> = records.iter().map(|r| ((key.f)(r), r.clone())).collect();
    if descending {
        keyed.sort_by(|a, b| b.0.cmp(&a.0));
    } else {
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
    }
    keyed.into_iter().map(|(_, r)| r).collect()
}

/// Duplicate elimination preserving first occurrence order.
pub fn distinct(records: &[Record]) -> Vec<Record> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for r in records {
        if seen.insert(r.clone()) {
            out.push(r.clone());
        }
    }
    out
}

/// Deterministic Bernoulli sample: record `i` (counting from `offset`) is
/// kept iff `splitmix64(seed, offset + i) < fraction`.
///
/// Indexing by global position (instead of a sequential RNG stream) makes
/// the decision for each record independent of partitioning, so partitioned
/// platforms produce exactly the same sample as single-process ones. Kept
/// dependency-free so the core crate needs no RNG crate.
///
/// A non-finite `fraction` (NaN, ±∞) is rejected as
/// [`RheemError::InvalidPlan`](crate::error::RheemError::InvalidPlan): NaN in particular slips *both* range guards
/// (`NaN >= 1.0` and `NaN <= 0.0` are false) and would silently sample with
/// `u < NaN` — which keeps nothing while looking like a valid fraction.
pub fn sample(records: &[Record], fraction: f64, seed: u64, offset: u64) -> Result<Vec<Record>> {
    if !fraction.is_finite() {
        return Err(crate::error::RheemError::InvalidPlan(format!(
            "sample fraction must be finite, got {fraction}"
        )));
    }
    if fraction >= 1.0 {
        return Ok(records.to_vec());
    }
    if fraction <= 0.0 {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    for (i, r) in records.iter().enumerate() {
        let mut z = seed.wrapping_add((offset + i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        if u < fraction {
            out.push(r.clone());
        }
    }
    Ok(out)
}

/// First `n` records.
pub fn limit(records: &[Record], n: usize) -> Vec<Record> {
    records.iter().take(n).cloned().collect()
}

/// Append a unique `Int` id to each record, starting at `offset`.
///
/// Partitioned platforms pass disjoint offsets per partition so ids stay
/// globally unique. Id arithmetic is checked: an `offset` close enough to
/// `i64::MAX` that `offset + i` would wrap (silently producing negative,
/// *colliding* ids) is reported as [`RheemError::InvalidPlan`](crate::error::RheemError::InvalidPlan) instead.
pub fn zip_with_id(records: &[Record], offset: i64) -> Result<Vec<Record>> {
    records
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let id = i64::try_from(i)
                .ok()
                .and_then(|i| offset.checked_add(i))
                .ok_or_else(|| {
                    crate::error::RheemError::InvalidPlan(format!(
                        "zip_with_id overflows i64 at offset {offset} + index {i}"
                    ))
                })?;
            let mut out = r.clone();
            out.push(Value::Int(id));
            Ok(out)
        })
        .collect()
}

/// Bag union (concatenation).
pub fn union(left: &[Record], right: &[Record]) -> Vec<Record> {
    let mut out = Vec::with_capacity(left.len() + right.len());
    out.extend_from_slice(left);
    out.extend_from_slice(right);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rec;
    use std::sync::Arc;

    fn nums(v: &[i64]) -> Vec<Record> {
        v.iter().map(|&i| rec![i]).collect()
    }

    #[test]
    fn map_filter_flatmap() {
        let data = nums(&[1, 2, 3]);
        let doubled = map(&data, &MapUdf::new("x2", |r| rec![r.int(0).unwrap() * 2]));
        assert_eq!(doubled, nums(&[2, 4, 6]));
        let odd = filter(
            &data,
            &FilterUdf::new("odd", |r| r.int(0).unwrap() % 2 == 1),
        );
        assert_eq!(odd, nums(&[1, 3]));
        let dup = flat_map(
            &data,
            &FlatMapUdf::new("dup", |r| vec![r.clone(), r.clone()]),
        );
        assert_eq!(dup.len(), 6);
    }

    #[test]
    fn filter_owned_matches_filter() {
        let data = nums(&[1, 2, 3, 4]);
        let udf = FilterUdf::new("odd", |r| r.int(0).unwrap() % 2 == 1);
        assert_eq!(filter_owned(data.clone(), &udf), filter(&data, &udf));
    }

    #[test]
    fn hash_and_sort_group_agree() {
        let data = vec![rec![1i64, "a"], rec![2i64, "b"], rec![1i64, "c"]];
        let key = KeyUdf::field(0);
        let h = hash_group(&data, &key);
        let s = sort_group(&data, &key);
        assert_eq!(h, s);
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].1.len(), 2);
    }

    #[test]
    fn reduce_by_key_sums_per_key() {
        let data = vec![rec![1i64, 10i64], rec![2i64, 5i64], rec![1i64, 7i64]];
        let out = reduce_by_key(
            &data,
            &KeyUdf::field(0),
            &ReduceUdf::new("sum", |a, b| {
                rec![a.int(0).unwrap(), a.int(1).unwrap() + b.int(1).unwrap()]
            }),
        );
        assert_eq!(out, vec![rec![1i64, 17i64], rec![2i64, 5i64]]);
    }

    #[test]
    fn global_reduce_handles_empty_and_nonempty() {
        let sum = ReduceUdf::new("sum", |a, b| rec![a.int(0).unwrap() + b.int(0).unwrap()]);
        assert!(global_reduce(&[], &sum).is_empty());
        assert_eq!(global_reduce(&nums(&[1, 2, 3]), &sum), nums(&[6]));
    }

    #[test]
    fn joins_agree_on_equality_semantics() {
        let left = vec![rec![1i64, "l1"], rec![2i64, "l2"], rec![2i64, "l2b"]];
        let right = vec![rec![2i64, "r2"], rec![3i64, "r3"], rec![2i64, "r2b"]];
        let lk = KeyUdf::field(0);
        let rk = KeyUdf::field(0);
        let mut h = hash_join(&left, &right, &lk, &rk);
        let mut s = sort_merge_join(&left, &right, &lk, &rk);
        h.sort();
        s.sort();
        assert_eq!(h, s);
        assert_eq!(h.len(), 4); // 2 left × 2 right matches on key 2
        assert_eq!(h[0].width(), 4);
    }

    #[test]
    fn nested_loop_join_matches_predicate() {
        let left = nums(&[1, 5]);
        let right = nums(&[3, 4]);
        let pred: PairPredicateFn = Arc::new(|l, r| l.int(0).unwrap() < r.int(0).unwrap());
        let out = nested_loop_join(&left, &right, &pred);
        assert_eq!(out.len(), 2); // (1,3), (1,4)
    }

    #[test]
    fn cross_product_size() {
        let out = cross_product(&nums(&[1, 2]), &nums(&[3, 4, 5]));
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn sort_directions() {
        let data = nums(&[3, 1, 2]);
        assert_eq!(sort(&data, &KeyUdf::field(0), false), nums(&[1, 2, 3]));
        assert_eq!(sort(&data, &KeyUdf::field(0), true), nums(&[3, 2, 1]));
    }

    #[test]
    fn distinct_preserves_first_occurrence() {
        let data = nums(&[2, 1, 2, 3, 1]);
        assert_eq!(distinct(&data), nums(&[2, 1, 3]));
    }

    #[test]
    fn sample_is_deterministic_and_bounded() {
        let data = nums(&(0..1000).collect::<Vec<_>>());
        let a = sample(&data, 0.3, 42, 0).unwrap();
        let b = sample(&data, 0.3, 42, 0).unwrap();
        assert_eq!(a, b);
        // Loose statistical bound: expect ~300 ± 100.
        assert!(a.len() > 200 && a.len() < 400, "got {}", a.len());
        assert!(sample(&data, 0.0, 1, 0).unwrap().is_empty());
        assert_eq!(sample(&data, 1.0, 1, 0).unwrap().len(), 1000);
    }

    #[test]
    fn sample_is_partition_invariant() {
        let data = nums(&(0..100).collect::<Vec<_>>());
        let whole = sample(&data, 0.5, 7, 0).unwrap();
        let mut parts = sample(&data[..40], 0.5, 7, 0).unwrap();
        parts.extend(sample(&data[40..], 0.5, 7, 40).unwrap());
        assert_eq!(whole, parts);
    }

    #[test]
    fn sample_rejects_non_finite_fractions() {
        let data = nums(&[1, 2, 3]);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = sample(&data, bad, 1, 0).unwrap_err();
            assert!(
                matches!(err, crate::error::RheemError::InvalidPlan(_)),
                "fraction {bad} gave {err:?}"
            );
        }
    }

    #[test]
    fn limit_and_zip_with_id() {
        let data = nums(&[5, 6, 7]);
        assert_eq!(limit(&data, 2), nums(&[5, 6]));
        assert_eq!(limit(&data, 99), data);
        let z = zip_with_id(&data, 100).unwrap();
        assert_eq!(z[0], rec![5i64, 100i64]);
        assert_eq!(z[2], rec![7i64, 102i64]);
    }

    #[test]
    fn zip_with_id_checks_overflow_at_the_boundary() {
        let data = nums(&[5, 6, 7]);
        // offset + 2 == i64::MAX exactly: last id fits, no error.
        let z = zip_with_id(&data, i64::MAX - 2).unwrap();
        assert_eq!(z[2], rec![7i64, i64::MAX]);
        // offset + 2 wraps past i64::MAX: error, not a negative id.
        let err = zip_with_id(&data, i64::MAX - 1).unwrap_err();
        assert!(matches!(err, crate::error::RheemError::InvalidPlan(_)));
    }

    #[test]
    fn union_concatenates() {
        assert_eq!(union(&nums(&[1]), &nums(&[2, 3])), nums(&[1, 2, 3]));
    }
}
