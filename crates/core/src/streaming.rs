//! Micro-batch stream processing on top of the batch abstraction.
//!
//! The paper's vision explicitly covers the **lambda architecture**: "many
//! companies are already adopting a lambda architecture, which combines
//! both batch and stream processing. Our vision goes beyond batch or stream
//! processing to any kind of data analytics paradigm" (§2). RHEEM-style
//! systems serve the *speed layer* by running the same plans over small
//! micro-batches — which is exactly what [`MicroBatchDriver`] does: each
//! arriving batch becomes the source of a fresh plan built from the same
//! template, the optimizer picks a platform *per batch* (small batches
//! land on the single-process engine, a backlog surge can shift to the
//! partitioned one), and a fold merges per-batch outputs into the caller's
//! state.

use crate::data::{Dataset, Record};
use crate::error::{Result, RheemError};
use crate::executor::ExecutionStats;
use crate::plan::{NodeId, PlanBuilder};
use crate::RheemContext;

/// Per-batch outcome handed to the state fold.
pub struct BatchOutcome {
    /// Index of the batch in arrival order.
    pub batch_index: usize,
    /// The batch's plan output.
    pub output: Dataset,
    /// Execution statistics (platform choice, simulated time).
    pub stats: ExecutionStats,
}

/// Drives a plan template over a stream of micro-batches.
pub struct MicroBatchDriver<Build> {
    build: Build,
}

impl<Build> MicroBatchDriver<Build>
where
    Build: FnMut(&mut PlanBuilder, NodeId) -> NodeId,
{
    /// `build` receives a [`PlanBuilder`] and the batch's source node and
    /// returns the node whose output is the batch result (a `CollectSink`
    /// is appended automatically).
    pub fn new(build: Build) -> Self {
        MicroBatchDriver { build }
    }

    /// Process one batch; returns its outcome.
    pub fn process_batch(
        &mut self,
        ctx: &RheemContext,
        batch_index: usize,
        batch: Vec<Record>,
    ) -> Result<BatchOutcome> {
        let mut b = PlanBuilder::new();
        let src = b.collection(format!("batch-{batch_index}"), batch);
        let out = (self.build)(&mut b, src);
        let sink = b.collect(out);
        let plan = b.build()?;
        let result = ctx.execute(plan)?;
        Ok(BatchOutcome {
            batch_index,
            output: result.outputs[&sink].clone(),
            stats: result.stats,
        })
    }

    /// Run the whole stream, folding every batch outcome into `state`.
    pub fn run<S>(
        &mut self,
        ctx: &RheemContext,
        batches: impl IntoIterator<Item = Vec<Record>>,
        mut state: S,
        mut merge: impl FnMut(&mut S, BatchOutcome) -> Result<()>,
    ) -> Result<S> {
        for (i, batch) in batches.into_iter().enumerate() {
            let outcome = self.process_batch(ctx, i, batch)?;
            merge(&mut state, outcome)?;
        }
        Ok(state)
    }
}

/// Chop a record stream into fixed-size micro-batches (the last batch may
/// be short; empty input yields no batches).
///
/// A `batch_size` of zero is rejected with [`RheemError::InvalidPlan`]:
/// silently clamping it (as earlier versions did) hides a configuration
/// bug and turns every record into its own single-element batch.
pub fn micro_batches(records: Vec<Record>, batch_size: usize) -> Result<Vec<Vec<Record>>> {
    if batch_size == 0 {
        return Err(RheemError::InvalidPlan(
            "micro_batches requires batch_size >= 1".into(),
        ));
    }
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(batch_size);
    for r in records {
        current.push(r);
        if current.len() == batch_size {
            out.push(std::mem::replace(
                &mut current,
                Vec::with_capacity(batch_size),
            ));
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rec;
    use crate::udf::{FilterUdf, KeyUdf, ReduceUdf};
    use crate::{AtomResult, ExecutionContext, Platform, PlatformRegistry, ProcessingProfile};
    use std::sync::Arc;

    /// A minimal platform over the reference interpreter, so the core crate
    /// can test end-to-end without `rheem-platforms`.
    struct MockPlatform;
    impl Platform for MockPlatform {
        fn name(&self) -> &str {
            "mock"
        }
        fn profile(&self) -> ProcessingProfile {
            ProcessingProfile::SingleProcess
        }
        fn supports(&self, _op: &crate::PhysicalOp) -> bool {
            true
        }
        fn cost_model(&self) -> Arc<dyn crate::cost::PlatformCostModel> {
            Arc::new(crate::cost::LinearCostModel::single_threaded(1e-4))
        }
        fn execute_atom(
            &self,
            plan: &crate::PhysicalPlan,
            atom: &crate::TaskAtom,
            inputs: &crate::AtomInputs,
            ctx: &ExecutionContext,
        ) -> Result<AtomResult> {
            let run = crate::interpreter::run_fragment(plan, &atom.nodes, inputs, ctx, None)?;
            Ok(AtomResult {
                outputs: atom
                    .outputs
                    .iter()
                    .filter_map(|n| run.outputs.get(n).map(|d| (*n, d.clone())))
                    .collect(),
                records_processed: run.records_processed,
                simulated_overhead_ms: 0.0,
                simulated_elapsed_ms: 0.0,
                node_observations: run.observations,
            })
        }
    }

    fn ctx() -> RheemContext {
        let _ = PlatformRegistry::new();
        RheemContext::new().with_platform(Arc::new(MockPlatform))
    }

    #[test]
    fn micro_batches_chop_evenly_and_keep_the_tail() {
        let records: Vec<Record> = (0..10i64).map(|i| rec![i]).collect();
        let batches = micro_batches(records.clone(), 4).unwrap();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 4);
        assert_eq!(batches[2].len(), 2);
        let flat: Vec<Record> = batches.into_iter().flatten().collect();
        assert_eq!(flat, records);
        assert!(micro_batches(vec![], 4).unwrap().is_empty());
    }

    #[test]
    fn zero_batch_size_is_a_clean_invalid_plan_error() {
        // Regression: batch_size == 0 used to be silently clamped to 1,
        // degenerating the stream into one batch per record.
        let records: Vec<Record> = (0..10i64).map(|i| rec![i]).collect();
        let err = micro_batches(records, 0).unwrap_err();
        assert!(matches!(err, crate::error::RheemError::InvalidPlan(_)));
        assert!(micro_batches(vec![], 0).is_err());
    }

    #[test]
    fn driver_folds_batch_results_into_state() {
        // Stream of [sensor, value]; running per-sensor sums across batches.
        let records: Vec<Record> = (0..100i64).map(|i| rec![i % 4, 1i64]).collect();
        let ctx = ctx();
        let mut driver = MicroBatchDriver::new(|b: &mut PlanBuilder, src| {
            b.reduce_by_key(
                src,
                KeyUdf::field(0),
                ReduceUdf::new("sum", |a, x: &Record| {
                    rec![a.int(0).unwrap(), a.int(1).unwrap() + x.int(1).unwrap()]
                }),
            )
        });
        let totals = driver
            .run(
                &ctx,
                micro_batches(records, 16).unwrap(),
                std::collections::HashMap::<i64, i64>::new(),
                |state, outcome| {
                    for r in outcome.output.iter() {
                        *state.entry(r.int(0)?).or_insert(0) += r.int(1)?;
                    }
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(totals.len(), 4);
        for v in totals.values() {
            assert_eq!(*v, 25);
        }
    }

    #[test]
    fn each_batch_gets_a_fresh_plan() {
        let ctx = ctx();
        let mut driver = MicroBatchDriver::new(|b: &mut PlanBuilder, src| {
            b.filter(src, FilterUdf::new("pos", |r| r.int(0).unwrap() > 0))
        });
        let o1 = driver
            .process_batch(&ctx, 0, vec![rec![1i64], rec![-1i64]])
            .unwrap();
        let o2 = driver.process_batch(&ctx, 1, vec![rec![-5i64]]).unwrap();
        assert_eq!(o1.output.len(), 1);
        assert_eq!(o2.output.len(), 0);
        assert_eq!(o2.batch_index, 1);
    }
}
