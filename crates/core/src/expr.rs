//! A small expression IR for transparent filter/map/project logic.
//!
//! The paper's processing abstraction is "fully based on user-defined
//! functions" (§1), which makes operators opaque to the optimizer. The
//! UDF-analysis line of work (Hueske et al., PAPERS.md) shows how much an
//! engine gains when it can see *inside* an operator; this module is the
//! declarative half of that bargain: operators may carry an [`Expr`] tree
//! instead of (in addition to) an opaque closure, which lets the optimizer
//! fuse adjacent operators into a single per-chunk evaluation loop
//! (`ChunkPipeline`) and lets kernels evaluate vectorized over columns.
//!
//! Semantics are null-safe and match [`Value`]'s total order exactly:
//!
//! * field references past the record width read as `Null`;
//! * arithmetic: `Int ⊕ Int → Int` (wrapping; `Div`/`Mod` by zero →
//!   `Null`), mixed `Int`/`Float` widens to `Float` (IEEE, so float
//!   division by zero yields ±∞/NaN, *not* `Null`), non-numeric operands →
//!   `Null`;
//! * comparisons use [`Value::cmp`]'s total order on *any* operand pair
//!   (`Null < Bool < Int < Float < Str`, floats by `total_cmp`) and always
//!   produce a `Bool` — never `Null`;
//! * `And`/`Or` are Kleene three-valued, treating any non-`Bool` operand as
//!   unknown (`Null`);
//! * `Not`/`Neg` on an unsupported operand → `Null`.
//!
//! The row evaluator ([`Expr::eval`]) and the vectorized evaluator
//! ([`Expr::eval_chunk`]) share the same scalar functions, so they agree by
//! construction; the proptest suite additionally checks byte identity.

use std::fmt;
use std::sync::Arc;

use crate::data::{Chunk, Column, Record, Value};

/// Binary operators of the expression IR.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// Addition (wrapping for `Int`).
    Add,
    /// Subtraction (wrapping for `Int`).
    Sub,
    /// Multiplication (wrapping for `Int`).
    Mul,
    /// Division (`Int` by zero → `Null`; `Float` follows IEEE).
    Div,
    /// Remainder (`Int` by zero → `Null`; `Float` follows IEEE).
    Mod,
    /// Equality under [`Value`]'s total order.
    Eq,
    /// Inequality under [`Value`]'s total order.
    Ne,
    /// Strictly-less under [`Value`]'s total order.
    Lt,
    /// Less-or-equal under [`Value`]'s total order.
    Le,
    /// Strictly-greater under [`Value`]'s total order.
    Gt,
    /// Greater-or-equal under [`Value`]'s total order.
    Ge,
    /// Kleene logical and.
    And,
    /// Kleene logical or.
    Or,
}

impl BinOp {
    fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// A declarative scalar expression over one record / one chunk row.
#[derive(Clone, Debug)]
pub enum Expr {
    /// The value of field `i` (`Null` when out of bounds).
    Field(usize),
    /// A constant.
    Lit(Value),
    /// Logical negation (`Null` on non-`Bool`).
    Not(Arc<Expr>),
    /// Arithmetic negation (`Null` on non-numeric; wrapping for `Int`).
    Neg(Arc<Expr>),
    /// True iff the operand is `Null`.
    IsNull(Arc<Expr>),
    /// A binary operation.
    Bin(BinOp, Arc<Expr>, Arc<Expr>),
}

// The builders deliberately shadow the `std::ops` trait names: `Expr` is a
// by-value AST builder, not an arithmetic type, and `a.add(b)` reads as the
// expression it constructs.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Reference to field `i`.
    pub fn field(i: usize) -> Expr {
        Expr::Field(i)
    }

    /// A literal constant.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// Build a binary expression `self ⊕ rhs`.
    pub fn bin(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Bin(op, Arc::new(self), Arc::new(rhs))
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Add, rhs)
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Sub, rhs)
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Mul, rhs)
    }

    /// `self / rhs`.
    pub fn div(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Div, rhs)
    }

    /// `self % rhs`.
    pub fn rem(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Mod, rhs)
    }

    /// `self == rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Eq, rhs)
    }

    /// `self != rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ne, rhs)
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Lt, rhs)
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Le, rhs)
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Gt, rhs)
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ge, rhs)
    }

    /// `self && rhs` (Kleene).
    pub fn and(self, rhs: Expr) -> Expr {
        self.bin(BinOp::And, rhs)
    }

    /// `self || rhs` (Kleene).
    pub fn or(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Or, rhs)
    }

    /// `!self`.
    pub fn not(self) -> Expr {
        Expr::Not(Arc::new(self))
    }

    /// `-self`.
    pub fn neg(self) -> Expr {
        Expr::Neg(Arc::new(self))
    }

    /// `self IS NULL`.
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Arc::new(self))
    }

    /// Rewrite every `Field(i)` through `map` (used when fusing through a
    /// projection); returns `None` when a referenced field is dropped.
    pub fn remap_fields(&self, map: &dyn Fn(usize) -> Option<usize>) -> Option<Expr> {
        Some(match self {
            Expr::Field(i) => Expr::Field(map(*i)?),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Not(e) => Expr::Not(Arc::new(e.remap_fields(map)?)),
            Expr::Neg(e) => Expr::Neg(Arc::new(e.remap_fields(map)?)),
            Expr::IsNull(e) => Expr::IsNull(Arc::new(e.remap_fields(map)?)),
            Expr::Bin(op, a, b) => Expr::Bin(
                *op,
                Arc::new(a.remap_fields(map)?),
                Arc::new(b.remap_fields(map)?),
            ),
        })
    }

    /// Substitute each `Field(i)` with `exprs[i]` (used when fusing a map
    /// into a downstream expression); out-of-range fields become `Null`.
    pub fn substitute(&self, exprs: &[Expr]) -> Expr {
        match self {
            Expr::Field(i) => exprs.get(*i).cloned().unwrap_or(Expr::Lit(Value::Null)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Not(e) => Expr::Not(Arc::new(e.substitute(exprs))),
            Expr::Neg(e) => Expr::Neg(Arc::new(e.substitute(exprs))),
            Expr::IsNull(e) => Expr::IsNull(Arc::new(e.substitute(exprs))),
            Expr::Bin(op, a, b) => Expr::Bin(
                *op,
                Arc::new(a.substitute(exprs)),
                Arc::new(b.substitute(exprs)),
            ),
        }
    }

    /// Evaluate over one record (the row path).
    pub fn eval(&self, r: &Record) -> Value {
        match self {
            Expr::Field(i) => r.fields().get(*i).cloned().unwrap_or(Value::Null),
            Expr::Lit(v) => v.clone(),
            Expr::Not(e) => scalar_not(&e.eval(r)),
            Expr::Neg(e) => scalar_neg(&e.eval(r)),
            Expr::IsNull(e) => Value::Bool(e.eval(r).is_null()),
            Expr::Bin(op, a, b) => scalar_bin(*op, &a.eval(r), &b.eval(r)),
        }
    }

    /// Evaluate over a whole chunk, producing one output column.
    ///
    /// Typed columns without nulls take vectorized fast paths (no per-row
    /// [`Value`] boxing); everything else falls back to a scalar loop over
    /// the same functions [`Expr::eval`] uses.
    pub fn eval_chunk(&self, chunk: &Chunk) -> Column {
        match self.eval_vec(chunk) {
            Ev::Col(c) => c,
            Ev::Lit(v) => {
                let values = vec![v; chunk.rows()];
                Column::from_values(&values)
            }
        }
    }

    fn eval_vec(&self, chunk: &Chunk) -> Ev {
        match self {
            Expr::Field(i) => match chunk.column(*i) {
                Some(c) => Ev::Col(c.clone()),
                None => Ev::Lit(Value::Null),
            },
            Expr::Lit(v) => Ev::Lit(v.clone()),
            Expr::Not(e) => unary_vec(&e.eval_vec(chunk), chunk.rows(), scalar_not),
            Expr::Neg(e) => unary_vec(&e.eval_vec(chunk), chunk.rows(), scalar_neg),
            Expr::IsNull(e) => unary_vec(&e.eval_vec(chunk), chunk.rows(), |v| {
                Value::Bool(v.is_null())
            }),
            Expr::Bin(op, a, b) => bin_vec(*op, &a.eval_vec(chunk), &b.eval_vec(chunk), chunk),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Field(i) => write!(f, "#{i}"),
            Expr::Lit(v) => match v {
                Value::Str(s) => write!(f, "{s:?}"),
                other => write!(f, "{other}"),
            },
            Expr::Not(e) => write!(f, "!({e})"),
            Expr::Neg(e) => write!(f, "-({e})"),
            Expr::IsNull(e) => write!(f, "({e}) is null"),
            Expr::Bin(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
        }
    }
}

/// `!v` with `Null` on non-`Bool` operands.
pub fn scalar_not(v: &Value) -> Value {
    match v {
        Value::Bool(b) => Value::Bool(!b),
        _ => Value::Null,
    }
}

/// `-v` with `Null` on non-numeric operands; wrapping for `Int`.
pub fn scalar_neg(v: &Value) -> Value {
    match v {
        Value::Int(i) => Value::Int(i.wrapping_neg()),
        Value::Float(x) => Value::Float(-x),
        _ => Value::Null,
    }
}

/// Apply a binary operator to two scalars — the single source of truth for
/// both the row and the vectorized evaluation path.
pub fn scalar_bin(op: BinOp, a: &Value, b: &Value) -> Value {
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => scalar_arith(op, a, b),
        BinOp::Eq => Value::Bool(a == b),
        BinOp::Ne => Value::Bool(a != b),
        BinOp::Lt => Value::Bool(a < b),
        BinOp::Le => Value::Bool(a <= b),
        BinOp::Gt => Value::Bool(a > b),
        BinOp::Ge => Value::Bool(a >= b),
        BinOp::And => match (as_kleene(a), as_kleene(b)) {
            (Some(false), _) | (_, Some(false)) => Value::Bool(false),
            (Some(true), Some(true)) => Value::Bool(true),
            _ => Value::Null,
        },
        BinOp::Or => match (as_kleene(a), as_kleene(b)) {
            (Some(true), _) | (_, Some(true)) => Value::Bool(true),
            (Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        },
    }
}

fn as_kleene(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

fn scalar_arith(op: BinOp, a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => match op {
            BinOp::Add => Value::Int(x.wrapping_add(*y)),
            BinOp::Sub => Value::Int(x.wrapping_sub(*y)),
            BinOp::Mul => Value::Int(x.wrapping_mul(*y)),
            BinOp::Div => {
                if *y == 0 {
                    Value::Null
                } else {
                    Value::Int(x.wrapping_div(*y))
                }
            }
            BinOp::Mod => {
                if *y == 0 {
                    Value::Null
                } else {
                    Value::Int(x.wrapping_rem(*y))
                }
            }
            _ => unreachable!("scalar_arith called with non-arithmetic op"),
        },
        (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
            let (x, y) = (to_f64(a), to_f64(b));
            Value::Float(match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Mod => x % y,
                _ => unreachable!("scalar_arith called with non-arithmetic op"),
            })
        }
        _ => Value::Null,
    }
}

fn to_f64(v: &Value) -> f64 {
    match v {
        Value::Int(i) => *i as f64,
        Value::Float(x) => *x,
        _ => 0.0,
    }
}

/// Intermediate result of vectorized evaluation: a column or a scalar that
/// stays scalar (literals are not splatted until forced).
enum Ev {
    Col(Column),
    Lit(Value),
}

impl Ev {
    fn value(&self, i: usize) -> Value {
        match self {
            Ev::Col(c) => c.value(i),
            Ev::Lit(v) => v.clone(),
        }
    }
}

fn unary_vec(e: &Ev, rows: usize, f: impl Fn(&Value) -> Value) -> Ev {
    match e {
        Ev::Lit(v) => Ev::Lit(f(v)),
        Ev::Col(c) => {
            let values: Vec<Value> = (0..rows).map(|i| f(&c.value(i))).collect();
            Ev::Col(Column::from_values(&values))
        }
    }
}

/// A typed `i64` operand source: a column lane or a splatted scalar.
#[derive(Clone, Copy)]
enum IntSrc<'a> {
    Slice(&'a [i64]),
    Scalar(i64),
}

impl IntSrc<'_> {
    #[inline]
    fn get(&self, i: usize) -> i64 {
        match self {
            IntSrc::Slice(s) => s[i],
            IntSrc::Scalar(x) => *x,
        }
    }
}

/// A typed `f64` operand source (integers widen).
#[derive(Clone, Copy)]
enum FloatSrc<'a> {
    Floats(&'a [f64]),
    Ints(&'a [i64]),
    Scalar(f64),
}

impl FloatSrc<'_> {
    #[inline]
    fn get(&self, i: usize) -> f64 {
        match self {
            FloatSrc::Floats(s) => s[i],
            FloatSrc::Ints(s) => s[i] as f64,
            FloatSrc::Scalar(x) => *x,
        }
    }
}

fn int_src<'a>(e: &'a Ev) -> Option<IntSrc<'a>> {
    match e {
        Ev::Col(c) if c.no_nulls() => c.ints().map(IntSrc::Slice),
        Ev::Lit(Value::Int(x)) => Some(IntSrc::Scalar(*x)),
        _ => None,
    }
}

fn float_src<'a>(e: &'a Ev) -> Option<FloatSrc<'a>> {
    match e {
        Ev::Col(c) if c.no_nulls() => c
            .floats()
            .map(FloatSrc::Floats)
            .or_else(|| c.ints().map(FloatSrc::Ints)),
        Ev::Lit(Value::Float(x)) => Some(FloatSrc::Scalar(*x)),
        Ev::Lit(Value::Int(x)) => Some(FloatSrc::Scalar(*x as f64)),
        _ => None,
    }
}

/// True when either operand is `Float`-typed (forcing the widening path).
fn involves_float(e: &Ev) -> bool {
    match e {
        Ev::Col(c) => c.floats().is_some(),
        Ev::Lit(Value::Float(_)) => true,
        _ => false,
    }
}

/// A typed `bool` operand source.
#[derive(Clone, Copy)]
enum BoolSrc<'a> {
    Slice(&'a [bool]),
    Scalar(bool),
}

impl BoolSrc<'_> {
    #[inline]
    fn get(&self, i: usize) -> bool {
        match self {
            BoolSrc::Slice(s) => s[i],
            BoolSrc::Scalar(b) => *b,
        }
    }
}

fn bool_src<'a>(e: &'a Ev) -> Option<BoolSrc<'a>> {
    match e {
        Ev::Col(c) if c.no_nulls() => c.bools().map(BoolSrc::Slice),
        Ev::Lit(Value::Bool(b)) => Some(BoolSrc::Scalar(*b)),
        _ => None,
    }
}

fn bin_vec(op: BinOp, a: &Ev, b: &Ev, chunk: &Chunk) -> Ev {
    let rows = chunk.rows();
    if let (Ev::Lit(x), Ev::Lit(y)) = (a, b) {
        return Ev::Lit(scalar_bin(op, x, y));
    }

    // ---- typed fast paths (no validity bitmaps, no Value boxing) --------
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul => {
            if !involves_float(a) && !involves_float(b) {
                if let (Some(x), Some(y)) = (int_src(a), int_src(b)) {
                    let mut lane = Vec::with_capacity(rows);
                    for i in 0..rows {
                        let (l, r) = (x.get(i), y.get(i));
                        lane.push(match op {
                            BinOp::Add => l.wrapping_add(r),
                            BinOp::Sub => l.wrapping_sub(r),
                            _ => l.wrapping_mul(r),
                        });
                    }
                    return Ev::Col(int_column(lane));
                }
            }
            if let (Some(x), Some(y)) = (float_src(a), float_src(b)) {
                if involves_float(a) || involves_float(b) {
                    let mut lane = Vec::with_capacity(rows);
                    for i in 0..rows {
                        let (l, r) = (x.get(i), y.get(i));
                        lane.push(match op {
                            BinOp::Add => l + r,
                            BinOp::Sub => l - r,
                            _ => l * r,
                        });
                    }
                    return Ev::Col(float_column(lane));
                }
            }
        }
        // Int division-by-zero maps to Null, so only the float-typed
        // combination (pure IEEE) is a safe typed fast path.
        BinOp::Div | BinOp::Mod if involves_float(a) || involves_float(b) => {
            if let (Some(x), Some(y)) = (float_src(a), float_src(b)) {
                let mut lane = Vec::with_capacity(rows);
                for i in 0..rows {
                    let (l, r) = (x.get(i), y.get(i));
                    lane.push(if op == BinOp::Div { l / r } else { l % r });
                }
                return Ev::Col(float_column(lane));
            }
        }
        _ if op.is_comparison() => {
            // Same-typed comparisons agree with Value::cmp; cross-variant
            // comparisons rank by variant and go through the generic path.
            if !involves_float(a) && !involves_float(b) {
                if let (Some(x), Some(y)) = (int_src(a), int_src(b)) {
                    let mut lane = Vec::with_capacity(rows);
                    for i in 0..rows {
                        lane.push(cmp_holds(op, x.get(i).cmp(&y.get(i))));
                    }
                    return Ev::Col(bool_column(lane));
                }
            }
            if involves_float(a) && involves_float(b) {
                if let (Some(x), Some(y)) = (float_src(a), float_src(b)) {
                    let mut lane = Vec::with_capacity(rows);
                    for i in 0..rows {
                        lane.push(cmp_holds(op, x.get(i).total_cmp(&y.get(i))));
                    }
                    return Ev::Col(bool_column(lane));
                }
            }
        }
        BinOp::And | BinOp::Or => {
            if let (Some(x), Some(y)) = (bool_src(a), bool_src(b)) {
                let mut lane = Vec::with_capacity(rows);
                for i in 0..rows {
                    let (l, r) = (x.get(i), y.get(i));
                    lane.push(if op == BinOp::And { l && r } else { l || r });
                }
                return Ev::Col(bool_column(lane));
            }
        }
        _ => {}
    }

    // ---- generic scalar loop (shared semantics with Expr::eval) ---------
    let values: Vec<Value> = (0..rows)
        .map(|i| scalar_bin(op, &a.value(i), &b.value(i)))
        .collect();
    Ev::Col(Column::from_values(&values))
}

fn cmp_holds(op: BinOp, ord: std::cmp::Ordering) -> bool {
    match op {
        BinOp::Eq => ord.is_eq(),
        BinOp::Ne => ord.is_ne(),
        BinOp::Lt => ord.is_lt(),
        BinOp::Le => ord.is_le(),
        BinOp::Gt => ord.is_gt(),
        BinOp::Ge => ord.is_ge(),
        _ => unreachable!("cmp_holds called with non-comparison op"),
    }
}

fn int_column(lane: Vec<i64>) -> Column {
    Column::from_typed_int(lane)
}

fn float_column(lane: Vec<f64>) -> Column {
    Column::from_typed_float(lane)
}

fn bool_column(lane: Vec<bool>) -> Column {
    Column::from_typed_bool(lane)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rec;

    fn both(e: &Expr, records: &[Record]) -> (Vec<Value>, Vec<Value>) {
        let row: Vec<Value> = records.iter().map(|r| e.eval(r)).collect();
        let chunk = Chunk::from_records(records).unwrap();
        let col = e.eval_chunk(&chunk);
        let vec: Vec<Value> = (0..records.len()).map(|i| col.value(i)).collect();
        (row, vec)
    }

    #[test]
    fn row_and_vectorized_paths_agree_on_typed_data() {
        let records: Vec<Record> = (0..50i64).map(|i| rec![i, i as f64 * 0.5]).collect();
        for e in [
            Expr::field(0).add(Expr::lit(3i64)),
            Expr::field(0).mul(Expr::field(0)),
            Expr::field(0).lt(Expr::lit(25i64)),
            Expr::field(1).div(Expr::lit(0.0)),
            Expr::field(1).ge(Expr::lit(10.0)),
            Expr::field(0).add(Expr::field(1)),
            Expr::field(0)
                .lt(Expr::lit(10i64))
                .or(Expr::field(1).gt(Expr::lit(20.0))),
        ] {
            let (row, vec) = both(&e, &records);
            assert_eq!(row, vec, "paths disagree for {e}");
        }
    }

    #[test]
    fn row_and_vectorized_paths_agree_on_dirty_data() {
        let records = vec![
            rec![1i64, "x"],
            Record::new(vec![Value::Null, Value::str("y")]),
            Record::new(vec![Value::Float(f64::NAN), Value::Null]),
            rec![3i64, "x"],
        ];
        for e in [
            Expr::field(0).add(Expr::lit(1i64)),
            Expr::field(0).lt(Expr::lit(2i64)),
            Expr::field(1).eq(Expr::lit("x")),
            Expr::field(0).is_null(),
            Expr::field(0).is_null().not(),
            Expr::field(7).eq(Expr::lit(1i64)),
        ] {
            let (row, vec) = both(&e, &records);
            assert_eq!(row, vec, "paths disagree for {e}");
        }
    }

    #[test]
    fn int_arithmetic_wraps_and_div_by_zero_is_null() {
        let e = Expr::field(0).add(Expr::lit(1i64));
        assert_eq!(e.eval(&rec![i64::MAX]), Value::Int(i64::MIN));
        let d = Expr::field(0).div(Expr::lit(0i64));
        assert_eq!(d.eval(&rec![5i64]), Value::Null);
        let m = Expr::field(0).rem(Expr::lit(0i64));
        assert_eq!(m.eval(&rec![5i64]), Value::Null);
    }

    #[test]
    fn mixed_int_float_widens() {
        let e = Expr::field(0).add(Expr::lit(0.5));
        assert_eq!(e.eval(&rec![2i64]), Value::Float(2.5));
        // Float division by zero is IEEE, not Null.
        let d = Expr::lit(1.0).div(Expr::lit(0.0));
        assert_eq!(d.eval(&Record::empty()), Value::Float(f64::INFINITY));
    }

    #[test]
    fn comparisons_follow_value_total_order() {
        // Cross-variant: Int < Float by rank, regardless of payload.
        let e = Expr::lit(99i64).lt(Expr::lit(0.5));
        assert_eq!(e.eval(&Record::empty()), Value::Bool(true));
        // Null sorts first and comparisons never return Null.
        let e = Expr::field(0).lt(Expr::lit(0i64));
        assert_eq!(e.eval(&Record::new(vec![Value::Null])), Value::Bool(true));
        // NaN is ordered by total_cmp.
        let e = Expr::lit(f64::NAN).gt(Expr::lit(f64::INFINITY));
        assert_eq!(e.eval(&Record::empty()), Value::Bool(true));
    }

    #[test]
    fn kleene_logic() {
        let null = Expr::lit(Value::Null);
        let t = Expr::lit(true);
        let f = Expr::lit(false);
        let r = Record::empty();
        assert_eq!(f.clone().and(null.clone()).eval(&r), Value::Bool(false));
        assert_eq!(t.clone().and(null.clone()).eval(&r), Value::Null);
        assert_eq!(t.clone().or(null.clone()).eval(&r), Value::Bool(true));
        assert_eq!(f.clone().or(null.clone()).eval(&r), Value::Null);
        assert_eq!(null.clone().not().eval(&r), Value::Null);
        assert_eq!(t.not().eval(&r), Value::Bool(false));
    }

    #[test]
    fn field_out_of_bounds_reads_null() {
        let e = Expr::field(3);
        assert_eq!(e.eval(&rec![1i64]), Value::Null);
    }

    #[test]
    fn remap_and_substitute() {
        let e = Expr::field(1).add(Expr::lit(1i64));
        let remapped = e.remap_fields(&|i| (i == 1).then_some(0)).unwrap();
        assert_eq!(remapped.eval(&rec![10i64]), Value::Int(11));
        assert!(e.remap_fields(&|_| None).is_none());
        let sub = e.substitute(&[Expr::lit(0i64), Expr::field(0).mul(Expr::lit(2i64))]);
        assert_eq!(sub.eval(&rec![21i64]), Value::Int(43));
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::field(0)
            .lt(Expr::lit(10i64))
            .and(Expr::field(1).eq(Expr::lit("x")));
        assert_eq!(e.to_string(), "((#0 < 10) && (#1 == \"x\"))");
    }
}
