//! UDF (user-defined function) types.
//!
//! The paper's entire processing abstraction "is fully based on user-defined
//! functions" (§1): every operator at every layer carries user logic. We
//! model UDFs as reference-counted closures so that physical plans are
//! cheaply clonable data structures the optimizer can rewrite, split, and
//! ship to platforms.
//!
//! Each UDF is wrapped in a small named struct: the name shows up in plan
//! explanations and execution statistics, and optional hints (selectivity,
//! fan-out) feed the cardinality estimator (§4.2).

use std::fmt;
use std::sync::Arc;

use crate::data::{Record, Value};

/// `Record -> Record` transformation.
pub type MapFn = Arc<dyn Fn(&Record) -> Record + Send + Sync>;
/// `Record -> [Record]` transformation (also used for per-quantum filters
/// with side information).
pub type FlatMapFn = Arc<dyn Fn(&Record) -> Vec<Record> + Send + Sync>;
/// Predicate over a single data quantum.
pub type FilterFn = Arc<dyn Fn(&Record) -> bool + Send + Sync>;
/// Key extractor used by grouping, reduction, joins, and sorting.
pub type KeyFn = Arc<dyn Fn(&Record) -> Value + Send + Sync>;
/// Commutative-associative combiner for (keyed or global) reduction.
pub type ReduceFn = Arc<dyn Fn(Record, &Record) -> Record + Send + Sync>;
/// Per-group transformation: `(key, members) -> [Record]`.
pub type GroupMapFn = Arc<dyn Fn(&Value, &[Record]) -> Vec<Record> + Send + Sync>;
/// Binary predicate over a pair of quanta (theta joins, violation detection).
pub type PairPredicateFn = Arc<dyn Fn(&Record, &Record) -> bool + Send + Sync>;
/// Loop continuation test: `(iteration, loop state) -> keep going?`.
pub type LoopCondFn = Arc<dyn Fn(u64, &[Record]) -> bool + Send + Sync>;

/// A named unary `map` UDF.
#[derive(Clone)]
pub struct MapUdf {
    /// Display name used in plan explanations and stats.
    pub name: String,
    /// The function itself.
    pub f: MapFn,
}

impl MapUdf {
    /// Wrap a closure with a display name.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&Record) -> Record + Send + Sync + 'static,
    ) -> Self {
        MapUdf {
            name: name.into(),
            f: Arc::new(f),
        }
    }
}

/// A named `flat_map` UDF with an optional average fan-out hint.
#[derive(Clone)]
pub struct FlatMapUdf {
    /// Display name.
    pub name: String,
    /// The function itself.
    pub f: FlatMapFn,
    /// Expected number of output quanta per input quantum (default 1.0).
    pub fanout: f64,
}

impl FlatMapUdf {
    /// Wrap a closure with a display name and default fan-out 1.0.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&Record) -> Vec<Record> + Send + Sync + 'static,
    ) -> Self {
        FlatMapUdf {
            name: name.into(),
            f: Arc::new(f),
            fanout: 1.0,
        }
    }

    /// Attach a fan-out hint for the cardinality estimator.
    pub fn with_fanout(mut self, fanout: f64) -> Self {
        self.fanout = fanout;
        self
    }
}

/// A named filter UDF with an optional selectivity hint.
#[derive(Clone)]
pub struct FilterUdf {
    /// Display name.
    pub name: String,
    /// The predicate.
    pub f: FilterFn,
    /// Expected fraction of quanta kept (default 0.5).
    pub selectivity: f64,
}

impl FilterUdf {
    /// Wrap a predicate with a display name and default selectivity 0.5.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&Record) -> bool + Send + Sync + 'static,
    ) -> Self {
        FilterUdf {
            name: name.into(),
            f: Arc::new(f),
            selectivity: 0.5,
        }
    }

    /// Attach a selectivity hint in `[0, 1]`.
    pub fn with_selectivity(mut self, selectivity: f64) -> Self {
        self.selectivity = selectivity.clamp(0.0, 1.0);
        self
    }
}

/// A named key-extraction UDF.
#[derive(Clone)]
pub struct KeyUdf {
    /// Display name.
    pub name: String,
    /// The key extractor.
    pub f: KeyFn,
    /// Expected number of distinct keys, if known (cardinality hint).
    pub distinct_keys: Option<f64>,
}

impl KeyUdf {
    /// Wrap a key extractor with a display name.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&Record) -> Value + Send + Sync + 'static,
    ) -> Self {
        KeyUdf {
            name: name.into(),
            f: Arc::new(f),
            distinct_keys: None,
        }
    }

    /// Key extractor that simply reads field `index`.
    pub fn field(index: usize) -> Self {
        KeyUdf {
            name: format!("field#{index}"),
            f: Arc::new(move |r: &Record| r.get(index).cloned().unwrap_or(Value::Null)),
            distinct_keys: None,
        }
    }

    /// Attach a distinct-key-count hint.
    pub fn with_distinct_keys(mut self, n: f64) -> Self {
        self.distinct_keys = Some(n);
        self
    }
}

/// A named keyed/global reduction UDF.
#[derive(Clone)]
pub struct ReduceUdf {
    /// Display name.
    pub name: String,
    /// The combiner; must be associative for partitioned execution.
    pub f: ReduceFn,
}

impl ReduceUdf {
    /// Wrap a combiner with a display name.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(Record, &Record) -> Record + Send + Sync + 'static,
    ) -> Self {
        ReduceUdf {
            name: name.into(),
            f: Arc::new(f),
        }
    }
}

/// A named per-group transformation UDF.
#[derive(Clone)]
pub struct GroupMapUdf {
    /// Display name.
    pub name: String,
    /// The per-group function.
    pub f: GroupMapFn,
    /// Expected output quanta per group (default 1.0).
    pub per_group_output: f64,
}

impl GroupMapUdf {
    /// Wrap a per-group closure with a display name.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&Value, &[Record]) -> Vec<Record> + Send + Sync + 'static,
    ) -> Self {
        GroupMapUdf {
            name: name.into(),
            f: Arc::new(f),
            per_group_output: 1.0,
        }
    }

    /// The identity group map: re-emits every member, prefixed with nothing.
    pub fn identity() -> Self {
        GroupMapUdf::new("identity", |_k, members: &[Record]| members.to_vec())
    }

    /// Attach an output-size hint (records emitted per group).
    pub fn with_per_group_output(mut self, n: f64) -> Self {
        self.per_group_output = n;
        self
    }
}

/// A named loop-continuation UDF.
#[derive(Clone)]
pub struct LoopCondUdf {
    /// Display name.
    pub name: String,
    /// Returns `true` while the loop should continue.
    pub f: LoopCondFn,
}

impl LoopCondUdf {
    /// Wrap a continuation test with a display name.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(u64, &[Record]) -> bool + Send + Sync + 'static,
    ) -> Self {
        LoopCondUdf {
            name: name.into(),
            f: Arc::new(f),
        }
    }

    /// Continue for exactly `n` iterations.
    pub fn fixed_iterations(n: u64) -> Self {
        LoopCondUdf::new(format!("iters<{n}"), move |i, _| i < n)
    }
}

macro_rules! impl_debug_by_name {
    ($($t:ty),*) => {
        $(impl fmt::Debug for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($t), "({})"), self.name)
            }
        })*
    };
}

impl_debug_by_name!(
    MapUdf,
    FlatMapUdf,
    FilterUdf,
    KeyUdf,
    ReduceUdf,
    GroupMapUdf,
    LoopCondUdf
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rec;

    #[test]
    fn map_udf_applies() {
        let udf = MapUdf::new("inc", |r: &Record| rec![r.int(0).unwrap() + 1]);
        assert_eq!((udf.f)(&rec![1i64]), rec![2i64]);
        assert_eq!(format!("{udf:?}"), "MapUdf(inc)");
    }

    #[test]
    fn filter_selectivity_is_clamped() {
        let udf = FilterUdf::new("always", |_| true).with_selectivity(3.0);
        assert_eq!(udf.selectivity, 1.0);
        let udf = udf.with_selectivity(-1.0);
        assert_eq!(udf.selectivity, 0.0);
    }

    #[test]
    fn key_field_extracts_and_handles_missing() {
        let k = KeyUdf::field(1);
        assert_eq!((k.f)(&rec![1i64, "x"]), Value::str("x"));
        assert_eq!((k.f)(&rec![1i64]), Value::Null);
    }

    #[test]
    fn fixed_iterations_condition() {
        let c = LoopCondUdf::fixed_iterations(3);
        assert!((c.f)(0, &[]));
        assert!((c.f)(2, &[]));
        assert!(!(c.f)(3, &[]));
    }

    #[test]
    fn group_map_identity_reemits_members() {
        let g = GroupMapUdf::identity();
        let members = vec![rec![1i64], rec![2i64]];
        assert_eq!((g.f)(&Value::Int(0), &members), members);
    }
}
