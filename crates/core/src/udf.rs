//! UDF (user-defined function) types.
//!
//! The paper's entire processing abstraction "is fully based on user-defined
//! functions" (§1): every operator at every layer carries user logic. We
//! model UDFs as reference-counted closures so that physical plans are
//! cheaply clonable data structures the optimizer can rewrite, split, and
//! ship to platforms.
//!
//! Each UDF is wrapped in a small named struct: the name shows up in plan
//! explanations and execution statistics, and optional hints (selectivity,
//! fan-out) feed the cardinality estimator (§4.2).

use std::fmt;
use std::sync::Arc;

use crate::data::{Record, Value};
use crate::expr::Expr;

/// Sanitize a user-supplied cardinality hint: non-finite values fall back
/// to `default`, negative values clamp to zero.
///
/// Hints flow straight into cardinality estimation, where a `NaN` or `-∞`
/// would poison every downstream plan-cost comparison (`NaN < NaN` is
/// false, so enumeration would pick arbitrary platforms).
fn sanitize_hint(value: f64, default: f64) -> f64 {
    if value.is_finite() {
        value.max(0.0)
    } else {
        default
    }
}

/// `Record -> Record` transformation.
pub type MapFn = Arc<dyn Fn(&Record) -> Record + Send + Sync>;
/// `Record -> [Record]` transformation (also used for per-quantum filters
/// with side information).
pub type FlatMapFn = Arc<dyn Fn(&Record) -> Vec<Record> + Send + Sync>;
/// Predicate over a single data quantum.
pub type FilterFn = Arc<dyn Fn(&Record) -> bool + Send + Sync>;
/// Key extractor used by grouping, reduction, joins, and sorting.
pub type KeyFn = Arc<dyn Fn(&Record) -> Value + Send + Sync>;
/// Commutative-associative combiner for (keyed or global) reduction.
pub type ReduceFn = Arc<dyn Fn(Record, &Record) -> Record + Send + Sync>;
/// Per-group transformation: `(key, members) -> [Record]`.
pub type GroupMapFn = Arc<dyn Fn(&Value, &[Record]) -> Vec<Record> + Send + Sync>;
/// Binary predicate over a pair of quanta (theta joins, violation detection).
pub type PairPredicateFn = Arc<dyn Fn(&Record, &Record) -> bool + Send + Sync>;
/// Loop continuation test: `(iteration, loop state) -> keep going?`.
pub type LoopCondFn = Arc<dyn Fn(u64, &[Record]) -> bool + Send + Sync>;

/// A named unary `map` UDF.
#[derive(Clone)]
pub struct MapUdf {
    /// Display name used in plan explanations and stats.
    pub name: String,
    /// The function itself.
    pub f: MapFn,
    /// Declarative output expressions (one per output field), when the map
    /// is transparent. `f` and `exprs` always agree: [`MapUdf::from_exprs`]
    /// derives the closure from the expressions.
    pub exprs: Option<Arc<[Expr]>>,
}

impl MapUdf {
    /// Wrap a closure with a display name.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&Record) -> Record + Send + Sync + 'static,
    ) -> Self {
        MapUdf {
            name: name.into(),
            f: Arc::new(f),
            exprs: None,
        }
    }

    /// Build a transparent map from output-field expressions.
    ///
    /// The row closure is derived from the expressions, so the opaque and
    /// declarative views of this UDF cannot drift apart; the optimizer may
    /// fuse transparent maps into chunk pipelines.
    pub fn from_exprs(name: impl Into<String>, exprs: Vec<Expr>) -> Self {
        let exprs: Arc<[Expr]> = exprs.into();
        let for_closure = exprs.clone();
        MapUdf {
            name: name.into(),
            f: Arc::new(move |r: &Record| {
                Record::new(for_closure.iter().map(|e| e.eval(r)).collect())
            }),
            exprs: Some(exprs),
        }
    }
}

/// A named `flat_map` UDF with an optional average fan-out hint.
#[derive(Clone)]
pub struct FlatMapUdf {
    /// Display name.
    pub name: String,
    /// The function itself.
    pub f: FlatMapFn,
    /// Expected number of output quanta per input quantum (default 1.0).
    pub fanout: f64,
}

impl FlatMapUdf {
    /// Wrap a closure with a display name and default fan-out 1.0.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&Record) -> Vec<Record> + Send + Sync + 'static,
    ) -> Self {
        FlatMapUdf {
            name: name.into(),
            f: Arc::new(f),
            fanout: 1.0,
        }
    }

    /// Attach a fan-out hint for the cardinality estimator.
    ///
    /// Non-finite hints are ignored (the default 1.0 is kept) and negative
    /// hints clamp to zero, so estimation can never be `NaN`-poisoned.
    pub fn with_fanout(mut self, fanout: f64) -> Self {
        self.fanout = sanitize_hint(fanout, 1.0);
        self
    }
}

/// A named filter UDF with an optional selectivity hint.
#[derive(Clone)]
pub struct FilterUdf {
    /// Display name.
    pub name: String,
    /// The predicate.
    pub f: FilterFn,
    /// Expected fraction of quanta kept (default 0.5).
    pub selectivity: f64,
    /// Declarative predicate, when the filter is transparent. A record is
    /// kept iff the expression evaluates to `Bool(true)` (so `Null` drops
    /// the record, SQL-style). `f` and `expr` always agree:
    /// [`FilterUdf::from_expr`] derives the closure from the expression.
    pub expr: Option<Arc<Expr>>,
}

impl FilterUdf {
    /// Wrap a predicate with a display name and default selectivity 0.5.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&Record) -> bool + Send + Sync + 'static,
    ) -> Self {
        FilterUdf {
            name: name.into(),
            f: Arc::new(f),
            selectivity: 0.5,
            expr: None,
        }
    }

    /// Build a transparent filter from a predicate expression.
    ///
    /// The row closure is derived from the expression, so the opaque and
    /// declarative views cannot drift apart; the optimizer may fuse
    /// transparent filters into chunk pipelines.
    pub fn from_expr(name: impl Into<String>, expr: Expr) -> Self {
        let expr = Arc::new(expr);
        let for_closure = expr.clone();
        FilterUdf {
            name: name.into(),
            f: Arc::new(move |r: &Record| matches!(for_closure.eval(r), Value::Bool(true))),
            selectivity: 0.5,
            expr: Some(expr),
        }
    }

    /// Attach a selectivity hint in `[0, 1]`.
    ///
    /// `NaN` hints are ignored (the default 0.5 is kept); infinities clamp
    /// into range like any other out-of-range value.
    pub fn with_selectivity(mut self, selectivity: f64) -> Self {
        // `f64::clamp` propagates NaN, so guard it explicitly.
        self.selectivity = if selectivity.is_nan() {
            0.5
        } else {
            selectivity.clamp(0.0, 1.0)
        };
        self
    }
}

/// A named key-extraction UDF.
#[derive(Clone)]
pub struct KeyUdf {
    /// Display name.
    pub name: String,
    /// The key extractor.
    pub f: KeyFn,
    /// Expected number of distinct keys, if known (cardinality hint).
    pub distinct_keys: Option<f64>,
    /// When the key is a plain field read ([`KeyUdf::field`]), its index.
    /// Lets chunked kernels hash the key column directly instead of
    /// materializing a [`Value`] per row.
    pub field_index: Option<usize>,
}

impl KeyUdf {
    /// Wrap a key extractor with a display name.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&Record) -> Value + Send + Sync + 'static,
    ) -> Self {
        KeyUdf {
            name: name.into(),
            f: Arc::new(f),
            distinct_keys: None,
            field_index: None,
        }
    }

    /// Key extractor that simply reads field `index`.
    pub fn field(index: usize) -> Self {
        KeyUdf {
            name: format!("field#{index}"),
            f: Arc::new(move |r: &Record| r.get(index).cloned().unwrap_or(Value::Null)),
            distinct_keys: None,
            field_index: Some(index),
        }
    }

    /// Attach a distinct-key-count hint.
    ///
    /// Non-finite hints are ignored (no hint is recorded) and negative
    /// hints clamp to zero, so estimation can never be `NaN`-poisoned.
    pub fn with_distinct_keys(mut self, n: f64) -> Self {
        if n.is_finite() {
            self.distinct_keys = Some(n.max(0.0));
        }
        self
    }
}

/// Per-field combiner of a declarative reduction ([`ReduceUdf::from_spec`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldReduce {
    /// Keep the accumulator's value (typically the group key field).
    First,
    /// Wrapping integer sum; non-`Int` operands yield `Null`.
    SumInt,
    /// Float sum with `Int` widening; non-numeric operands yield `Null`.
    SumFloat,
    /// Minimum under [`Value`]'s total order.
    Min,
    /// Maximum under [`Value`]'s total order.
    Max,
}

impl FieldReduce {
    /// Combine an accumulator value with an incoming value.
    pub fn combine(self, acc: &Value, incoming: &Value) -> Value {
        match self {
            FieldReduce::First => acc.clone(),
            FieldReduce::SumInt => match (acc, incoming) {
                (Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_add(*b)),
                _ => Value::Null,
            },
            FieldReduce::SumFloat => match (acc.as_float(), incoming.as_float()) {
                (Ok(a), Ok(b)) => Value::Float(a + b),
                _ => Value::Null,
            },
            FieldReduce::Min => {
                if incoming < acc {
                    incoming.clone()
                } else {
                    acc.clone()
                }
            }
            FieldReduce::Max => {
                if incoming > acc {
                    incoming.clone()
                } else {
                    acc.clone()
                }
            }
        }
    }
}

/// A named keyed/global reduction UDF.
#[derive(Clone)]
pub struct ReduceUdf {
    /// Display name.
    pub name: String,
    /// The combiner; must be associative for partitioned execution.
    pub f: ReduceFn,
    /// Declarative per-field combiners, when the reduction is transparent.
    /// `f` and `spec` always agree: [`ReduceUdf::from_spec`] derives the
    /// closure from the spec.
    pub spec: Option<Arc<[FieldReduce]>>,
}

impl ReduceUdf {
    /// Wrap a combiner with a display name.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(Record, &Record) -> Record + Send + Sync + 'static,
    ) -> Self {
        ReduceUdf {
            name: name.into(),
            f: Arc::new(f),
            spec: None,
        }
    }

    /// Build a transparent reduction from per-field combiners.
    ///
    /// The output record has one field per combiner; field `i` of the
    /// accumulator combines with field `i` of each incoming record (missing
    /// fields read as `Null`). The row closure is derived from the spec, so
    /// the opaque and declarative views cannot drift apart; chunked kernels
    /// use the spec to accumulate without a per-row closure dispatch.
    pub fn from_spec(name: impl Into<String>, spec: Vec<FieldReduce>) -> Self {
        let spec: Arc<[FieldReduce]> = spec.into();
        let for_closure = spec.clone();
        ReduceUdf {
            name: name.into(),
            f: Arc::new(move |acc: Record, incoming: &Record| {
                let fields = for_closure
                    .iter()
                    .enumerate()
                    .map(|(i, fr)| {
                        let a = acc.fields().get(i).unwrap_or(&Value::Null);
                        let b = incoming.fields().get(i).unwrap_or(&Value::Null);
                        fr.combine(a, b)
                    })
                    .collect();
                Record::new(fields)
            }),
            spec: Some(spec),
        }
    }
}

/// A named per-group transformation UDF.
#[derive(Clone)]
pub struct GroupMapUdf {
    /// Display name.
    pub name: String,
    /// The per-group function.
    pub f: GroupMapFn,
    /// Expected output quanta per group (default 1.0).
    pub per_group_output: f64,
}

impl GroupMapUdf {
    /// Wrap a per-group closure with a display name.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&Value, &[Record]) -> Vec<Record> + Send + Sync + 'static,
    ) -> Self {
        GroupMapUdf {
            name: name.into(),
            f: Arc::new(f),
            per_group_output: 1.0,
        }
    }

    /// The identity group map: re-emits every member, prefixed with nothing.
    pub fn identity() -> Self {
        GroupMapUdf::new("identity", |_k, members: &[Record]| members.to_vec())
    }

    /// Attach an output-size hint (records emitted per group).
    ///
    /// Non-finite hints are ignored (the default 1.0 is kept) and negative
    /// hints clamp to zero, so estimation can never be `NaN`-poisoned.
    pub fn with_per_group_output(mut self, n: f64) -> Self {
        self.per_group_output = sanitize_hint(n, 1.0);
        self
    }
}

/// A named loop-continuation UDF.
#[derive(Clone)]
pub struct LoopCondUdf {
    /// Display name.
    pub name: String,
    /// Returns `true` while the loop should continue.
    pub f: LoopCondFn,
}

impl LoopCondUdf {
    /// Wrap a continuation test with a display name.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(u64, &[Record]) -> bool + Send + Sync + 'static,
    ) -> Self {
        LoopCondUdf {
            name: name.into(),
            f: Arc::new(f),
        }
    }

    /// Continue for exactly `n` iterations.
    pub fn fixed_iterations(n: u64) -> Self {
        LoopCondUdf::new(format!("iters<{n}"), move |i, _| i < n)
    }
}

macro_rules! impl_debug_by_name {
    ($($t:ty),*) => {
        $(impl fmt::Debug for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($t), "({})"), self.name)
            }
        })*
    };
}

impl_debug_by_name!(
    MapUdf,
    FlatMapUdf,
    FilterUdf,
    KeyUdf,
    ReduceUdf,
    GroupMapUdf,
    LoopCondUdf
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rec;

    #[test]
    fn map_udf_applies() {
        let udf = MapUdf::new("inc", |r: &Record| rec![r.int(0).unwrap() + 1]);
        assert_eq!((udf.f)(&rec![1i64]), rec![2i64]);
        assert_eq!(format!("{udf:?}"), "MapUdf(inc)");
    }

    #[test]
    fn filter_selectivity_is_clamped() {
        let udf = FilterUdf::new("always", |_| true).with_selectivity(3.0);
        assert_eq!(udf.selectivity, 1.0);
        let udf = udf.with_selectivity(-1.0);
        assert_eq!(udf.selectivity, 0.0);
    }

    #[test]
    fn key_field_extracts_and_handles_missing() {
        let k = KeyUdf::field(1);
        assert_eq!((k.f)(&rec![1i64, "x"]), Value::str("x"));
        assert_eq!((k.f)(&rec![1i64]), Value::Null);
    }

    #[test]
    fn fixed_iterations_condition() {
        let c = LoopCondUdf::fixed_iterations(3);
        assert!((c.f)(0, &[]));
        assert!((c.f)(2, &[]));
        assert!(!(c.f)(3, &[]));
    }

    #[test]
    fn group_map_identity_reemits_members() {
        let g = GroupMapUdf::identity();
        let members = vec![rec![1i64], rec![2i64]];
        assert_eq!((g.f)(&Value::Int(0), &members), members);
    }

    #[test]
    fn fanout_hint_rejects_nonfinite_and_negative() {
        let base = FlatMapUdf::new("f", |r| vec![r.clone()]);
        assert_eq!(base.clone().with_fanout(f64::NAN).fanout, 1.0);
        assert_eq!(base.clone().with_fanout(f64::INFINITY).fanout, 1.0);
        assert_eq!(base.clone().with_fanout(f64::NEG_INFINITY).fanout, 1.0);
        assert_eq!(base.clone().with_fanout(-3.0).fanout, 0.0);
        assert_eq!(base.with_fanout(2.5).fanout, 2.5);
    }

    #[test]
    fn per_group_output_hint_rejects_nonfinite_and_negative() {
        let base = GroupMapUdf::identity();
        assert_eq!(
            base.clone()
                .with_per_group_output(f64::NAN)
                .per_group_output,
            1.0
        );
        assert_eq!(
            base.clone()
                .with_per_group_output(f64::INFINITY)
                .per_group_output,
            1.0
        );
        assert_eq!(
            base.clone().with_per_group_output(-1.0).per_group_output,
            0.0
        );
        assert_eq!(base.with_per_group_output(4.0).per_group_output, 4.0);
    }

    #[test]
    fn distinct_keys_hint_rejects_nonfinite_and_negative() {
        let base = KeyUdf::field(0);
        assert_eq!(
            base.clone().with_distinct_keys(f64::NAN).distinct_keys,
            None
        );
        assert_eq!(
            base.clone().with_distinct_keys(f64::INFINITY).distinct_keys,
            None
        );
        assert_eq!(
            base.clone().with_distinct_keys(-5.0).distinct_keys,
            Some(0.0)
        );
        assert_eq!(base.with_distinct_keys(10.0).distinct_keys, Some(10.0));
    }

    #[test]
    fn selectivity_hint_rejects_nan() {
        let udf = FilterUdf::new("p", |_| true).with_selectivity(f64::NAN);
        assert_eq!(udf.selectivity, 0.5);
        let udf = FilterUdf::new("p", |_| true).with_selectivity(f64::INFINITY);
        assert_eq!(udf.selectivity, 1.0);
    }

    #[test]
    fn expr_filter_closure_matches_expression() {
        use crate::expr::Expr;
        let udf = FilterUdf::from_expr("lt10", Expr::field(0).lt(Expr::lit(10i64)));
        assert!((udf.f)(&rec![5i64]));
        assert!(!(udf.f)(&rec![15i64]));
        // Null comparison follows Value::cmp: Null < Int(10) is true.
        assert!((udf.f)(&Record::new(vec![Value::Null])));
        assert!(udf.expr.is_some());
    }

    #[test]
    fn expr_map_closure_matches_expressions() {
        use crate::expr::Expr;
        let udf = MapUdf::from_exprs(
            "proj+1",
            vec![Expr::field(1), Expr::field(0).add(Expr::lit(1i64))],
        );
        assert_eq!((udf.f)(&rec![41i64, "x"]), rec!["x", 42i64]);
    }

    #[test]
    fn spec_reduce_closure_matches_spec() {
        let udf = ReduceUdf::from_spec("sum", vec![FieldReduce::First, FieldReduce::SumInt]);
        let out = (udf.f)(rec![1i64, 10i64], &rec![1i64, 7i64]);
        assert_eq!(out, rec![1i64, 17i64]);
        let minmax = ReduceUdf::from_spec("mm", vec![FieldReduce::Min, FieldReduce::Max]);
        let out = (minmax.f)(rec![3i64, 3i64], &rec![5i64, 5i64]);
        assert_eq!(out, rec![3i64, 5i64]);
    }

    #[test]
    fn key_field_records_its_index() {
        assert_eq!(KeyUdf::field(2).field_index, Some(2));
        assert_eq!(KeyUdf::new("k", |_| Value::Null).field_index, None);
    }
}
