//! The data model: values, records (*data quanta*), and datasets.
//!
//! The paper defines a *data quantum* as "the smallest unit of data elements
//! from the input datasets", e.g. a tuple or a matrix row (§3.1). We model a
//! data quantum as a [`Record`] — a small vector of dynamically typed
//! [`Value`]s. Logical operators conceptually process one data quantum at a
//! time; execution operators process batches of them ([`Dataset`]), exactly
//! as the paper prescribes for the platform layer.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{Result, RheemError};

pub mod chunk;

pub use chunk::{Bitmap, Chunk, Column, ColumnData};

/// A dynamically typed scalar value — one field of a data quantum.
///
/// The ordering is total: values are ranked first by variant
/// (`Null < Bool < Int < Float < Str`) and then by payload. Floats use IEEE
/// `total_cmp`, so `NaN` values are ordered and hashable, which keeps
/// grouping and sorting well defined on arbitrary data.
#[derive(Clone, Debug)]
pub enum Value {
    /// Absence of a value (e.g. a missing attribute in dirty data).
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit IEEE float.
    Float(f64),
    /// An immutable, cheaply clonable string.
    Str(Arc<str>),
}

impl Value {
    /// A small integer tag used for cross-variant ordering and hashing.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }

    /// Build a string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Returns the integer payload, or a type error.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(RheemError::Type {
                expected: "Int".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    /// Returns the float payload; integers are widened for convenience.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            other => Err(RheemError::Type {
                expected: "Float".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    /// Returns the string payload, or a type error.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(RheemError::Type {
                expected: "Str".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    /// Returns the boolean payload, or a type error.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(RheemError::Type {
                expected: "Bool".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            // `total_cmp` distinguishes -0.0 from 0.0 and the NaN payloads,
            // so hashing the raw bits is consistent with `Eq`.
            Value::Float(x) => x.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

/// A *data quantum*: one tuple flowing through the system.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Record {
    fields: Vec<Value>,
}

impl Record {
    /// Create a record from its fields.
    pub fn new(fields: Vec<Value>) -> Self {
        Record { fields }
    }

    /// An empty record (width 0).
    pub fn empty() -> Self {
        Record { fields: Vec::new() }
    }

    /// Number of fields.
    pub fn width(&self) -> usize {
        self.fields.len()
    }

    /// Borrow a field, or an out-of-bounds error.
    pub fn get(&self, index: usize) -> Result<&Value> {
        self.fields.get(index).ok_or(RheemError::FieldOutOfBounds {
            index,
            width: self.fields.len(),
        })
    }

    /// Field as `i64` (convenience for UDFs).
    pub fn int(&self, index: usize) -> Result<i64> {
        self.get(index)?.as_int()
    }

    /// Field as `f64`; integer fields are widened.
    pub fn float(&self, index: usize) -> Result<f64> {
        self.get(index)?.as_float()
    }

    /// Field as `&str`.
    pub fn str(&self, index: usize) -> Result<&str> {
        self.get(index)?.as_str()
    }

    /// Field as `bool`.
    pub fn bool(&self, index: usize) -> Result<bool> {
        self.get(index)?.as_bool()
    }

    /// All fields as a slice.
    pub fn fields(&self) -> &[Value] {
        &self.fields
    }

    /// Consume the record, yielding its fields.
    pub fn into_fields(self) -> Vec<Value> {
        self.fields
    }

    /// Append a field in place.
    pub fn push(&mut self, v: impl Into<Value>) {
        self.fields.push(v.into());
    }

    /// A new record keeping only the given field indices, in order.
    ///
    /// This is the kernel of the `Project` physical operator and of the
    /// cleaning application's `Scope` logical operator.
    pub fn project(&self, indices: &[usize]) -> Result<Record> {
        let mut fields = Vec::with_capacity(indices.len());
        for &i in indices {
            fields.push(self.get(i)?.clone());
        }
        Ok(Record { fields })
    }

    /// A new record that is the concatenation `self ++ other` (join output).
    pub fn concat(&self, other: &Record) -> Record {
        let mut fields = Vec::with_capacity(self.fields.len() + other.fields.len());
        fields.extend_from_slice(&self.fields);
        fields.extend_from_slice(&other.fields);
        Record { fields }
    }
}

impl From<Vec<Value>> for Record {
    fn from(fields: Vec<Value>) -> Self {
        Record { fields }
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Build a [`Record`] from a list of field expressions.
///
/// ```
/// use rheem_core::rec;
/// let r = rec![1i64, "alice", 3.5];
/// assert_eq!(r.width(), 3);
/// ```
#[macro_export]
macro_rules! rec {
    ($($field:expr),* $(,)?) => {
        $crate::data::Record::new(vec![$($crate::data::Value::from($field)),*])
    };
}

/// An immutable batch of records with cheap (`Arc`) cloning.
///
/// Datasets are what flows across task-atom boundaries; inside a platform,
/// execution operators work on `&[Record]` slices or owned vectors.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    records: Arc<Vec<Record>>,
}

impl Dataset {
    /// Wrap a vector of records.
    pub fn new(records: Vec<Record>) -> Self {
        Dataset {
            records: Arc::new(records),
        }
    }

    /// The empty dataset.
    pub fn empty() -> Self {
        Dataset::default()
    }

    /// Number of records (the dataset's cardinality).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Borrow the records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Obtain an owned vector, avoiding a copy when uniquely referenced.
    pub fn into_records(self) -> Vec<Record> {
        Arc::try_unwrap(self.records).unwrap_or_else(|arc| arc.as_ref().clone())
    }

    /// Iterate over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, Record> {
        self.records.iter()
    }
}

impl From<Vec<Record>> for Dataset {
    fn from(records: Vec<Record>) -> Self {
        Dataset::new(records)
    }
}

impl FromIterator<Record> for Dataset {
    fn from_iter<I: IntoIterator<Item = Record>>(iter: I) -> Self {
        Dataset::new(iter.into_iter().collect())
    }
}

impl PartialEq for Dataset {
    fn eq(&self, other: &Self) -> bool {
        self.records() == other.records()
    }
}
impl Eq for Dataset {}

/// A named attribute in a [`Schema`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    /// Attribute name.
    pub name: String,
    /// Attribute type tag.
    pub dtype: DataType,
}

/// Type tags for schema declarations; execution remains dynamically typed,
/// schemas serve documentation, storage layout, and optimizer hints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataType {
    /// Boolean attribute.
    Bool,
    /// 64-bit integer attribute.
    Int,
    /// 64-bit float attribute.
    Float,
    /// String attribute.
    Str,
}

/// An ordered list of named, typed attributes describing a dataset.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    pub fn new(fields: Vec<(impl Into<String>, DataType)>) -> Self {
        Schema {
            fields: fields
                .into_iter()
                .map(|(name, dtype)| Field {
                    name: name.into(),
                    dtype,
                })
                .collect(),
        }
    }

    /// Number of attributes.
    pub fn width(&self) -> usize {
        self.fields.len()
    }

    /// The attributes.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Resolve an attribute name to its index.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Check a record's fields against this schema (`Null` matches any type).
    pub fn check(&self, record: &Record) -> Result<()> {
        if record.width() != self.width() {
            return Err(RheemError::Type {
                expected: format!("record of width {}", self.width()),
                found: format!("record of width {}", record.width()),
            });
        }
        for (i, field) in self.fields.iter().enumerate() {
            let v = record.get(i)?;
            let ok = matches!(
                (field.dtype, v),
                (_, Value::Null)
                    | (DataType::Bool, Value::Bool(_))
                    | (DataType::Int, Value::Int(_))
                    | (DataType::Float, Value::Float(_))
                    | (DataType::Str, Value::Str(_))
            );
            if !ok {
                return Err(RheemError::Type {
                    expected: format!("{:?} for attribute `{}`", field.dtype, field.name),
                    found: format!("{v:?}"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn value_ordering_is_total_across_variants() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-1),
            Value::Int(7),
            Value::Float(f64::NEG_INFINITY),
            Value::Float(0.0),
            Value::Float(f64::NAN),
            Value::str("a"),
            Value::str("b"),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{:?} should sort before {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn nan_is_equal_to_itself_and_hash_consistent() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn negative_zero_differs_from_positive_zero_consistently() {
        let neg = Value::Float(-0.0);
        let pos = Value::Float(0.0);
        assert_ne!(neg, pos);
        assert!(neg < pos);
    }

    #[test]
    fn int_float_cross_variant_comparison_uses_rank() {
        // Documented behaviour: Int(5) and Float(5.0) are distinct values.
        assert_ne!(Value::Int(5), Value::Float(5.0));
        assert!(Value::Int(5) < Value::Float(5.0));
    }

    #[test]
    fn value_accessors_report_type_errors() {
        assert!(Value::str("x").as_int().is_err());
        assert!(Value::Int(3).as_str().is_err());
        assert_eq!(Value::Int(3).as_float().unwrap(), 3.0);
        assert!(Value::Bool(true).as_bool().unwrap());
    }

    #[test]
    fn record_macro_and_accessors() {
        let r = rec![42i64, "alice", 2.5, true];
        assert_eq!(r.width(), 4);
        assert_eq!(r.int(0).unwrap(), 42);
        assert_eq!(r.str(1).unwrap(), "alice");
        assert_eq!(r.float(2).unwrap(), 2.5);
        assert!(r.bool(3).unwrap());
        assert!(matches!(
            r.get(9),
            Err(RheemError::FieldOutOfBounds { index: 9, width: 4 })
        ));
    }

    #[test]
    fn record_project_and_concat() {
        let r = rec![1i64, "a", 2i64];
        let p = r.project(&[2, 0]).unwrap();
        assert_eq!(p, rec![2i64, 1i64]);
        assert!(r.project(&[5]).is_err());
        let c = r.concat(&rec!["b"]);
        assert_eq!(c.width(), 4);
        assert_eq!(c.str(3).unwrap(), "b");
    }

    #[test]
    fn dataset_shared_and_owned_access() {
        let d = Dataset::new(vec![rec![1i64], rec![2i64]]);
        let d2 = d.clone();
        assert_eq!(d, d2);
        assert_eq!(d.len(), 2);
        // `into_records` on a shared dataset must copy, leaving the clone intact.
        let owned = d.into_records();
        assert_eq!(owned.len(), 2);
        assert_eq!(d2.len(), 2);
        // Uniquely owned datasets unwrap without copying (observable only via
        // behaviour: it still yields the records).
        let unique = Dataset::new(vec![rec![3i64]]);
        assert_eq!(unique.into_records(), vec![rec![3i64]]);
    }

    #[test]
    fn schema_check_accepts_matching_and_null() {
        let s = Schema::new(vec![("id", DataType::Int), ("name", DataType::Str)]);
        assert_eq!(s.index_of("name"), Some(1));
        assert!(s.check(&rec![1i64, "x"]).is_ok());
        let with_null = Record::new(vec![Value::Null, Value::str("x")]);
        assert!(s.check(&with_null).is_ok());
    }

    #[test]
    fn schema_check_rejects_wrong_width_and_type() {
        let s = Schema::new(vec![("id", DataType::Int)]);
        assert!(s.check(&rec![1i64, 2i64]).is_err());
        assert!(s.check(&rec!["oops"]).is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(rec![1i64, "a"].to_string(), "(1, a)");
        assert_eq!(Value::Null.to_string(), "null");
    }
}
