//! Columnar chunk representation of record batches.
//!
//! The paper's platform layer prescribes batch-oriented execution operators
//! (§3.1): execution operators process *batches* of data quanta, not one
//! quantum at a time. This module provides the batch layout: a [`Chunk`] is
//! a set of typed column vectors ([`Column`]) with validity bitmaps
//! ([`Bitmap`]) and cheap zero-copy slicing, so morsel-parallel kernels
//! operate on *views* of shared column storage instead of cloned rows.
//!
//! The row-oriented [`Record`] API remains the conversion boundary:
//! [`Chunk::from_records`] / [`Chunk::to_records`] round-trip exactly
//! (including `NaN` payload bits, `-0.0`, and `Null` via validity bits), so
//! platforms, storage, and streaming keep working unchanged while kernels
//! migrate to the columnar path.

use std::collections::HashMap;
use std::sync::Arc;

use super::{Record, Value};

/// A validity bitmap: one bit per row, `1` = valid, `0` = null.
///
/// Typed columns store a neutral payload (0, 0.0, `false`, dictionary code
/// 0) in null lanes; the bitmap is the source of truth for null-ness.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Bitmap::default()
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the bitmap holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one bit.
    pub fn push(&mut self, valid: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if valid {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Read bit `i`; out-of-range bits read as valid.
    pub fn get(&self, i: usize) -> bool {
        if i >= self.len {
            return true;
        }
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of valid (set) bits.
    pub fn count_valid(&self) -> usize {
        let mut n: usize = self.words.iter().map(|w| w.count_ones() as usize).sum();
        // Bits past `len` are zero by construction, so no mask needed; but
        // defensively clamp to the logical length.
        if n > self.len {
            n = self.len;
        }
        n
    }

    /// True iff every bit in `[offset, offset + len)` is valid.
    pub fn all_valid_in(&self, offset: usize, len: usize) -> bool {
        (offset..offset + len).all(|i| self.get(i))
    }
}

/// Physical storage of one column: a typed vector or a mixed fallback.
///
/// Null lanes of typed variants hold a neutral payload; the owning
/// [`Column`]'s validity bitmap distinguishes them. `Mixed` stores
/// [`Value`]s verbatim (including `Null`) and never carries a bitmap.
#[derive(Clone, Debug)]
pub enum ColumnData {
    /// All values are `Int` (or `Null`).
    Int(Vec<i64>),
    /// All values are `Float` (or `Null`); `NaN` payload bits preserved.
    Float(Vec<f64>),
    /// All values are `Bool` (or `Null`).
    Bool(Vec<bool>),
    /// All values are `Str` (or `Null`), dictionary-encoded.
    Str {
        /// Distinct strings, in first-appearance order.
        dict: Vec<Arc<str>>,
        /// Per-row index into `dict` (0 for null lanes).
        codes: Vec<u32>,
    },
    /// Heterogeneous column: values stored verbatim.
    Mixed(Vec<Value>),
}

impl ColumnData {
    /// Number of rows stored.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str { codes, .. } => codes.len(),
            ColumnData::Mixed(v) => v.len(),
        }
    }

    /// True iff no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A column *view*: shared storage plus an `(offset, len)` window.
///
/// Cloning and slicing are O(1) — they bump the [`Arc`]s and adjust the
/// window — which is what makes morsels views instead of clones.
#[derive(Clone, Debug)]
pub struct Column {
    data: Arc<ColumnData>,
    validity: Option<Arc<Bitmap>>,
    offset: usize,
    len: usize,
}

impl Column {
    /// Build a column from values, inferring the tightest typed layout.
    ///
    /// A column whose non-null values all share one scalar type becomes the
    /// corresponding typed vector with a validity bitmap (bitmap omitted
    /// when no value is null); anything else falls back to
    /// [`ColumnData::Mixed`].
    pub fn from_values(values: &[Value]) -> Column {
        #[derive(PartialEq, Clone, Copy)]
        enum Kind {
            Unknown,
            Int,
            Float,
            Bool,
            Str,
            Mixed,
        }
        let mut kind = Kind::Unknown;
        let mut has_null = false;
        for v in values {
            let k = match v {
                Value::Null => {
                    has_null = true;
                    continue;
                }
                Value::Int(_) => Kind::Int,
                Value::Float(_) => Kind::Float,
                Value::Bool(_) => Kind::Bool,
                Value::Str(_) => Kind::Str,
            };
            if kind == Kind::Unknown {
                kind = k;
            } else if kind != k {
                kind = Kind::Mixed;
                break;
            }
        }
        if kind == Kind::Mixed {
            return Column {
                len: values.len(),
                data: Arc::new(ColumnData::Mixed(values.to_vec())),
                validity: None,
                offset: 0,
            };
        }
        let validity = if has_null {
            let mut bm = Bitmap::new();
            for v in values {
                bm.push(!v.is_null());
            }
            Some(Arc::new(bm))
        } else {
            None
        };
        let data = match kind {
            Kind::Float => ColumnData::Float(
                values
                    .iter()
                    .map(|v| if let Value::Float(x) = v { *x } else { 0.0 })
                    .collect(),
            ),
            Kind::Bool => ColumnData::Bool(
                values
                    .iter()
                    .map(|v| matches!(v, Value::Bool(true)))
                    .collect(),
            ),
            Kind::Str => {
                let mut dict: Vec<Arc<str>> = Vec::new();
                let mut seen: HashMap<Arc<str>, u32> = HashMap::new();
                let mut codes = Vec::with_capacity(values.len());
                for v in values {
                    match v {
                        Value::Str(s) => {
                            let code = *seen.entry(s.clone()).or_insert_with(|| {
                                dict.push(s.clone());
                                (dict.len() - 1) as u32
                            });
                            codes.push(code);
                        }
                        _ => codes.push(0),
                    }
                }
                ColumnData::Str { dict, codes }
            }
            // `Unknown` means every value was null: store zeros under an
            // all-null bitmap.
            _ => ColumnData::Int(
                values
                    .iter()
                    .map(|v| if let Value::Int(i) = v { *i } else { 0 })
                    .collect(),
            ),
        };
        Column {
            len: values.len(),
            data: Arc::new(data),
            validity,
            offset: 0,
        }
    }

    /// Wrap a ready-made `i64` lane with no nulls.
    pub fn from_typed_int(lane: Vec<i64>) -> Column {
        Column {
            len: lane.len(),
            data: Arc::new(ColumnData::Int(lane)),
            validity: None,
            offset: 0,
        }
    }

    /// Wrap a ready-made `f64` lane with no nulls.
    pub fn from_typed_float(lane: Vec<f64>) -> Column {
        Column {
            len: lane.len(),
            data: Arc::new(ColumnData::Float(lane)),
            validity: None,
            offset: 0,
        }
    }

    /// Wrap a ready-made `bool` lane with no nulls.
    pub fn from_typed_bool(lane: Vec<bool>) -> Column {
        Column {
            len: lane.len(),
            data: Arc::new(ColumnData::Bool(lane)),
            validity: None,
            offset: 0,
        }
    }

    /// Number of rows in this view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True iff row `i` of the view is non-null.
    pub fn is_valid(&self, i: usize) -> bool {
        match &self.validity {
            Some(bm) => bm.get(self.offset + i),
            None => !matches!(
                self.data.as_ref(),
                ColumnData::Mixed(v) if matches!(v.get(self.offset + i), Some(Value::Null))
            ),
        }
    }

    /// True iff no row in the view can be null (no bitmap, non-mixed).
    pub fn no_nulls(&self) -> bool {
        match &self.validity {
            Some(bm) => bm.all_valid_in(self.offset, self.len),
            None => !matches!(self.data.as_ref(), ColumnData::Mixed(_)),
        }
    }

    /// Materialize row `i` of the view as a [`Value`].
    pub fn value(&self, i: usize) -> Value {
        debug_assert!(i < self.len);
        let j = self.offset + i;
        if let Some(bm) = &self.validity {
            if !bm.get(j) {
                return Value::Null;
            }
        }
        match self.data.as_ref() {
            ColumnData::Int(v) => Value::Int(v[j]),
            ColumnData::Float(v) => Value::Float(v[j]),
            ColumnData::Bool(v) => Value::Bool(v[j]),
            ColumnData::Str { dict, codes } => Value::Str(dict[codes[j] as usize].clone()),
            ColumnData::Mixed(v) => v[j].clone(),
        }
    }

    /// The `i64` lane of the view when the column is `Int`, else `None`.
    ///
    /// The slice covers null lanes too (they read as 0); combine with
    /// [`Column::no_nulls`] before using it as a typed fast path.
    pub fn ints(&self) -> Option<&[i64]> {
        match self.data.as_ref() {
            ColumnData::Int(v) => Some(&v[self.offset..self.offset + self.len]),
            _ => None,
        }
    }

    /// The `f64` lane of the view when the column is `Float`, else `None`.
    pub fn floats(&self) -> Option<&[f64]> {
        match self.data.as_ref() {
            ColumnData::Float(v) => Some(&v[self.offset..self.offset + self.len]),
            _ => None,
        }
    }

    /// The `bool` lane of the view when the column is `Bool`, else `None`.
    pub fn bools(&self) -> Option<&[bool]> {
        match self.data.as_ref() {
            ColumnData::Bool(v) => Some(&v[self.offset..self.offset + self.len]),
            _ => None,
        }
    }

    /// The dictionary and per-row code lane of the view when the column is
    /// `Str`, else `None`.
    ///
    /// The dictionary holds *distinct* strings ([`Column::from_values`]
    /// dedups at construction and gather/slice share the dictionary), so
    /// code equality is string equality within one column — the invariant
    /// the kernels' dict-code fast lane relies on. Codes cover null lanes
    /// too (they read as 0); combine with [`Column::no_nulls`].
    pub fn dict_codes(&self) -> Option<(&[Arc<str>], &[u32])> {
        match self.data.as_ref() {
            ColumnData::Str { dict, codes } => {
                Some((&dict[..], &codes[self.offset..self.offset + self.len]))
            }
            _ => None,
        }
    }

    /// Zero-copy sub-view `[offset, offset + len)` of this view.
    pub fn slice(&self, offset: usize, len: usize) -> Column {
        assert!(offset + len <= self.len, "column slice out of range");
        Column {
            data: self.data.clone(),
            validity: self.validity.clone(),
            offset: self.offset + offset,
            len,
        }
    }

    /// Materialize the rows at `indices` (in order) into a new column.
    ///
    /// The typed layout is preserved: gathering an `Int` column yields an
    /// `Int` column, so downstream kernels keep their fast paths after a
    /// filter.
    pub fn gather(&self, indices: &[usize]) -> Column {
        let validity = self.validity.as_ref().map(|bm| {
            let mut out = Bitmap::new();
            for &i in indices {
                out.push(bm.get(self.offset + i));
            }
            Arc::new(out)
        });
        let data = match self.data.as_ref() {
            ColumnData::Int(v) => {
                ColumnData::Int(indices.iter().map(|&i| v[self.offset + i]).collect())
            }
            ColumnData::Float(v) => {
                ColumnData::Float(indices.iter().map(|&i| v[self.offset + i]).collect())
            }
            ColumnData::Bool(v) => {
                ColumnData::Bool(indices.iter().map(|&i| v[self.offset + i]).collect())
            }
            ColumnData::Str { dict, codes } => ColumnData::Str {
                dict: dict.clone(),
                codes: indices.iter().map(|&i| codes[self.offset + i]).collect(),
            },
            ColumnData::Mixed(v) => ColumnData::Mixed(
                indices
                    .iter()
                    .map(|&i| v[self.offset + i].clone())
                    .collect(),
            ),
        };
        Column {
            data: Arc::new(data),
            validity,
            offset: 0,
            len: indices.len(),
        }
    }
}

/// A batch of rows in columnar layout.
///
/// All columns share the same row count. `Chunk` is the unit the vectorized
/// kernels in [`crate::kernels::chunked`] operate on; [`Chunk::slice`]
/// produces zero-copy morsel views for intra-atom parallelism.
#[derive(Clone, Debug)]
pub struct Chunk {
    columns: Vec<Column>,
    rows: usize,
}

impl Chunk {
    /// Build a chunk from columns that all have `rows` rows.
    pub fn new(columns: Vec<Column>, rows: usize) -> Chunk {
        debug_assert!(columns.iter().all(|c| c.len() == rows));
        Chunk { columns, rows }
    }

    /// Convert a record batch to columnar layout.
    ///
    /// Returns `None` when the batch is *ragged* (records of differing
    /// widths) — callers fall back to the row path, since `Record` carries
    /// no width guarantee.
    pub fn from_records(records: &[Record]) -> Option<Chunk> {
        let width = match records.first() {
            Some(r) => r.width(),
            None => return Some(Chunk::new(Vec::new(), 0)),
        };
        if records.iter().any(|r| r.width() != width) {
            return None;
        }
        let mut columns = Vec::with_capacity(width);
        let mut scratch: Vec<Value> = Vec::with_capacity(records.len());
        for c in 0..width {
            scratch.clear();
            for r in records {
                scratch.push(r.fields()[c].clone());
            }
            columns.push(Column::from_values(&scratch));
        }
        Some(Chunk::new(columns, records.len()))
    }

    /// Convert back to rows; exact inverse of [`Chunk::from_records`].
    pub fn to_records(&self) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            let fields: Vec<Value> = self.columns.iter().map(|c| c.value(i)).collect();
            out.push(Record::new(fields));
        }
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// The column views.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Borrow column `c`, if present.
    pub fn column(&self, c: usize) -> Option<&Column> {
        self.columns.get(c)
    }

    /// Zero-copy row window `[offset, offset + len)` — the morsel view.
    pub fn slice(&self, offset: usize, len: usize) -> Chunk {
        assert!(offset + len <= self.rows, "chunk slice out of range");
        Chunk {
            columns: self.columns.iter().map(|c| c.slice(offset, len)).collect(),
            rows: len,
        }
    }

    /// Keep the given columns, in order — O(width) `Arc` bumps, no copying.
    ///
    /// Returns `None` if any index is out of bounds (mirrors the row
    /// kernel's field-out-of-bounds error).
    pub fn project(&self, indices: &[usize]) -> Option<Chunk> {
        let mut columns = Vec::with_capacity(indices.len());
        for &i in indices {
            columns.push(self.columns.get(i)?.clone());
        }
        Some(Chunk {
            columns,
            rows: self.rows,
        })
    }

    /// Materialize the rows at `indices` (in order) into a new chunk.
    pub fn gather(&self, indices: &[usize]) -> Chunk {
        Chunk {
            columns: self.columns.iter().map(|c| c.gather(indices)).collect(),
            rows: indices.len(),
        }
    }

    /// Concatenate row-compatible chunks (same width) by materializing.
    ///
    /// Used to merge per-morsel outputs; returns `None` on width mismatch.
    pub fn concat(chunks: &[Chunk]) -> Option<Chunk> {
        let non_empty: Vec<&Chunk> = chunks.iter().filter(|c| c.rows > 0).collect();
        let first = match non_empty.first() {
            Some(c) => c,
            None => return Some(Chunk::new(Vec::new(), 0)),
        };
        let width = first.width();
        if non_empty.iter().any(|c| c.width() != width) {
            return None;
        }
        let rows = non_empty.iter().map(|c| c.rows).sum();
        let mut columns = Vec::with_capacity(width);
        let mut scratch: Vec<Value> = Vec::with_capacity(rows);
        for c in 0..width {
            scratch.clear();
            for ch in &non_empty {
                for i in 0..ch.rows {
                    scratch.push(ch.columns[c].value(i));
                }
            }
            columns.push(Column::from_values(&scratch));
        }
        Some(Chunk::new(columns, rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rec;

    #[test]
    fn round_trip_preserves_exotic_floats_and_nulls() {
        let records = vec![
            Record::new(vec![Value::Int(1), Value::Float(-0.0), Value::str("a")]),
            Record::new(vec![Value::Null, Value::Float(f64::NAN), Value::str("b")]),
            Record::new(vec![Value::Int(3), Value::Null, Value::str("a")]),
        ];
        let chunk = Chunk::from_records(&records).unwrap();
        let back = chunk.to_records();
        assert_eq!(back.len(), 3);
        for (a, b) in records.iter().zip(&back) {
            assert_eq!(a, b);
        }
        // -0.0 bits preserved (Value::eq uses total_cmp, so this is strict).
        assert_eq!(back[0].fields()[1], Value::Float(-0.0));
    }

    #[test]
    fn typed_layout_is_inferred() {
        let records = vec![rec![1i64, 1.5, true, "x"], rec![2i64, 2.5, false, "x"]];
        let chunk = Chunk::from_records(&records).unwrap();
        assert!(chunk.column(0).unwrap().ints().is_some());
        assert!(chunk.column(1).unwrap().floats().is_some());
        assert!(chunk.column(2).unwrap().bools().is_some());
        match chunk.column(3).unwrap().data.as_ref() {
            ColumnData::Str { dict, codes } => {
                assert_eq!(dict.len(), 1);
                assert_eq!(codes, &[0, 0]);
            }
            other => panic!("expected dictionary column, got {other:?}"),
        }
    }

    #[test]
    fn mixed_column_falls_back() {
        let records = vec![rec![1i64], rec!["s"]];
        let chunk = Chunk::from_records(&records).unwrap();
        assert!(chunk.column(0).unwrap().ints().is_none());
        assert_eq!(chunk.to_records(), records);
    }

    #[test]
    fn ragged_batches_are_rejected() {
        let records = vec![rec![1i64], rec![1i64, 2i64]];
        assert!(Chunk::from_records(&records).is_none());
    }

    #[test]
    fn slice_is_a_view_and_round_trips() {
        let records: Vec<Record> = (0..100i64).map(|i| rec![i, i as f64]).collect();
        let chunk = Chunk::from_records(&records).unwrap();
        let s = chunk.slice(10, 5);
        assert_eq!(s.rows(), 5);
        assert_eq!(s.to_records(), &records[10..15]);
        // Slicing shares storage: the underlying Arc is the same allocation.
        assert!(Arc::ptr_eq(&chunk.columns[0].data, &s.columns[0].data));
    }

    #[test]
    fn gather_preserves_typed_layout() {
        let records: Vec<Record> = (0..10i64).map(|i| rec![i]).collect();
        let chunk = Chunk::from_records(&records).unwrap();
        let g = chunk.gather(&[9, 0, 3]);
        assert_eq!(g.column(0).unwrap().ints().unwrap(), &[9, 0, 3]);
    }

    #[test]
    fn gather_keeps_validity() {
        let records = vec![
            Record::new(vec![Value::Int(1)]),
            Record::new(vec![Value::Null]),
            Record::new(vec![Value::Int(3)]),
        ];
        let chunk = Chunk::from_records(&records).unwrap();
        let g = chunk.gather(&[1, 2]);
        assert_eq!(g.column(0).unwrap().value(0), Value::Null);
        assert_eq!(g.column(0).unwrap().value(1), Value::Int(3));
    }

    #[test]
    fn project_is_zero_copy_and_checks_bounds() {
        let records = vec![rec![1i64, "a"], rec![2i64, "b"]];
        let chunk = Chunk::from_records(&records).unwrap();
        let p = chunk.project(&[1, 0]).unwrap();
        assert_eq!(p.to_records(), vec![rec!["a", 1i64], rec!["b", 2i64]]);
        assert!(chunk.project(&[2]).is_none());
        assert!(Arc::ptr_eq(&chunk.columns[0].data, &p.columns[1].data));
    }

    #[test]
    fn concat_merges_morsel_outputs() {
        let records: Vec<Record> = (0..10i64).map(|i| rec![i]).collect();
        let chunk = Chunk::from_records(&records).unwrap();
        let merged = Chunk::concat(&[chunk.slice(0, 4), chunk.slice(4, 6)]).unwrap();
        assert_eq!(merged.to_records(), records);
        assert!(Chunk::concat(&[]).unwrap().to_records().is_empty());
    }

    #[test]
    fn bitmap_push_get_count() {
        let mut bm = Bitmap::new();
        for i in 0..130 {
            bm.push(i % 3 != 0);
        }
        assert_eq!(bm.len(), 130);
        assert!(!bm.get(0));
        assert!(bm.get(1));
        assert!(!bm.get(129));
        assert_eq!(bm.count_valid(), 130 - 44);
        assert!(!bm.all_valid_in(0, 130));
        assert!(bm.all_valid_in(1, 2));
    }

    #[test]
    fn all_null_column_round_trips() {
        let records = vec![
            Record::new(vec![Value::Null]),
            Record::new(vec![Value::Null]),
        ];
        let chunk = Chunk::from_records(&records).unwrap();
        assert_eq!(chunk.to_records(), records);
        assert!(!chunk.column(0).unwrap().no_nulls());
    }
}
