//! The platform layer contract.
//!
//! "At this layer, execution operators define how a task is executed on the
//! underlying processing platform" (§3.1). A [`Platform`] is an engine that
//! can run task atoms; its execution operators are the engine's internal
//! implementations of the physical operators it [`Platform::supports`].
//! Platforms also surrender a [`PlatformCostModel`] so the multi-platform
//! optimizer can price plans, and declare a [`ProcessingProfile`] — the
//! paper's "data processing profile" (§8 challenge 2).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::cost::{ChannelKind, ChannelSpec, PlatformCostModel};
use crate::data::Dataset;
use crate::error::{Result, RheemError};
use crate::kernels::parallel::KernelParallelism;
use crate::physical::PhysicalOp;
use crate::plan::{NodeId, PhysicalPlan, TaskAtom};

/// The type of data processing a platform supports (§8 challenge 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProcessingProfile {
    /// Single-process, in-memory execution (the paper's "plain Java").
    SingleProcess,
    /// Parallel, partitioned, in-memory batch execution (Spark-like).
    ParallelBatch,
    /// Batch execution with disk-materialized phase boundaries (Hadoop-like).
    DiskBatch,
    /// Declarative relational execution over managed tables (DBMS-like).
    Relational,
}

impl ProcessingProfile {
    /// The data channels a platform of this profile typically speaks —
    /// the default for [`Platform::channels`]. Single-process engines
    /// hand over in-memory collections; Spark-like engines can also
    /// stream between running stages; Hadoop-like engines materialize
    /// every boundary on disk; relational stores can bulk-load files or
    /// exchange result sets in memory.
    pub fn default_channels(&self) -> ChannelSpec {
        match self {
            ProcessingProfile::SingleProcess => ChannelSpec::memory_only(),
            ProcessingProfile::ParallelBatch => ChannelSpec::new(
                vec![ChannelKind::Memory, ChannelKind::Stream],
                vec![ChannelKind::Memory, ChannelKind::Stream],
            ),
            ProcessingProfile::DiskBatch => {
                ChannelSpec::new(vec![ChannelKind::File], vec![ChannelKind::File])
            }
            ProcessingProfile::Relational => ChannelSpec::new(
                vec![ChannelKind::Memory, ChannelKind::File],
                vec![ChannelKind::Memory, ChannelKind::File],
            ),
        }
    }
}

/// Boundary inputs of an atom: dataset per `(consumer node, input slot)`.
pub type AtomInputs = HashMap<(NodeId, usize), Dataset>;

/// What a platform returns after executing an atom.
#[derive(Clone, Debug, Default)]
pub struct AtomResult {
    /// Output datasets for the atom's boundary-output nodes.
    pub outputs: HashMap<NodeId, Dataset>,
    /// Total records produced by operators inside the atom.
    pub records_processed: u64,
    /// Deterministic simulated overhead the platform charged (job startup,
    /// stage scheduling, disk phases). Used by tests and reported in stats;
    /// real wall-clock is measured by the executor separately.
    pub simulated_overhead_ms: f64,
    /// Simulated elapsed time of the atom in milliseconds: charged
    /// overheads plus the *critical path* of the work — for partitioned
    /// platforms, the per-stage maximum across partitions, as if every
    /// partition had its own core. This is what makes the paper's
    /// parallel-vs-single-process comparisons reproducible on any host,
    /// including single-core CI machines (see DESIGN.md).
    pub simulated_elapsed_ms: f64,
    /// Per-operator-kernel observations (runtime and true output
    /// cardinality) for the atom's top-level nodes. Feeds kernel trace
    /// spans and the cost-calibration loop; platforms that cannot
    /// attribute work per node may leave this empty.
    pub node_observations: Vec<crate::observe::NodeObservation>,
}

/// A data processing platform (execution engine).
pub trait Platform: Send + Sync {
    /// Unique platform name (used in plans, mappings, and movement costs).
    fn name(&self) -> &str;

    /// The platform's processing profile.
    fn profile(&self) -> ProcessingProfile;

    /// Whether this platform has an execution operator for `op`.
    fn supports(&self, op: &PhysicalOp) -> bool;

    /// The platform's cost model plugin.
    fn cost_model(&self) -> Arc<dyn PlatformCostModel>;

    /// Execute one task atom: run `atom.nodes` (a topologically ordered
    /// fragment of `plan`) given boundary `inputs`, returning datasets for
    /// the atom's output nodes.
    fn execute_atom(
        &self,
        plan: &PhysicalPlan,
        atom: &TaskAtom,
        inputs: &AtomInputs,
        ctx: &ExecutionContext,
    ) -> Result<AtomResult>;

    /// Intra-atom worker threads this platform's kernels exploit (its
    /// declared morsel parallelism). The optimizer's cost models may use
    /// this to price the platform; `1` means kernels run sequentially
    /// unless the ambient [`ExecutionContext::kernel_parallelism`] says
    /// otherwise.
    fn kernel_parallelism(&self) -> usize {
        1
    }

    /// The data channels this platform produces and consumes at atom
    /// boundaries. Defaults follow the platform's
    /// [`ProcessingProfile`]; platforms with richer connectivity may
    /// override. The optimizer's [`crate::cost::MovementCostModel`]
    /// prices cross-platform edges through the channel conversion graph
    /// these specs span.
    fn channels(&self) -> ChannelSpec {
        self.profile().default_channels()
    }
}

/// Registry of available platforms, in registration order.
#[derive(Clone, Default)]
pub struct PlatformRegistry {
    platforms: Vec<Arc<dyn Platform>>,
}

impl PlatformRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        PlatformRegistry::default()
    }

    /// Register a platform. Re-registering a name replaces the old entry.
    pub fn register(&mut self, platform: Arc<dyn Platform>) {
        self.platforms.retain(|p| p.name() != platform.name());
        self.platforms.push(platform);
    }

    /// Look up a platform by name.
    pub fn get(&self, name: &str) -> Result<Arc<dyn Platform>> {
        self.platforms
            .iter()
            .find(|p| p.name() == name)
            .cloned()
            .ok_or_else(|| RheemError::UnknownPlatform(name.to_string()))
    }

    /// All registered platforms, in registration order.
    pub fn all(&self) -> &[Arc<dyn Platform>] {
        &self.platforms
    }

    /// Names of all registered platforms.
    pub fn names(&self) -> Vec<&str> {
        self.platforms.iter().map(|p| p.name()).collect()
    }

    /// True iff no platform is registered.
    pub fn is_empty(&self) -> bool {
        self.platforms.is_empty()
    }
}

/// Abstraction over the storage layer, implemented by `rheem-storage`.
///
/// Kept as a trait in the core so the processing side depends only on the
/// *abstraction* — the same inversion the paper applies between processing
/// platforms and storage platforms (§6).
pub trait StorageService: Send + Sync {
    /// Read a dataset by id.
    fn read(&self, dataset_id: &str) -> Result<Dataset>;

    /// Write (or overwrite) a dataset by id.
    fn write(&self, dataset_id: &str, data: &Dataset) -> Result<()>;

    /// Cardinality of a stored dataset, if known without reading it.
    fn cardinality(&self, dataset_id: &str) -> Option<u64>;
}

/// An in-memory [`StorageService`] for tests and storage-less deployments.
#[derive(Default)]
pub struct MemoryStorageService {
    datasets: Mutex<HashMap<String, Dataset>>,
}

impl MemoryStorageService {
    /// An empty in-memory storage service.
    pub fn new() -> Self {
        MemoryStorageService::default()
    }
}

impl StorageService for MemoryStorageService {
    fn read(&self, dataset_id: &str) -> Result<Dataset> {
        self.datasets
            .lock()
            .get(dataset_id)
            .cloned()
            .ok_or_else(|| RheemError::DatasetNotFound(dataset_id.to_string()))
    }

    fn write(&self, dataset_id: &str, data: &Dataset) -> Result<()> {
        self.datasets
            .lock()
            .insert(dataset_id.to_string(), data.clone());
        Ok(())
    }

    fn cardinality(&self, dataset_id: &str) -> Option<u64> {
        self.datasets.lock().get(dataset_id).map(|d| d.len() as u64)
    }
}

/// The kind of error a scripted injection raises (see
/// [`RheemError::classify`](crate::error::RheemError::classify)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedKind {
    /// An engine hiccup: surfaces as [`RheemError::Execution`], which the
    /// executor may retry.
    Transient,
    /// A deterministic defect (a broken kernel): surfaces as
    /// [`RheemError::InvalidPlan`], which the executor must fail fast on.
    Permanent,
}

/// An atom-id-keyed injection rule: fail the first `attempts` attempts of
/// one specific atom.
#[derive(Clone, Copy, Debug)]
struct AtomRule {
    attempts: usize,
    kind: InjectedKind,
}

/// Deterministic failure injection for exercising the executor's fault
/// tolerance (§4.2: the executor must "cope with failures").
///
/// Four scripted modes, checked in order by [`FailureInjector::inject`]:
///
/// 1. **Atom-keyed** ([`fail_atom`](FailureInjector::fail_atom)): fail the
///    first `n` attempts of one specific atom id. Because the decision is
///    a pure function of `(atom id, attempt)`, it lands on the *same* atom
///    in sequential and parallel schedules — unlike the legacy stateful
///    mode, where concurrent waves race for the countdown and a different
///    atom may absorb the failure per mode.
/// 2. **Platform down** ([`set_down`](FailureInjector::set_down)): every
///    attempt on the platform fails, modelling a hard outage that only
///    failover re-planning can route around.
/// 3. **Seeded probabilistic**
///    ([`probabilistic`](FailureInjector::probabilistic)): each
///    `(platform, atom, attempt)` fails with probability `p`, drawn
///    deterministically from a seed — chaos that replays identically
///    across runs and schedule modes.
/// 4. **Legacy stateful countdown**
///    ([`fail_next`](FailureInjector::fail_next)): fail the next `n`
///    attempts on a platform, in arrival order.
#[derive(Debug, Default)]
pub struct FailureInjector {
    /// Remaining failures per platform name (legacy stateful mode).
    remaining: Mutex<HashMap<String, usize>>,
    /// Platforms experiencing a hard outage.
    down: Mutex<HashSet<String>>,
    /// Atom-id-keyed rules.
    atoms: Mutex<HashMap<usize, AtomRule>>,
    /// Per-platform `(probability, seed)` of seeded random failures.
    chaos: Mutex<HashMap<String, (f64, u64)>>,
}

impl FailureInjector {
    /// No injected failures.
    pub fn none() -> Self {
        FailureInjector::default()
    }

    /// Fail the next `count` atom executions on `platform` (stateful: the
    /// countdown is consumed in attempt-arrival order, so under a parallel
    /// schedule *which* atom absorbs a failure can differ from the
    /// sequential schedule — prefer [`fail_atom`](Self::fail_atom) when
    /// the target matters).
    pub fn fail_next(platform: impl Into<String>, count: usize) -> Self {
        let inj = FailureInjector::default();
        inj.remaining.lock().insert(platform.into(), count);
        inj
    }

    /// A platform that is down from the start (every attempt fails with a
    /// transient error until [`restore`](Self::restore)).
    pub fn platform_down(platform: impl Into<String>) -> Self {
        let inj = FailureInjector::default();
        inj.set_down(platform);
        inj
    }

    /// Add stateful countdown failures for a platform.
    pub fn add(&self, platform: impl Into<String>, count: usize) {
        *self.remaining.lock().entry(platform.into()).or_insert(0) += count;
    }

    /// Mark `platform` as hard-down: every attempt on it fails.
    pub fn set_down(&self, platform: impl Into<String>) {
        self.down.lock().insert(platform.into());
    }

    /// Bring a downed platform back up.
    pub fn restore(&self, platform: &str) {
        self.down.lock().remove(platform);
    }

    /// Fail the first `attempts` attempts of atom `atom_id` with a
    /// transient error, regardless of platform and schedule mode.
    pub fn fail_atom(&self, atom_id: usize, attempts: usize) {
        self.fail_atom_with(atom_id, attempts, InjectedKind::Transient);
    }

    /// Like [`fail_atom`](Self::fail_atom) with an explicit error kind.
    pub fn fail_atom_with(&self, atom_id: usize, attempts: usize, kind: InjectedKind) {
        self.atoms
            .lock()
            .insert(atom_id, AtomRule { attempts, kind });
    }

    /// Fail each `(atom, attempt)` on `platform` independently with
    /// probability `p`, drawn deterministically from `seed`. The draw is a
    /// pure function of `(seed, platform, atom id, attempt)` — identical
    /// across schedule modes and reruns.
    pub fn probabilistic(&self, platform: impl Into<String>, p: f64, seed: u64) {
        self.chaos
            .lock()
            .insert(platform.into(), (p.clamp(0.0, 1.0), seed));
    }

    /// Consume one legacy countdown failure for `platform` if any is
    /// pending.
    pub fn should_fail(&self, platform: &str) -> bool {
        let mut map = self.remaining.lock();
        match map.get_mut(platform) {
            Some(n) if *n > 0 => {
                *n -= 1;
                true
            }
            _ => false,
        }
    }

    /// The executor's single entry point: should the `attempt`-th attempt
    /// (1-based) of atom `atom_id` on `platform` fail, and how?
    ///
    /// Checks atom-keyed rules, hard outages, and seeded chaos — all pure
    /// functions of structural ids — before falling back to the stateful
    /// countdown.
    pub fn inject(&self, platform: &str, atom_id: usize, attempt: usize) -> Option<InjectedKind> {
        if let Some(rule) = self.atoms.lock().get(&atom_id) {
            if attempt <= rule.attempts {
                return Some(rule.kind);
            }
        }
        if self.down.lock().contains(platform) {
            return Some(InjectedKind::Transient);
        }
        if let Some(&(p, seed)) = self.chaos.lock().get(platform) {
            let bits = crate::fault::splitmix64(
                seed ^ crate::fault::fnv1a(platform)
                    ^ (atom_id as u64).rotate_left(17)
                    ^ (attempt as u64).rotate_left(41),
            );
            if crate::fault::unit_f64(bits) < p {
                return Some(InjectedKind::Transient);
            }
        }
        if self.should_fail(platform) {
            return Some(InjectedKind::Transient);
        }
        None
    }

    /// The error a scripted injection raises, matching what a real engine
    /// failure of that kind would look like.
    pub fn error_for(kind: InjectedKind, platform: &str, atom_id: usize) -> RheemError {
        match kind {
            InjectedKind::Transient => RheemError::Execution {
                platform: platform.to_string(),
                message: format!("injected failure on atom {atom_id}"),
            },
            InjectedKind::Permanent => RheemError::InvalidPlan(format!(
                "injected permanent failure on atom {atom_id} ({platform})"
            )),
        }
    }
}

/// Ambient services available to platforms while executing atoms.
#[derive(Clone, Default)]
pub struct ExecutionContext {
    /// The storage layer, if deployed.
    pub storage: Option<Arc<dyn StorageService>>,
    /// Failure injection used by the executor (None in production).
    pub failure_injector: Option<Arc<FailureInjector>>,
    /// Intra-atom kernel parallelism knob (see
    /// [`KernelParallelism`]). Defaults from `RHEEM_KERNEL_THREADS` /
    /// the host's available parallelism; the wave scheduler divides it
    /// by the number of concurrently running atoms before handing the
    /// context to platforms.
    pub kernel_parallelism: KernelParallelism,
    /// Cooperative cancellation flag for the job this atom belongs to
    /// (None in embedded single-job use). Platforms and the interpreter
    /// check it between operators / partitions via
    /// [`check_cancelled`](ExecutionContext::check_cancelled); the
    /// executor additionally installs it as the ambient morsel-loop
    /// cancel scope around every atom invocation.
    pub cancel: Option<crate::fault::CancelToken>,
}

impl ExecutionContext {
    /// A context with no storage layer and no failure injection.
    pub fn new() -> Self {
        ExecutionContext::default()
    }

    /// Attach a storage service.
    pub fn with_storage(mut self, storage: Arc<dyn StorageService>) -> Self {
        self.storage = Some(storage);
        self
    }

    /// Set the intra-atom kernel parallelism knob.
    pub fn with_kernel_parallelism(mut self, parallelism: KernelParallelism) -> Self {
        self.kernel_parallelism = parallelism;
        self
    }

    /// Install a cooperative cancellation token.
    pub fn with_cancel_token(mut self, cancel: crate::fault::CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Checkpoint: `Err(RheemError::Cancelled)` once the job's token has
    /// fired, `Ok(())` otherwise (including when no token is installed).
    pub fn check_cancelled(&self) -> Result<()> {
        match &self.cancel {
            Some(token) => token.check(),
            None => Ok(()),
        }
    }

    /// A copy of this context whose kernel thread budget is divided by
    /// `workers` concurrently running atoms, so wave scheduling and
    /// intra-atom parallelism share one budget.
    pub fn share_kernel_threads(&self, workers: usize) -> ExecutionContext {
        ExecutionContext {
            kernel_parallelism: self.kernel_parallelism.share(workers),
            ..self.clone()
        }
    }

    /// Resolve the storage service or error.
    pub fn storage(&self) -> Result<&Arc<dyn StorageService>> {
        self.storage
            .as_ref()
            .ok_or_else(|| RheemError::Storage("no storage service configured".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rec;

    #[test]
    fn memory_storage_round_trip() {
        let s = MemoryStorageService::new();
        assert!(s.read("x").is_err());
        assert_eq!(s.cardinality("x"), None);
        let d = Dataset::new(vec![rec![1i64], rec![2i64]]);
        s.write("x", &d).unwrap();
        assert_eq!(s.read("x").unwrap(), d);
        assert_eq!(s.cardinality("x"), Some(2));
    }

    #[test]
    fn failure_injector_counts_down() {
        let inj = FailureInjector::fail_next("spark", 2);
        assert!(inj.should_fail("spark"));
        assert!(inj.should_fail("spark"));
        assert!(!inj.should_fail("spark"));
        assert!(!inj.should_fail("java"));
        inj.add("java", 1);
        assert!(inj.should_fail("java"));
        assert!(!inj.should_fail("java"));
    }

    #[test]
    fn atom_keyed_injection_is_schedule_independent() {
        let inj = FailureInjector::none();
        inj.fail_atom(3, 2);
        // Pure function of (atom, attempt): call order is irrelevant.
        assert_eq!(inj.inject("java", 3, 2), Some(InjectedKind::Transient));
        assert_eq!(inj.inject("spark", 3, 1), Some(InjectedKind::Transient));
        assert_eq!(inj.inject("java", 3, 3), None, "rule covers 2 attempts");
        assert_eq!(inj.inject("java", 4, 1), None, "other atoms untouched");
        assert_eq!(inj.inject("java", 3, 1), Some(InjectedKind::Transient));
    }

    #[test]
    fn permanent_injection_surfaces_as_invalid_plan() {
        let inj = FailureInjector::none();
        inj.fail_atom_with(0, usize::MAX, InjectedKind::Permanent);
        let kind = inj.inject("java", 0, 1).unwrap();
        assert_eq!(kind, InjectedKind::Permanent);
        let err = FailureInjector::error_for(kind, "java", 0);
        assert!(matches!(err, RheemError::InvalidPlan(_)), "{err}");
        assert!(!err.is_retryable());
        let err = FailureInjector::error_for(InjectedKind::Transient, "java", 7);
        assert!(err.is_retryable());
        assert_eq!(err.platform(), Some("java"));
        assert!(err.to_string().contains("atom 7"));
    }

    #[test]
    fn downed_platform_fails_every_attempt_until_restored() {
        let inj = FailureInjector::platform_down("spark");
        for attempt in 1..=5 {
            assert_eq!(
                inj.inject("spark", attempt, attempt),
                Some(InjectedKind::Transient)
            );
        }
        assert_eq!(inj.inject("java", 0, 1), None);
        inj.restore("spark");
        assert_eq!(inj.inject("spark", 0, 1), None);
    }

    #[test]
    fn probabilistic_injection_is_seeded_and_deterministic() {
        let inj = FailureInjector::none();
        inj.probabilistic("spark", 0.5, 42);
        let draw: Vec<bool> = (0..64)
            .map(|atom| inj.inject("spark", atom, 1).is_some())
            .collect();
        let replay: Vec<bool> = (0..64)
            .map(|atom| inj.inject("spark", atom, 1).is_some())
            .collect();
        assert_eq!(draw, replay, "same seed, same outcomes");
        let hits = draw.iter().filter(|b| **b).count();
        assert!((8..=56).contains(&hits), "p=0.5 should hit roughly half");
        let other = FailureInjector::none();
        other.probabilistic("spark", 0.5, 43);
        let reseeded: Vec<bool> = (0..64)
            .map(|atom| other.inject("spark", atom, 1).is_some())
            .collect();
        assert_ne!(draw, reseeded, "different seed, different outcomes");
        assert_eq!(inj.inject("java", 0, 1), None, "chaos is per-platform");
        // p = 0 never fires, p = 1 always fires.
        inj.probabilistic("java", 0.0, 1);
        assert_eq!(inj.inject("java", 0, 1), None);
        inj.probabilistic("java", 1.0, 1);
        assert!(inj.inject("java", 0, 1).is_some());
    }

    #[test]
    fn context_storage_resolution() {
        let ctx = ExecutionContext::new();
        assert!(ctx.storage().is_err());
        let ctx = ctx.with_storage(Arc::new(MemoryStorageService::new()));
        assert!(ctx.storage().is_ok());
    }
}
