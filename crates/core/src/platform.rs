//! The platform layer contract.
//!
//! "At this layer, execution operators define how a task is executed on the
//! underlying processing platform" (§3.1). A [`Platform`] is an engine that
//! can run task atoms; its execution operators are the engine's internal
//! implementations of the physical operators it [`Platform::supports`].
//! Platforms also surrender a [`PlatformCostModel`] so the multi-platform
//! optimizer can price plans, and declare a [`ProcessingProfile`] — the
//! paper's "data processing profile" (§8 challenge 2).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::cost::PlatformCostModel;
use crate::data::Dataset;
use crate::error::{Result, RheemError};
use crate::physical::PhysicalOp;
use crate::plan::{NodeId, PhysicalPlan, TaskAtom};

/// The type of data processing a platform supports (§8 challenge 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProcessingProfile {
    /// Single-process, in-memory execution (the paper's "plain Java").
    SingleProcess,
    /// Parallel, partitioned, in-memory batch execution (Spark-like).
    ParallelBatch,
    /// Batch execution with disk-materialized phase boundaries (Hadoop-like).
    DiskBatch,
    /// Declarative relational execution over managed tables (DBMS-like).
    Relational,
}

/// Boundary inputs of an atom: dataset per `(consumer node, input slot)`.
pub type AtomInputs = HashMap<(NodeId, usize), Dataset>;

/// What a platform returns after executing an atom.
#[derive(Clone, Debug, Default)]
pub struct AtomResult {
    /// Output datasets for the atom's boundary-output nodes.
    pub outputs: HashMap<NodeId, Dataset>,
    /// Total records produced by operators inside the atom.
    pub records_processed: u64,
    /// Deterministic simulated overhead the platform charged (job startup,
    /// stage scheduling, disk phases). Used by tests and reported in stats;
    /// real wall-clock is measured by the executor separately.
    pub simulated_overhead_ms: f64,
    /// Simulated elapsed time of the atom in milliseconds: charged
    /// overheads plus the *critical path* of the work — for partitioned
    /// platforms, the per-stage maximum across partitions, as if every
    /// partition had its own core. This is what makes the paper's
    /// parallel-vs-single-process comparisons reproducible on any host,
    /// including single-core CI machines (see DESIGN.md).
    pub simulated_elapsed_ms: f64,
    /// Per-operator-kernel observations (runtime and true output
    /// cardinality) for the atom's top-level nodes. Feeds kernel trace
    /// spans and the cost-calibration loop; platforms that cannot
    /// attribute work per node may leave this empty.
    pub node_observations: Vec<crate::observe::NodeObservation>,
}

/// A data processing platform (execution engine).
pub trait Platform: Send + Sync {
    /// Unique platform name (used in plans, mappings, and movement costs).
    fn name(&self) -> &str;

    /// The platform's processing profile.
    fn profile(&self) -> ProcessingProfile;

    /// Whether this platform has an execution operator for `op`.
    fn supports(&self, op: &PhysicalOp) -> bool;

    /// The platform's cost model plugin.
    fn cost_model(&self) -> Arc<dyn PlatformCostModel>;

    /// Execute one task atom: run `atom.nodes` (a topologically ordered
    /// fragment of `plan`) given boundary `inputs`, returning datasets for
    /// the atom's output nodes.
    fn execute_atom(
        &self,
        plan: &PhysicalPlan,
        atom: &TaskAtom,
        inputs: &AtomInputs,
        ctx: &ExecutionContext,
    ) -> Result<AtomResult>;
}

/// Registry of available platforms, in registration order.
#[derive(Clone, Default)]
pub struct PlatformRegistry {
    platforms: Vec<Arc<dyn Platform>>,
}

impl PlatformRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        PlatformRegistry::default()
    }

    /// Register a platform. Re-registering a name replaces the old entry.
    pub fn register(&mut self, platform: Arc<dyn Platform>) {
        self.platforms.retain(|p| p.name() != platform.name());
        self.platforms.push(platform);
    }

    /// Look up a platform by name.
    pub fn get(&self, name: &str) -> Result<Arc<dyn Platform>> {
        self.platforms
            .iter()
            .find(|p| p.name() == name)
            .cloned()
            .ok_or_else(|| RheemError::UnknownPlatform(name.to_string()))
    }

    /// All registered platforms, in registration order.
    pub fn all(&self) -> &[Arc<dyn Platform>] {
        &self.platforms
    }

    /// Names of all registered platforms.
    pub fn names(&self) -> Vec<&str> {
        self.platforms.iter().map(|p| p.name()).collect()
    }

    /// True iff no platform is registered.
    pub fn is_empty(&self) -> bool {
        self.platforms.is_empty()
    }
}

/// Abstraction over the storage layer, implemented by `rheem-storage`.
///
/// Kept as a trait in the core so the processing side depends only on the
/// *abstraction* — the same inversion the paper applies between processing
/// platforms and storage platforms (§6).
pub trait StorageService: Send + Sync {
    /// Read a dataset by id.
    fn read(&self, dataset_id: &str) -> Result<Dataset>;

    /// Write (or overwrite) a dataset by id.
    fn write(&self, dataset_id: &str, data: &Dataset) -> Result<()>;

    /// Cardinality of a stored dataset, if known without reading it.
    fn cardinality(&self, dataset_id: &str) -> Option<u64>;
}

/// An in-memory [`StorageService`] for tests and storage-less deployments.
#[derive(Default)]
pub struct MemoryStorageService {
    datasets: Mutex<HashMap<String, Dataset>>,
}

impl MemoryStorageService {
    /// An empty in-memory storage service.
    pub fn new() -> Self {
        MemoryStorageService::default()
    }
}

impl StorageService for MemoryStorageService {
    fn read(&self, dataset_id: &str) -> Result<Dataset> {
        self.datasets
            .lock()
            .get(dataset_id)
            .cloned()
            .ok_or_else(|| RheemError::DatasetNotFound(dataset_id.to_string()))
    }

    fn write(&self, dataset_id: &str, data: &Dataset) -> Result<()> {
        self.datasets
            .lock()
            .insert(dataset_id.to_string(), data.clone());
        Ok(())
    }

    fn cardinality(&self, dataset_id: &str) -> Option<u64> {
        self.datasets.lock().get(dataset_id).map(|d| d.len() as u64)
    }
}

/// Deterministic failure injection for exercising the executor's fault
/// tolerance (§4.2: the executor must "cope with failures").
#[derive(Debug, Default)]
pub struct FailureInjector {
    /// Remaining failures per platform name.
    remaining: Mutex<HashMap<String, usize>>,
}

impl FailureInjector {
    /// No injected failures.
    pub fn none() -> Self {
        FailureInjector::default()
    }

    /// Fail the next `count` atom executions on `platform`.
    pub fn fail_next(platform: impl Into<String>, count: usize) -> Self {
        let inj = FailureInjector::default();
        inj.remaining.lock().insert(platform.into(), count);
        inj
    }

    /// Add failures for a platform to an existing injector.
    pub fn add(&self, platform: impl Into<String>, count: usize) {
        *self.remaining.lock().entry(platform.into()).or_insert(0) += count;
    }

    /// Consume one failure for `platform` if any is pending.
    pub fn should_fail(&self, platform: &str) -> bool {
        let mut map = self.remaining.lock();
        match map.get_mut(platform) {
            Some(n) if *n > 0 => {
                *n -= 1;
                true
            }
            _ => false,
        }
    }
}

/// Ambient services available to platforms while executing atoms.
#[derive(Clone, Default)]
pub struct ExecutionContext {
    /// The storage layer, if deployed.
    pub storage: Option<Arc<dyn StorageService>>,
    /// Failure injection used by the executor (None in production).
    pub failure_injector: Option<Arc<FailureInjector>>,
}

impl ExecutionContext {
    /// A context with no storage layer and no failure injection.
    pub fn new() -> Self {
        ExecutionContext::default()
    }

    /// Attach a storage service.
    pub fn with_storage(mut self, storage: Arc<dyn StorageService>) -> Self {
        self.storage = Some(storage);
        self
    }

    /// Resolve the storage service or error.
    pub fn storage(&self) -> Result<&Arc<dyn StorageService>> {
        self.storage
            .as_ref()
            .ok_or_else(|| RheemError::Storage("no storage service configured".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rec;

    #[test]
    fn memory_storage_round_trip() {
        let s = MemoryStorageService::new();
        assert!(s.read("x").is_err());
        assert_eq!(s.cardinality("x"), None);
        let d = Dataset::new(vec![rec![1i64], rec![2i64]]);
        s.write("x", &d).unwrap();
        assert_eq!(s.read("x").unwrap(), d);
        assert_eq!(s.cardinality("x"), Some(2));
    }

    #[test]
    fn failure_injector_counts_down() {
        let inj = FailureInjector::fail_next("spark", 2);
        assert!(inj.should_fail("spark"));
        assert!(inj.should_fail("spark"));
        assert!(!inj.should_fail("spark"));
        assert!(!inj.should_fail("java"));
        inj.add("java", 1);
        assert!(inj.should_fail("java"));
        assert!(!inj.should_fail("java"));
    }

    #[test]
    fn context_storage_resolution() {
        let ctx = ExecutionContext::new();
        assert!(ctx.storage().is_err());
        let ctx = ctx.with_storage(Arc::new(MemoryStorageService::new()));
        assert!(ctx.storage().is_ok());
    }
}
