//! Fault tolerance: retry backoff, per-platform circuit breakers, and the
//! policy knobs behind the executor's failover re-planning (§4.2 duty iii,
//! `DESIGN.md` §9).
//!
//! Three cooperating pieces:
//!
//! - [`BackoffPolicy`] — deterministic seeded exponential backoff with
//!   jitter between retry attempts. Delays are a pure function of
//!   `(seed, atom id, attempt)`, so they are identical across schedule
//!   modes and replayable run-to-run; a pluggable [`Sleeper`] lets tests
//!   substitute a virtual clock and stay fast.
//! - [`PlatformHealth`] — a per-platform circuit breaker. Consecutive
//!   failures past [`BreakerPolicy::failure_threshold`] *open* the
//!   breaker; while open, atoms targeting the platform fail immediately
//!   with [`RheemError::PlatformUnavailable`] (no retry budget burned)
//!   and become failover candidates. After
//!   [`BreakerPolicy::cooldown`] the breaker *half-opens*: one probe
//!   attempt is admitted, and its outcome closes or re-opens the breaker.
//! - [`FaultPolicy`] — the bundle a [`crate::RheemContext`] installs via
//!   `with_fault_policy`: backoff, breaker, and the failover re-planning
//!   budget.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::error::{CancelReason, Result, RheemError};
use crate::observe::MetricsRegistry;

/// SplitMix64: a tiny, high-quality 64-bit mixer. Used wherever the fault
/// machinery needs a deterministic pseudo-random value keyed on structural
/// identifiers (atom id, attempt number) rather than on call order — the
/// property that keeps injected failures and jittered delays identical
/// between sequential and parallel schedules.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// FNV-1a over a string: stable platform-name seed component.
pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A shared, cooperative cancellation flag threaded from the server edge
/// down to the morsel loop (see `DESIGN.md` §14).
///
/// Cloning shares the flag: the server keeps one clone per in-flight job,
/// the executor checks another at its checkpoints (wave boundaries, retry
/// loop, morsel pulls). The first [`cancel`](CancelToken::cancel) wins —
/// later calls keep the original reason, so the error the client sees
/// names whoever abandoned the job first. Cancellation also wakes any
/// [`wait_timeout`](CancelToken::wait_timeout) in progress, which is what
/// makes backoff naps interruptible.
#[derive(Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Default)]
struct CancelInner {
    /// 0 = live; otherwise `CancelReason` discriminant + 1.
    state: AtomicU8,
    lock: Mutex<()>,
    wake: Condvar,
}

fn reason_code(reason: CancelReason) -> u8 {
    match reason {
        CancelReason::ClientDisconnect => 1,
        CancelReason::DeadlineExceeded => 2,
        CancelReason::Shutdown => 3,
        CancelReason::Explicit => 4,
    }
}

fn code_reason(code: u8) -> Option<CancelReason> {
    match code {
        1 => Some(CancelReason::ClientDisconnect),
        2 => Some(CancelReason::DeadlineExceeded),
        3 => Some(CancelReason::Shutdown),
        4 => Some(CancelReason::Explicit),
        _ => None,
    }
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Cancel with `reason`, waking every pending
    /// [`CancelToken::wait_timeout`]. Returns `true` when this call was
    /// the first — later calls are no-ops that keep the original reason.
    pub fn cancel(&self, reason: CancelReason) -> bool {
        let first = self
            .inner
            .state
            .compare_exchange(0, reason_code(reason), Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if first {
            let _guard = self.inner.lock.lock();
            self.inner.wake.notify_all();
        }
        first
    }

    /// Whether the token has been cancelled. The fast path for morsel
    /// loops: one relaxed-ish atomic load, no lock.
    pub fn is_cancelled(&self) -> bool {
        self.inner.state.load(Ordering::Acquire) != 0
    }

    /// The first cancellation reason, if cancelled.
    pub fn reason(&self) -> Option<CancelReason> {
        code_reason(self.inner.state.load(Ordering::Acquire))
    }

    /// The checkpoint primitive: `Ok(())` while live,
    /// [`RheemError::Cancelled`] once cancelled.
    pub fn check(&self) -> Result<()> {
        match self.reason() {
            None => Ok(()),
            Some(reason) => Err(RheemError::Cancelled { reason }),
        }
    }

    /// Block for up to `d` or until cancelled, whichever comes first.
    /// Returns the cancellation reason if the wait ended early (or the
    /// token was already cancelled).
    pub fn wait_timeout(&self, d: Duration) -> Option<CancelReason> {
        if let Some(reason) = self.reason() {
            return Some(reason);
        }
        // A duration too large for the clock is an unbounded wait.
        let deadline = Instant::now().checked_add(d);
        let mut guard = self.inner.lock.lock();
        loop {
            if let Some(reason) = self.reason() {
                return Some(reason);
            }
            match deadline {
                Some(until) => {
                    if self.inner.wake.wait_until(&mut guard, until).timed_out() {
                        return self.reason();
                    }
                }
                None => self.inner.wake.wait(&mut guard),
            }
        }
    }
}

/// Something that can pause the current thread. The executor sleeps
/// through retry backoff via this trait so tests can install a virtual
/// clock ([`VirtualSleeper`]) and observe the *intended* delays without
/// paying for them in wall time.
pub trait Sleeper: Send + Sync {
    /// Pause for (at least) `d`.
    fn sleep(&self, d: Duration);

    /// Pause for up to `d`, returning early when `cancel` fires. The
    /// default is a conservative fallback for sleepers that cannot wait
    /// on the token: skip the nap entirely if already cancelled, else
    /// sleep uninterruptibly. [`ThreadSleeper`] overrides this with a
    /// condvar wait that cancellation wakes mid-nap.
    fn sleep_cancellable(&self, d: Duration, cancel: &CancelToken) {
        if !cancel.is_cancelled() {
            self.sleep(d);
        }
    }
}

/// The production sleeper: `std::thread::sleep`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadSleeper;

impl Sleeper for ThreadSleeper {
    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }

    fn sleep_cancellable(&self, d: Duration, cancel: &CancelToken) {
        if !d.is_zero() {
            cancel.wait_timeout(d);
        }
    }
}

/// A recording no-op sleeper: never blocks, remembers every requested
/// delay. Backoff tests assert on [`VirtualSleeper::naps`] instead of
/// wall time, keeping the suite fast and replayable.
#[derive(Debug, Default)]
pub struct VirtualSleeper {
    naps: Mutex<Vec<Duration>>,
}

impl VirtualSleeper {
    /// A fresh virtual sleeper with no recorded naps.
    pub fn new() -> Self {
        VirtualSleeper::default()
    }

    /// Every delay requested so far, in request order.
    pub fn naps(&self) -> Vec<Duration> {
        self.naps.lock().clone()
    }

    /// Sum of all requested delays (the virtual clock's elapsed time).
    pub fn total(&self) -> Duration {
        self.naps.lock().iter().sum()
    }
}

impl Sleeper for VirtualSleeper {
    fn sleep(&self, d: Duration) {
        self.naps.lock().push(d);
    }
}

/// Deterministic seeded exponential backoff with jitter.
///
/// The delay before retry attempt `k` (1-based: the wait between the
/// `k`-th failure and the `k+1`-th attempt) is
///
/// ```text
/// min(max, base · multiplier^(k-1)) · (1 − jitter · u)
/// ```
///
/// where `u ∈ [0, 1)` is drawn deterministically from
/// `(seed, atom id, k)` — never from a shared mutable RNG — so the
/// schedule of delays is identical across schedule modes and reruns.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BackoffPolicy {
    /// Delay before the first retry (attempt 2).
    pub base: Duration,
    /// Growth factor per additional failed attempt (≥ 1.0).
    pub multiplier: f64,
    /// Upper bound on any single delay (pre-jitter).
    pub max: Duration,
    /// Fraction of the delay randomized away, in `[0, 1]`: `0.0` is pure
    /// exponential backoff, `0.5` scales each delay into `[50%, 100%]`.
    pub jitter: f64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: Duration::from_millis(5),
            multiplier: 2.0,
            max: Duration::from_millis(200),
            jitter: 0.5,
            seed: 0x5EED,
        }
    }
}

impl BackoffPolicy {
    /// No backoff at all: every delay is zero. The default for a bare
    /// [`crate::Executor`] (retries stay immediate unless a fault policy
    /// is installed).
    pub fn none() -> Self {
        BackoffPolicy {
            base: Duration::ZERO,
            multiplier: 1.0,
            max: Duration::ZERO,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// Re-seed the jitter stream.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The delay to sleep after the `attempt`-th failed attempt of
    /// `atom_id` (1-based). Pure: same inputs, same delay.
    pub fn delay(&self, atom_id: usize, attempt: usize) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        let exp = self
            .multiplier
            .max(1.0)
            .powi(attempt.saturating_sub(1).min(63) as i32);
        let raw = self.base.as_secs_f64() * exp;
        let capped = raw.min(self.max.as_secs_f64().max(self.base.as_secs_f64()));
        let jitter = self.jitter.clamp(0.0, 1.0);
        let u = unit_f64(splitmix64(
            self.seed ^ (atom_id as u64).rotate_left(17) ^ (attempt as u64).rotate_left(41),
        ));
        Duration::from_secs_f64(capped * (1.0 - jitter * u))
    }
}

/// When a platform's circuit breaker opens and how it recovers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BreakerPolicy {
    /// Consecutive failures on a platform that open its breaker.
    pub failure_threshold: usize,
    /// How long an open breaker rejects atoms before admitting a
    /// half-open probe. `Duration::ZERO` half-opens immediately (every
    /// admission is a probe) — handy for deterministic tests.
    pub cooldown: Duration,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            failure_threshold: 3,
            cooldown: Duration::from_millis(100),
        }
    }
}

/// Circuit-breaker state of one platform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BreakerState {
    /// Healthy; tracks the current run of consecutive failures.
    Closed { consecutive_failures: usize },
    /// Rejecting atoms until the cooldown elapses.
    Open { since: Instant },
    /// Cooldown elapsed; a probe is in flight. Success closes the
    /// breaker, any failure re-opens it.
    HalfOpen,
}

/// Per-platform circuit breakers shared across the jobs of a
/// [`crate::RheemContext`].
///
/// Thread-safety: one mutex guards the state table; every transition is a
/// single short critical section, safe to call from wave worker threads.
pub struct PlatformHealth {
    policy: BreakerPolicy,
    states: Mutex<HashMap<String, BreakerState>>,
    metrics: Mutex<Option<Arc<MetricsRegistry>>>,
}

impl PlatformHealth {
    /// Fresh, all-closed breakers under `policy`.
    pub fn new(policy: BreakerPolicy) -> Self {
        PlatformHealth {
            policy,
            states: Mutex::new(HashMap::new()),
            metrics: Mutex::new(None),
        }
    }

    /// The policy breakers operate under.
    pub fn policy(&self) -> BreakerPolicy {
        self.policy
    }

    /// Mirror breaker state into `registry` as
    /// `platform.<name>.breaker_open` gauges (1 open / half-open, 0
    /// closed). Idempotent; gauges update on every subsequent transition.
    pub fn mirror_to(&self, registry: Arc<MetricsRegistry>) {
        *self.metrics.lock() = Some(registry);
    }

    fn set_gauge(&self, platform: &str, open: bool) {
        if let Some(m) = self.metrics.lock().clone() {
            m.gauge(&format!("platform.{platform}.breaker_open"))
                .set(open as u64);
        }
    }

    /// Gate an atom about to run on `platform`.
    ///
    /// Closed / half-open breakers admit the attempt (`Ok`). An open
    /// breaker whose cooldown has elapsed transitions to half-open and
    /// admits the attempt as the probe; otherwise the attempt is rejected
    /// with [`RheemError::PlatformUnavailable`].
    pub fn admit(&self, platform: &str) -> Result<()> {
        let mut states = self.states.lock();
        match states.get(platform).copied() {
            None | Some(BreakerState::Closed { .. }) | Some(BreakerState::HalfOpen) => Ok(()),
            Some(BreakerState::Open { since }) => {
                if since.elapsed() >= self.policy.cooldown {
                    states.insert(platform.to_string(), BreakerState::HalfOpen);
                    Ok(())
                } else {
                    Err(RheemError::PlatformUnavailable {
                        platform: platform.to_string(),
                        message: format!(
                            "circuit breaker open after {} consecutive failures",
                            self.policy.failure_threshold
                        ),
                    })
                }
            }
        }
    }

    /// Record a successful atom execution: closes the breaker and resets
    /// the consecutive-failure run.
    ///
    /// The mirrored gauge is updated *inside* the state critical section
    /// (here and in every other transition): publishing it after dropping
    /// the lock let two jobs finishing concurrently reorder their gauge
    /// writes against the actual state transitions, leaving the gauge
    /// stuck on a stale value. The metrics handle is a separate mutex, so
    /// nesting it is deadlock-free.
    pub fn record_success(&self, platform: &str) {
        let mut states = self.states.lock();
        let was_open = matches!(
            states.get(platform),
            Some(BreakerState::Open { .. } | BreakerState::HalfOpen)
        );
        states.insert(
            platform.to_string(),
            BreakerState::Closed {
                consecutive_failures: 0,
            },
        );
        if was_open {
            self.set_gauge(platform, false);
        }
    }

    /// Record a failed atom attempt. Returns `true` when this failure
    /// opened (or re-opened) the breaker.
    pub fn record_failure(&self, platform: &str) -> bool {
        let mut states = self.states.lock();
        let state = states
            .entry(platform.to_string())
            .or_insert(BreakerState::Closed {
                consecutive_failures: 0,
            });
        let opened = match *state {
            BreakerState::Closed {
                consecutive_failures,
            } => {
                let n = consecutive_failures + 1;
                if n >= self.policy.failure_threshold {
                    *state = BreakerState::Open {
                        since: Instant::now(),
                    };
                    true
                } else {
                    *state = BreakerState::Closed {
                        consecutive_failures: n,
                    };
                    false
                }
            }
            // The half-open probe failed: straight back to open.
            BreakerState::HalfOpen => {
                *state = BreakerState::Open {
                    since: Instant::now(),
                };
                true
            }
            BreakerState::Open { .. } => false,
        };
        // Gauge write stays under the states lock — see `record_success`.
        if opened {
            self.set_gauge(platform, true);
        }
        drop(states);
        opened
    }

    /// Force a platform's breaker open (failover marks the platform it
    /// abandoned as down, so subsequent jobs avoid it until the cooldown
    /// admits a probe).
    pub fn force_open(&self, platform: &str) {
        let mut states = self.states.lock();
        states.insert(
            platform.to_string(),
            BreakerState::Open {
                since: Instant::now(),
            },
        );
        // Gauge write stays under the states lock — see `record_success`.
        self.set_gauge(platform, true);
        drop(states);
    }

    /// Whether `platform`'s breaker is currently open or half-open.
    pub fn is_open(&self, platform: &str) -> bool {
        matches!(
            self.states.lock().get(platform),
            Some(BreakerState::Open { .. } | BreakerState::HalfOpen)
        )
    }

    /// Names of all platforms with open or half-open breakers, sorted —
    /// the exclusion set failover re-planning hands the enumerator.
    pub fn unavailable(&self) -> Vec<String> {
        let states = self.states.lock();
        let mut out: BTreeMap<&String, ()> = BTreeMap::new();
        for (name, state) in states.iter() {
            if matches!(state, BreakerState::Open { .. } | BreakerState::HalfOpen) {
                out.insert(name, ());
            }
        }
        out.into_keys().cloned().collect()
    }
}

/// The fault-tolerance bundle a [`crate::RheemContext`] installs via
/// `with_fault_policy`: how to back off between retries, when to trip a
/// platform's breaker, and how often a job may re-plan around a failure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPolicy {
    /// Backoff between retry attempts of one atom.
    pub backoff: BackoffPolicy,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerPolicy,
    /// Enable failover re-planning: when an atom exhausts its retries (or
    /// its platform's breaker is open), re-enumerate the unexecuted
    /// suffix with the failed platform excluded instead of failing the
    /// job.
    pub failover: bool,
    /// Upper bound on failover re-plans per job.
    pub max_failovers: usize,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            backoff: BackoffPolicy::default(),
            breaker: BreakerPolicy::default(),
            failover: true,
            max_failovers: 2,
        }
    }
}

impl FaultPolicy {
    /// A policy for deterministic tests: zero backoff, zero breaker
    /// cooldown (open breakers immediately admit half-open probes).
    pub fn instant() -> Self {
        FaultPolicy {
            backoff: BackoffPolicy::none(),
            breaker: BreakerPolicy {
                failure_threshold: 3,
                cooldown: Duration::ZERO,
            },
            failover: true,
            max_failovers: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_gauge_stays_consistent_under_concurrent_transitions() {
        // Regression: gauge writes used to happen after dropping the
        // states lock, so two jobs finishing concurrently could publish
        // their gauge updates in the opposite order of the actual state
        // transitions, leaving the mirrored gauge stale forever.
        let health = PlatformHealth::new(BreakerPolicy {
            failure_threshold: 1,
            cooldown: Duration::from_secs(3600),
        });
        let registry = Arc::new(MetricsRegistry::new());
        health.mirror_to(registry.clone());
        for _ in 0..200 {
            std::thread::scope(|s| {
                s.spawn(|| {
                    health.record_failure("p");
                });
                s.spawn(|| {
                    health.record_success("p");
                });
            });
            assert_eq!(
                registry.gauge_value("platform.p.breaker_open"),
                health.is_open("p") as u64,
                "gauge diverged from breaker state"
            );
            health.record_success("p");
        }
        assert_eq!(registry.gauge_value("platform.p.breaker_open"), 0);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = BackoffPolicy::default();
        for atom in 0..4usize {
            for attempt in 1..6usize {
                let d = p.delay(atom, attempt);
                assert_eq!(d, p.delay(atom, attempt), "replay must match");
                let ceiling = p
                    .max
                    .as_secs_f64()
                    .min(p.base.as_secs_f64() * p.multiplier.powi(attempt as i32 - 1));
                assert!(d.as_secs_f64() <= ceiling + 1e-9);
                assert!(d.as_secs_f64() >= ceiling * (1.0 - p.jitter) - 1e-9);
            }
        }
        // Different atoms / attempts / seeds draw different jitter.
        assert_ne!(p.delay(0, 3), p.delay(1, 3));
        assert_ne!(p.delay(0, 3), p.with_seed(7).delay(0, 3));
    }

    #[test]
    fn backoff_grows_exponentially_until_the_cap() {
        let p = BackoffPolicy {
            jitter: 0.0,
            ..BackoffPolicy::default()
        };
        assert_eq!(p.delay(0, 1), Duration::from_millis(5));
        assert_eq!(p.delay(0, 2), Duration::from_millis(10));
        assert_eq!(p.delay(0, 3), Duration::from_millis(20));
        assert_eq!(p.delay(0, 60), p.max, "capped at max");
        assert_eq!(BackoffPolicy::none().delay(9, 9), Duration::ZERO);
    }

    #[test]
    fn virtual_sleeper_records_instead_of_sleeping() {
        let s = VirtualSleeper::new();
        let started = Instant::now();
        s.sleep(Duration::from_secs(3600));
        s.sleep(Duration::from_secs(1800));
        assert!(started.elapsed() < Duration::from_secs(5));
        assert_eq!(s.naps().len(), 2);
        assert_eq!(s.total(), Duration::from_secs(5400));
    }

    #[test]
    fn breaker_opens_at_threshold_and_half_open_probe_recovers() {
        let h = PlatformHealth::new(BreakerPolicy {
            failure_threshold: 3,
            cooldown: Duration::ZERO,
        });
        assert!(h.admit("spark").is_ok());
        assert!(!h.record_failure("spark"));
        assert!(!h.record_failure("spark"));
        assert!(h.record_failure("spark"), "third failure opens");
        assert!(h.is_open("spark"));
        assert_eq!(h.unavailable(), vec!["spark".to_string()]);
        // Zero cooldown: the next admission is the half-open probe.
        assert!(h.admit("spark").is_ok());
        assert!(h.is_open("spark"), "half-open still counts as unavailable");
        h.record_success("spark");
        assert!(!h.is_open("spark"));
        assert!(h.unavailable().is_empty());
    }

    #[test]
    fn open_breaker_rejects_until_cooldown_and_reopens_on_failed_probe() {
        let h = PlatformHealth::new(BreakerPolicy {
            failure_threshold: 1,
            cooldown: Duration::from_secs(3600),
        });
        assert!(h.record_failure("spark"));
        let err = h.admit("spark").unwrap_err();
        assert!(
            matches!(err, RheemError::PlatformUnavailable { .. }),
            "{err}"
        );
        assert_eq!(err.platform(), Some("spark"));

        // With zero cooldown the probe is admitted; a probe failure
        // re-opens immediately.
        let h = PlatformHealth::new(BreakerPolicy {
            failure_threshold: 1,
            cooldown: Duration::ZERO,
        });
        assert!(h.record_failure("spark"));
        assert!(h.admit("spark").is_ok());
        assert!(h.record_failure("spark"), "failed probe re-opens");
        assert!(h.is_open("spark"));
    }

    #[test]
    fn success_resets_the_consecutive_failure_run() {
        let h = PlatformHealth::new(BreakerPolicy {
            failure_threshold: 2,
            cooldown: Duration::ZERO,
        });
        assert!(!h.record_failure("java"));
        h.record_success("java");
        assert!(!h.record_failure("java"), "run restarted after success");
        assert!(h.record_failure("java"));
    }

    #[test]
    fn force_open_and_metric_mirror() {
        let registry = Arc::new(MetricsRegistry::new());
        let h = PlatformHealth::new(BreakerPolicy::default());
        h.mirror_to(registry.clone());
        h.force_open("mapreduce");
        assert!(h.is_open("mapreduce"));
        assert_eq!(registry.gauge_value("platform.mapreduce.breaker_open"), 1);
        h.record_success("mapreduce");
        assert_eq!(registry.gauge_value("platform.mapreduce.breaker_open"), 0);
    }

    #[test]
    fn cancel_token_first_reason_wins_and_checkpoints_error() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
        assert!(t.check().is_ok());
        assert_eq!(t.wait_timeout(Duration::ZERO), None);

        assert!(t.cancel(CancelReason::DeadlineExceeded));
        assert!(!t.cancel(CancelReason::Explicit), "second cancel loses");
        assert_eq!(t.reason(), Some(CancelReason::DeadlineExceeded));
        let err = t.check().unwrap_err();
        assert!(matches!(
            err,
            RheemError::Cancelled {
                reason: CancelReason::DeadlineExceeded
            }
        ));
        assert_eq!(err.classify(), crate::ErrorKind::Cancelled);

        // Clones share the flag.
        let clone = t.clone();
        assert!(clone.is_cancelled());
        assert_eq!(
            clone.wait_timeout(Duration::from_secs(3600)),
            Some(CancelReason::DeadlineExceeded),
            "waiting on a cancelled token returns immediately"
        );
    }

    #[test]
    fn cancellation_wakes_a_sleeping_thread_mid_nap() {
        let t = CancelToken::new();
        let started = Instant::now();
        std::thread::scope(|s| {
            let sleeper = s.spawn(|| t.wait_timeout(Duration::from_secs(3600)));
            std::thread::sleep(Duration::from_millis(20));
            t.cancel(CancelReason::Shutdown);
            assert_eq!(sleeper.join().unwrap(), Some(CancelReason::Shutdown));
        });
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "nap was interrupted, not slept out"
        );

        // The production sleeper goes through the same wakeable wait.
        let t = CancelToken::new();
        std::thread::scope(|s| {
            let sleeper =
                s.spawn(|| ThreadSleeper.sleep_cancellable(Duration::from_secs(3600), &t));
            std::thread::sleep(Duration::from_millis(20));
            t.cancel(CancelReason::Explicit);
            sleeper.join().unwrap();
        });
    }

    #[test]
    fn virtual_sleeper_skips_cancellable_naps_once_cancelled() {
        let s = VirtualSleeper::new();
        let t = CancelToken::new();
        s.sleep_cancellable(Duration::from_secs(7), &t);
        t.cancel(CancelReason::Explicit);
        s.sleep_cancellable(Duration::from_secs(9), &t);
        assert_eq!(
            s.naps(),
            vec![Duration::from_secs(7)],
            "naps after cancellation are not even requested"
        );
    }

    #[test]
    fn splitmix_spreads_and_unit_is_in_range() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        for x in 0..100u64 {
            let u = unit_f64(splitmix64(x));
            assert!((0.0..1.0).contains(&u));
        }
        assert_ne!(fnv1a("java"), fnv1a("spark"));
    }
}
