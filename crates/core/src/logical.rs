//! The logical operator layer (application layer).
//!
//! "A logical operator is an abstract UDF that acts as an
//! application-specific unit of data processing ... a template where users
//! provide the logic of their tasks" (§3.1). Applications (the ML, cleaning,
//! and graph crates) define their own operator types implementing
//! [`LogicalOperator`]; the trait's only obligation is to expose a
//! [`LogicalPayload`] — the UDFs plus enough structure for the application
//! optimizer to translate the operator into physical operators via the
//! declarative [`crate::mapping::MappingRegistry`].

use std::fmt;
use std::sync::Arc;

use crate::data::{Dataset, Record};
use crate::error::{Result, RheemError};
use crate::physical::CustomPhysicalOp;
use crate::udf::{
    FilterUdf, FlatMapUdf, GroupMapUdf, KeyUdf, LoopCondUdf, MapUdf, PairPredicateFn, ReduceUdf,
};

/// The algorithmic-needs description a logical operator exposes.
///
/// Crucially this expresses *what* must happen to the data quanta, never
/// *how* or *where*: the mapping registry picks the algorithm
/// (e.g. hash vs sort grouping) and the multi-platform optimizer picks the
/// platform.
#[derive(Clone)]
pub enum LogicalPayload {
    /// In-memory data source.
    Source {
        /// Display name.
        name: String,
        /// The data.
        data: Dataset,
    },
    /// Storage-layer data source.
    StorageSource {
        /// Dataset id in the storage layer.
        dataset_id: String,
    },
    /// Loop-state placeholder inside loop bodies.
    LoopInput,
    /// One-to-one transformation.
    Map(MapUdf),
    /// One-to-many transformation.
    FlatMap(FlatMapUdf),
    /// Selection.
    Filter(FilterUdf),
    /// Field projection.
    Project {
        /// Indices to keep.
        indices: Vec<usize>,
    },
    /// Keyed grouping with a per-group transformation.
    Group {
        /// Grouping key.
        key: KeyUdf,
        /// Per-group transformation.
        group: GroupMapUdf,
    },
    /// Keyed incremental reduction.
    Reduce {
        /// Grouping key.
        key: KeyUdf,
        /// Associative combiner.
        reduce: ReduceUdf,
    },
    /// Global reduction.
    GlobalReduce {
        /// Associative combiner.
        reduce: ReduceUdf,
    },
    /// Equality join.
    Join {
        /// Left key.
        left_key: KeyUdf,
        /// Right key.
        right_key: KeyUdf,
    },
    /// Theta join.
    ThetaJoin {
        /// Display name.
        name: String,
        /// Join predicate.
        predicate: PairPredicateFn,
        /// Fraction of the cross product kept.
        selectivity: f64,
    },
    /// Cross product.
    CrossProduct,
    /// Bag union.
    Union,
    /// Sorting.
    Sort {
        /// Sort key.
        key: KeyUdf,
        /// Direction.
        descending: bool,
    },
    /// Duplicate elimination.
    Distinct,
    /// Prefix of `n` quanta.
    Limit {
        /// Number of quanta to keep.
        n: usize,
    },
    /// Iteration over a logical sub-plan.
    Loop {
        /// The loop body (must contain exactly one `LoopInput` node).
        body: LogicalPlan,
        /// Continuation test.
        condition: LoopCondUdf,
        /// Iteration cap.
        max_iterations: u64,
    },
    /// Application-defined physical operator used directly.
    Custom(Arc<dyn CustomPhysicalOp>),
    /// Materializing sink.
    Collect,
    /// Counting sink.
    Count,
    /// Storage-writing sink.
    StorageSink {
        /// Dataset id in the storage layer.
        dataset_id: String,
    },
}

impl LogicalPayload {
    /// Number of inputs this payload consumes.
    pub fn arity(&self) -> usize {
        match self {
            LogicalPayload::Source { .. }
            | LogicalPayload::StorageSource { .. }
            | LogicalPayload::LoopInput => 0,
            LogicalPayload::Join { .. }
            | LogicalPayload::ThetaJoin { .. }
            | LogicalPayload::CrossProduct
            | LogicalPayload::Union => 2,
            LogicalPayload::Custom(op) => op.arity(),
            _ => 1,
        }
    }

    /// The kind key used for mapping-registry lookups (e.g. `"kind:Group"`).
    pub fn kind_key(&self) -> &'static str {
        match self {
            LogicalPayload::Source { .. } | LogicalPayload::StorageSource { .. } => "kind:Source",
            LogicalPayload::LoopInput => "kind:LoopInput",
            LogicalPayload::Map(_) => "kind:Map",
            LogicalPayload::FlatMap(_) => "kind:FlatMap",
            LogicalPayload::Filter(_) => "kind:Filter",
            LogicalPayload::Project { .. } => "kind:Project",
            LogicalPayload::Group { .. } => "kind:Group",
            LogicalPayload::Reduce { .. } => "kind:Reduce",
            LogicalPayload::GlobalReduce { .. } => "kind:GlobalReduce",
            LogicalPayload::Join { .. } => "kind:Join",
            LogicalPayload::ThetaJoin { .. } => "kind:ThetaJoin",
            LogicalPayload::CrossProduct => "kind:CrossProduct",
            LogicalPayload::Union => "kind:Union",
            LogicalPayload::Sort { .. } => "kind:Sort",
            LogicalPayload::Distinct => "kind:Distinct",
            LogicalPayload::Limit { .. } => "kind:Limit",
            LogicalPayload::Loop { .. } => "kind:Loop",
            LogicalPayload::Custom(_) => "kind:Custom",
            LogicalPayload::Collect
            | LogicalPayload::Count
            | LogicalPayload::StorageSink { .. } => "kind:Sink",
        }
    }
}

impl fmt::Debug for LogicalPayload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind_key())
    }
}

/// An application-specific logical operator.
///
/// This is the Rust rendition of the paper's abstract `LogicalOperator` with
/// its `applyOp` method: instead of a dynamically invoked method, operators
/// surrender their UDF payload once, and RHEEM embeds it into physical plans.
pub trait LogicalOperator: Send + Sync {
    /// The operator's name; mapping-registry entries key on this.
    fn name(&self) -> &str;

    /// The operator's algorithmic needs.
    fn payload(&self) -> LogicalPayload;
}

/// A plain named logical operator, for applications without custom types.
pub struct SimpleLogicalOperator {
    name: String,
    payload: LogicalPayload,
}

impl SimpleLogicalOperator {
    /// Wrap a payload under a name.
    pub fn new(name: impl Into<String>, payload: LogicalPayload) -> Self {
        SimpleLogicalOperator {
            name: name.into(),
            payload,
        }
    }
}

impl LogicalOperator for SimpleLogicalOperator {
    fn name(&self) -> &str {
        &self.name
    }
    fn payload(&self) -> LogicalPayload {
        self.payload.clone()
    }
}

/// Identifier of a node inside a logical plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LogicalNodeId(pub usize);

/// One logical operator instance with its producers.
#[derive(Clone)]
pub struct LogicalNode {
    /// This node's id.
    pub id: LogicalNodeId,
    /// The operator.
    pub op: Arc<dyn LogicalOperator>,
    /// Producer nodes, one per input slot.
    pub inputs: Vec<LogicalNodeId>,
}

/// A DAG of logical operators.
#[derive(Clone, Default)]
pub struct LogicalPlan {
    nodes: Vec<LogicalNode>,
}

impl LogicalPlan {
    /// All nodes in topological (construction) order.
    pub fn nodes(&self) -> &[LogicalNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the plan has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node by id.
    pub fn node(&self, id: LogicalNodeId) -> &LogicalNode {
        &self.nodes[id.0]
    }

    /// Structural validation (arity + edge direction).
    pub fn validate(&self) -> Result<()> {
        if self.nodes.is_empty() {
            return Err(RheemError::InvalidPlan("logical plan has no nodes".into()));
        }
        for n in &self.nodes {
            let arity = n.op.payload().arity();
            if n.inputs.len() != arity {
                return Err(RheemError::InvalidPlan(format!(
                    "logical node {} ({}) has {} inputs but arity {}",
                    n.id.0,
                    n.op.name(),
                    n.inputs.len(),
                    arity
                )));
            }
            for &i in &n.inputs {
                if i.0 >= n.id.0 {
                    return Err(RheemError::InvalidPlan(format!(
                        "logical node {} consumes non-earlier node {}",
                        n.id.0, i.0
                    )));
                }
            }
        }
        Ok(())
    }

    /// Textual rendering for debugging.
    pub fn explain(&self) -> String {
        let mut s = String::new();
        for n in &self.nodes {
            let inputs: Vec<String> = n.inputs.iter().map(|i| format!("l{}", i.0)).collect();
            s.push_str(&format!(
                "l{}: {} [{}] <- [{}]\n",
                n.id.0,
                n.op.name(),
                n.op.payload().kind_key(),
                inputs.join(", ")
            ));
        }
        s
    }
}

impl fmt::Debug for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LogicalPlan({} nodes)", self.nodes.len())
    }
}

/// Fluent builder for [`LogicalPlan`]s.
#[derive(Default)]
pub struct LogicalPlanBuilder {
    nodes: Vec<LogicalNode>,
}

impl LogicalPlanBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        LogicalPlanBuilder::default()
    }

    /// Append an application-defined operator.
    pub fn add(
        &mut self,
        op: Arc<dyn LogicalOperator>,
        inputs: Vec<LogicalNodeId>,
    ) -> LogicalNodeId {
        let id = LogicalNodeId(self.nodes.len());
        self.nodes.push(LogicalNode { id, op, inputs });
        id
    }

    /// Append a [`SimpleLogicalOperator`].
    pub fn add_simple(
        &mut self,
        name: impl Into<String>,
        payload: LogicalPayload,
        inputs: Vec<LogicalNodeId>,
    ) -> LogicalNodeId {
        self.add(Arc::new(SimpleLogicalOperator::new(name, payload)), inputs)
    }

    /// In-memory source.
    pub fn source(&mut self, name: impl Into<String>, records: Vec<Record>) -> LogicalNodeId {
        let name = name.into();
        self.add_simple(
            name.clone(),
            LogicalPayload::Source {
                name,
                data: Dataset::new(records),
            },
            vec![],
        )
    }

    /// Materializing sink.
    pub fn collect(&mut self, input: LogicalNodeId) -> LogicalNodeId {
        self.add_simple("collect", LogicalPayload::Collect, vec![input])
    }

    /// Finish and validate.
    pub fn build(self) -> Result<LogicalPlan> {
        let plan = LogicalPlan { nodes: self.nodes };
        plan.validate()?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rec;

    struct Initialize;
    impl LogicalOperator for Initialize {
        fn name(&self) -> &str {
            "Initialize"
        }
        fn payload(&self) -> LogicalPayload {
            LogicalPayload::Map(MapUdf::new("init", |r| r.clone()))
        }
    }

    #[test]
    fn custom_operator_types_plug_in() {
        let mut b = LogicalPlanBuilder::new();
        let src = b.source("pts", vec![rec![1.0f64]]);
        let init = b.add(Arc::new(Initialize), vec![src]);
        b.collect(init);
        let plan = b.build().unwrap();
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.node(LogicalNodeId(1)).op.name(), "Initialize");
        assert_eq!(
            plan.node(LogicalNodeId(1)).op.payload().kind_key(),
            "kind:Map"
        );
    }

    #[test]
    fn payload_arity() {
        assert_eq!(LogicalPayload::CrossProduct.arity(), 2);
        assert_eq!(LogicalPayload::Distinct.arity(), 1);
        assert_eq!(LogicalPayload::LoopInput.arity(), 0);
        assert_eq!(LogicalPayload::Collect.arity(), 1);
    }

    #[test]
    fn validation_catches_bad_arity() {
        let mut b = LogicalPlanBuilder::new();
        let src = b.source("s", vec![rec![1i64]]);
        // Union needs two inputs; give it one.
        b.add_simple("u", LogicalPayload::Union, vec![src]);
        assert!(b.build().is_err());
    }

    #[test]
    fn explain_lists_kinds() {
        let mut b = LogicalPlanBuilder::new();
        let src = b.source("s", vec![rec![1i64]]);
        b.collect(src);
        let text = b.build().unwrap().explain();
        assert!(text.contains("kind:Source"));
        assert!(text.contains("kind:Sink"));
    }
}
