//! A reference single-threaded plan-fragment interpreter.
//!
//! This is the core of the "plain Java program" execution style from the
//! paper's Figure 2 experiment: no partitioning, no scheduling, no fixed
//! overheads — just straight-line evaluation of operators over full batches.
//! The `JavaPlatform` delegates to it wholesale; partitioned platforms reuse
//! it for loop bodies and non-partitionable custom operators.

use std::collections::HashMap;

use crate::data::Dataset;
use crate::error::{Result, RheemError};
use crate::kernels;
use crate::kernels::parallel::{self, KernelParallelism};
use crate::physical::PhysicalOp;
use crate::plan::{NodeId, PhysicalPlan};
use crate::platform::{AtomInputs, ExecutionContext};
use crate::rec;

/// The result of interpreting a plan fragment.
#[derive(Clone, Debug, Default)]
pub struct FragmentRun {
    /// Output dataset of every executed node.
    pub outputs: HashMap<NodeId, Dataset>,
    /// Total records produced across all executed operators.
    pub records_processed: u64,
    /// Per-node kernel observations (timing + true output cardinality),
    /// for the fragment's top-level nodes only: loop-body iterations fold
    /// into their `Loop` node's observation, because body node ids belong
    /// to a different plan and would collide with the outer plan's ids.
    pub observations: Vec<crate::observe::NodeObservation>,
}

/// Interpret the given `nodes` of `plan` in order.
///
/// Each node's inputs are resolved first from previously executed nodes in
/// this fragment, then from `boundary` (datasets crossing the atom
/// boundary). `loop_state`, when present, binds any [`PhysicalOp::LoopInput`]
/// node.
pub fn run_fragment(
    plan: &PhysicalPlan,
    nodes: &[NodeId],
    boundary: &AtomInputs,
    ctx: &ExecutionContext,
    loop_state: Option<&Dataset>,
) -> Result<FragmentRun> {
    let mut run = FragmentRun::default();
    for &id in nodes {
        // Cancellation checkpoint: between operators, so a cancelled job
        // stops within one node + one morsel of the cancel point.
        ctx.check_cancelled()?;
        let node = plan.node(id);
        let mut inputs: Vec<Dataset> = Vec::with_capacity(node.inputs.len());
        for (slot, producer) in node.inputs.iter().enumerate() {
            let ds = if let Some(d) = run.outputs.get(producer) {
                d.clone()
            } else if let Some(d) = boundary.get(&(id, slot)) {
                d.clone()
            } else {
                return Err(RheemError::InvalidPlan(format!(
                    "node {id} input slot {slot} (producer {producer}) is not available"
                )));
            };
            inputs.push(ds);
        }
        // Two clock reads per operator, outside any kernel hot loop.
        let kernel_started = std::time::Instant::now();
        let out = execute_op(&node.op, &inputs, ctx, loop_state)?;
        if loop_state.is_none() {
            run.observations.push(crate::observe::NodeObservation {
                node: id,
                op: node.op.name(),
                records_out: out.len() as u64,
                elapsed_ms: kernel_started.elapsed().as_secs_f64() * 1e3,
                morsels: op_morsels(&node.op, &inputs, &ctx.kernel_parallelism),
            });
        }
        run.records_processed += out.len() as u64;
        run.outputs.insert(id, out);
    }
    Ok(run)
}

/// Parallel work units the interpreter's kernel dispatch uses for `op`
/// under knob `p`: morsel count for embarrassingly-parallel kernels,
/// chunk count for two-phase kernels, 1 for everything sequential.
pub fn op_morsels(op: &PhysicalOp, inputs: &[Dataset], p: &KernelParallelism) -> u64 {
    let len0 = inputs.first().map(|d| d.len()).unwrap_or(0);
    match op {
        PhysicalOp::Map(_) | PhysicalOp::FlatMap(_) | PhysicalOp::Filter(_) => p.morsels(len0),
        PhysicalOp::Project { .. } | PhysicalOp::ChunkPipeline { .. } => p.morsels(len0),
        PhysicalOp::SortGroupBy { .. }
        | PhysicalOp::HashGroupBy { .. }
        | PhysicalOp::ReduceByKey { .. }
        | PhysicalOp::Sort { .. } => p.chunks(len0),
        PhysicalOp::HashJoin { .. } | PhysicalOp::SortMergeJoin { .. } => {
            let len1 = inputs.get(1).map(|d| d.len()).unwrap_or(0);
            p.chunks(len0.max(len1))
        }
        _ => 1,
    }
}

/// Execute a single physical operator on gathered inputs.
///
/// Kernels with a morsel-parallel twin dispatch through
/// [`crate::kernels::parallel`] under the context's
/// [`KernelParallelism`] knob; outputs are byte-identical to the
/// sequential kernels at any thread count.
pub fn execute_op(
    op: &PhysicalOp,
    inputs: &[Dataset],
    ctx: &ExecutionContext,
    loop_state: Option<&Dataset>,
) -> Result<Dataset> {
    let in0 = || inputs[0].records();
    let par = &ctx.kernel_parallelism;
    let out = match op {
        PhysicalOp::CollectionSource { data, .. } => data.clone(),
        PhysicalOp::StorageSource { dataset_id } => ctx.storage()?.read(dataset_id)?,
        PhysicalOp::LoopInput => loop_state
            .cloned()
            .ok_or_else(|| RheemError::InvalidPlan("LoopInput outside a loop body".into()))?,
        PhysicalOp::Map(u) => Dataset::new(parallel::map(in0(), u, par)),
        PhysicalOp::FlatMap(u) => Dataset::new(parallel::flat_map(in0(), u, par)),
        PhysicalOp::Filter(u) => Dataset::new(parallel::filter(in0(), u, par)),
        PhysicalOp::Project { indices } => Dataset::new(parallel::project(in0(), indices, par)?),
        PhysicalOp::ChunkPipeline { stages } => {
            Dataset::new(parallel::run_pipeline(in0(), stages, par)?)
        }
        PhysicalOp::SortGroupBy { key, group } => {
            let groups = parallel::sort_group(in0(), key, par);
            Dataset::new(kernels::apply_group_map(&groups, group))
        }
        PhysicalOp::HashGroupBy { key, group } => {
            let groups = parallel::hash_group(in0(), key, par);
            Dataset::new(kernels::apply_group_map(&groups, group))
        }
        PhysicalOp::ReduceByKey { key, reduce } => {
            Dataset::new(parallel::reduce_by_key(in0(), key, reduce, par))
        }
        PhysicalOp::GlobalReduce { reduce } => Dataset::new(kernels::global_reduce(in0(), reduce)),
        PhysicalOp::Sort { key, descending } => {
            Dataset::new(parallel::sort(in0(), key, *descending, par))
        }
        PhysicalOp::Distinct => Dataset::new(kernels::distinct(in0())),
        PhysicalOp::Sample { fraction, seed } => {
            Dataset::new(kernels::sample(in0(), *fraction, *seed, 0)?)
        }
        PhysicalOp::Limit { n } => Dataset::new(kernels::limit(in0(), *n)),
        PhysicalOp::ZipWithId => Dataset::new(kernels::zip_with_id(in0(), 0)?),
        PhysicalOp::HashJoin {
            left_key,
            right_key,
        } => Dataset::new(parallel::hash_join(
            inputs[0].records(),
            inputs[1].records(),
            left_key,
            right_key,
            par,
        )),
        PhysicalOp::SortMergeJoin {
            left_key,
            right_key,
        } => Dataset::new(parallel::sort_merge_join(
            inputs[0].records(),
            inputs[1].records(),
            left_key,
            right_key,
            par,
        )),
        PhysicalOp::NestedLoopJoin { predicate, .. } => Dataset::new(kernels::nested_loop_join(
            inputs[0].records(),
            inputs[1].records(),
            predicate,
        )),
        PhysicalOp::CrossProduct => Dataset::new(kernels::cross_product(
            inputs[0].records(),
            inputs[1].records(),
        )),
        PhysicalOp::Union => Dataset::new(kernels::union(inputs[0].records(), inputs[1].records())),
        PhysicalOp::Loop {
            body,
            condition,
            max_iterations,
            ..
        } => run_loop(body, condition, *max_iterations, inputs[0].clone(), ctx)?,
        PhysicalOp::Custom(c) => c.execute(inputs)?,
        PhysicalOp::CollectSink => inputs[0].clone(),
        PhysicalOp::CountSink => Dataset::new(vec![rec![inputs[0].len() as i64]]),
        PhysicalOp::StorageSink { dataset_id } => {
            ctx.storage()?.write(dataset_id, &inputs[0])?;
            inputs[0].clone()
        }
    };
    // A cancel that fires *inside* a morsel-parallel kernel truncates the
    // kernel's output (run_ranges collapses the remaining morsels to
    // empty). The pre-node checkpoint in `run_fragment` only covers nodes
    // that have a successor, so re-check here: a truncated result must
    // never be returned as this operator's (and possibly the job's) output.
    ctx.check_cancelled()?;
    Ok(out)
}

/// Drive a [`PhysicalOp::Loop`]: evaluate the condition before each
/// iteration, run the body on the current state, and use the body's terminal
/// output as the next state.
pub fn run_loop(
    body: &PhysicalPlan,
    condition: &crate::udf::LoopCondUdf,
    max_iterations: u64,
    initial: Dataset,
    ctx: &ExecutionContext,
) -> Result<Dataset> {
    let terminal = *body
        .terminals()
        .first()
        .ok_or_else(|| RheemError::InvalidPlan("loop body has no terminal".into()))?;
    let all_nodes: Vec<NodeId> = body.nodes().iter().map(|n| n.id).collect();
    let mut state = initial;
    let mut iteration = 0u64;
    while iteration < max_iterations && (condition.f)(iteration, state.records()) {
        ctx.check_cancelled()?;
        let run = run_fragment(body, &all_nodes, &HashMap::new(), ctx, Some(&state))?;
        state = run
            .outputs
            .get(&terminal)
            .cloned()
            .ok_or_else(|| RheemError::InvalidPlan("loop body terminal missing".into()))?;
        iteration += 1;
    }
    Ok(state)
}

/// Helper for `CountSink`-style outputs.
pub fn count_record(n: usize) -> Dataset {
    Dataset::new(vec![rec![n as i64]])
}

/// Helper: extract the single integer a `CountSink` produced.
pub fn read_count(d: &Dataset) -> Result<i64> {
    match d.records() {
        [r] => r.int(0),
        other => Err(RheemError::Type {
            expected: "a single count record".into(),
            found: format!("{} records", other.len()),
        }),
    }
}

/// Convenience for tests and docs: execute a whole plan on the reference
/// interpreter and return the outputs of its sink nodes.
pub fn run_plan(plan: &PhysicalPlan, ctx: &ExecutionContext) -> Result<HashMap<NodeId, Dataset>> {
    plan.validate()?;
    let all: Vec<NodeId> = plan.nodes().iter().map(|n| n.id).collect();
    let run = run_fragment(plan, &all, &HashMap::new(), ctx, None)?;
    Ok(plan
        .sinks()
        .into_iter()
        .filter_map(|s| run.outputs.get(&s).map(|d| (s, d.clone())))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Value;
    use crate::plan::PlanBuilder;
    use crate::platform::{MemoryStorageService, StorageService};
    use crate::udf::{FilterUdf, GroupMapUdf, KeyUdf, LoopCondUdf, MapUdf, ReduceUdf};
    use std::sync::Arc;

    fn nums(n: i64) -> Vec<crate::data::Record> {
        (0..n).map(|i| rec![i]).collect()
    }

    #[test]
    fn straight_line_pipeline() {
        let mut b = PlanBuilder::new();
        let src = b.collection("s", nums(10));
        let f = b.filter(src, FilterUdf::new("even", |r| r.int(0).unwrap() % 2 == 0));
        let m = b.map(f, MapUdf::new("sq", |r| rec![r.int(0).unwrap().pow(2)]));
        let sink = b.collect(m);
        let plan = b.build().unwrap();
        let out = run_plan(&plan, &ExecutionContext::new()).unwrap();
        let result = &out[&sink];
        assert_eq!(
            result.records(),
            &[
                rec![0i64],
                rec![4i64],
                rec![16i64],
                rec![36i64],
                rec![64i64]
            ]
        );
    }

    #[test]
    fn group_by_and_reduce_agree() {
        let data = vec![
            rec!["a", 1i64],
            rec!["b", 2i64],
            rec!["a", 3i64],
            rec!["b", 4i64],
        ];
        let mut b = PlanBuilder::new();
        let src = b.collection("s", data.clone());
        let g = b.group_by(
            src,
            KeyUdf::field(0),
            GroupMapUdf::new("sum", |k, members| {
                let total: i64 = members.iter().map(|r| r.int(1).unwrap()).sum();
                vec![crate::data::Record::new(vec![k.clone(), Value::Int(total)])]
            }),
        );
        let gs = b.collect(g);
        let src2 = b.collection("s2", data);
        let red = b.reduce_by_key(
            src2,
            KeyUdf::field(0),
            ReduceUdf::new("sum", |a, x| {
                rec![a.str(0).unwrap(), a.int(1).unwrap() + x.int(1).unwrap()]
            }),
        );
        let rs = b.collect(red);
        let plan = b.build().unwrap();
        let out = run_plan(&plan, &ExecutionContext::new()).unwrap();
        assert_eq!(out[&gs], out[&rs]);
        assert_eq!(out[&gs].records(), &[rec!["a", 4i64], rec!["b", 6i64]]);
    }

    #[test]
    fn loop_accumulates_state() {
        // State: single record [x]; body: x <- x * 2; 5 iterations.
        let mut body = PlanBuilder::new();
        let li = body.loop_input();
        body.map(li, MapUdf::new("x2", |r| rec![r.int(0).unwrap() * 2]));
        let body = body.build_fragment().unwrap();

        let mut b = PlanBuilder::new();
        let src = b.collection("s", vec![rec![1i64]]);
        let l = b.repeat(src, body, LoopCondUdf::fixed_iterations(5), 100);
        let sink = b.collect(l);
        let plan = b.build().unwrap();
        let out = run_plan(&plan, &ExecutionContext::new()).unwrap();
        assert_eq!(out[&sink].records(), &[rec![32i64]]);
    }

    #[test]
    fn loop_respects_max_iterations_cap() {
        let mut body = PlanBuilder::new();
        let li = body.loop_input();
        body.map(li, MapUdf::new("inc", |r| rec![r.int(0).unwrap() + 1]));
        let body = body.build_fragment().unwrap();

        let mut b = PlanBuilder::new();
        let src = b.collection("s", vec![rec![0i64]]);
        // Condition always true, but cap at 3.
        let l = b.repeat(src, body, LoopCondUdf::new("forever", |_, _| true), 3);
        let sink = b.collect(l);
        let plan = b.build().unwrap();
        let out = run_plan(&plan, &ExecutionContext::new()).unwrap();
        assert_eq!(out[&sink].records(), &[rec![3i64]]);
    }

    #[test]
    fn storage_source_and_sink_round_trip() {
        let storage = Arc::new(MemoryStorageService::new());
        storage.write("in", &Dataset::new(nums(4))).unwrap();
        let ctx = ExecutionContext::new().with_storage(storage.clone());

        let mut b = PlanBuilder::new();
        let src = b.storage_source("in");
        let m = b.map(src, MapUdf::new("inc", |r| rec![r.int(0).unwrap() + 1]));
        b.write_storage(m, "out");
        let plan = b.build().unwrap();
        run_plan(&plan, &ctx).unwrap();
        let out = storage.read("out").unwrap();
        assert_eq!(
            out.records(),
            &[rec![1i64], rec![2i64], rec![3i64], rec![4i64]]
        );
    }

    #[test]
    fn count_sink_counts() {
        let mut b = PlanBuilder::new();
        let src = b.collection("s", nums(7));
        let sink = b.count(src);
        let plan = b.build().unwrap();
        let out = run_plan(&plan, &ExecutionContext::new()).unwrap();
        assert_eq!(read_count(&out[&sink]).unwrap(), 7);
    }

    /// A cancel fired *inside* the kernel of a fragment's last node must
    /// surface as `Cancelled`, not as a silently truncated `Ok` — there is
    /// no later node whose pre-check could catch the fired token, and the
    /// morsel loop truncates the kernel output once the token fires.
    #[test]
    fn cancel_mid_kernel_of_the_last_node_surfaces_cancelled() {
        use crate::error::CancelReason;
        use crate::fault::CancelToken;

        let token = CancelToken::new();
        let trip = token.clone();
        let mut b = PlanBuilder::new();
        let src = b.collection("s", nums(64));
        let m = b.map(
            src,
            MapUdf::new("cancel-mid", move |r| {
                if r.int(0).unwrap() == 5 {
                    trip.cancel(CancelReason::Explicit);
                }
                r.clone()
            }),
        );
        b.collect(m);
        let plan = b.build().unwrap();
        let ctx = ExecutionContext::new().with_cancel_token(token.clone());
        // Run only up to the map: the fragment *ends* on the truncating
        // kernel, exactly the shape of an atom whose terminal node is a
        // map/flat_map/filter.
        let result = crate::kernels::parallel::with_cancel_scope(&token, || {
            run_fragment(&plan, &[src, m], &HashMap::new(), &ctx, None)
        });
        assert!(
            matches!(result, Err(RheemError::Cancelled { .. })),
            "truncated fragment must not be returned as success: {result:?}"
        );
    }

    #[test]
    fn missing_input_is_reported() {
        let mut b = PlanBuilder::new();
        let src = b.collection("s", nums(2));
        let m = b.map(src, MapUdf::new("id", |r| r.clone()));
        b.collect(m);
        let plan = b.build().unwrap();
        // Run only the map node, without providing its boundary input.
        let err = run_fragment(&plan, &[m], &HashMap::new(), &ExecutionContext::new(), None);
        assert!(err.is_err());
    }

    #[test]
    fn loop_input_outside_loop_errors() {
        let mut b = PlanBuilder::new();
        let li = b.loop_input();
        b.collect(li);
        let plan = b.build().unwrap();
        assert!(run_plan(&plan, &ExecutionContext::new()).is_err());
    }
}
