//! Cost estimation: cardinalities, platform cost models, movement costs.
//!
//! The paper requires that "rules and cost models \[be\] plugins and not
//! hard-coded as in traditional database optimizers" (§4.2, second aspect)
//! and that the optimizer "consider inter-platform cost models to
//! effectively take into account the cost of moving data and computation
//! across underlying processing platforms" (third aspect). Accordingly:
//!
//! * every platform ships its own [`PlatformCostModel`] implementation,
//!   registered together with the platform;
//! * cross-platform transfer prices live in a [`MovementCostModel`] that the
//!   optimizer consults for every candidate platform switch;
//! * the [`CardinalityEstimator`] feeds both with dataset-size estimates.
//!
//! All costs are in *abstract milliseconds*: platform models are calibrated
//! relative to each other, which is all plan comparison needs.

use std::collections::HashMap;

use crate::error::{Result, RheemError};
use crate::observe::CostCalibration;
use crate::physical::PhysicalOp;
use crate::plan::PhysicalPlan;

/// Estimates output cardinality for every node of a plan.
#[derive(Clone, Debug)]
pub struct CardinalityEstimator {
    /// Known cardinalities of storage-layer datasets, by dataset id.
    pub source_hints: HashMap<String, f64>,
    /// Fallback cardinality for unknown storage sources.
    pub default_source_card: f64,
}

impl Default for CardinalityEstimator {
    fn default() -> Self {
        CardinalityEstimator {
            source_hints: HashMap::new(),
            default_source_card: 1_000.0,
        }
    }
}

impl CardinalityEstimator {
    /// Register the known cardinality of a storage dataset.
    pub fn hint(&mut self, dataset_id: impl Into<String>, card: f64) {
        self.source_hints.insert(dataset_id.into(), card);
    }

    /// Estimated output cardinality per node, indexed by node id.
    ///
    /// Fails with [`RheemError::InvalidPlan`] if a binary operator has
    /// fewer than two wired inputs (a malformed plan must surface as an
    /// error, never as an index panic inside the optimizer).
    pub fn estimate(&self, plan: &PhysicalPlan) -> Result<Vec<f64>> {
        self.estimate_with_loop_input(plan, 0.0)
    }

    /// Like [`CardinalityEstimator::estimate`], binding `LoopInput` nodes to
    /// `loop_card` (used when recursing into loop bodies).
    pub fn estimate_with_loop_input(
        &self,
        plan: &PhysicalPlan,
        loop_card: f64,
    ) -> Result<Vec<f64>> {
        let mut cards = vec![0.0f64; plan.len()];
        for node in plan.nodes() {
            let ins: Vec<f64> = node
                .inputs
                .iter()
                .map(|i| {
                    cards.get(i.0).copied().ok_or_else(|| {
                        RheemError::InvalidPlan(format!(
                            "node {} consumes node {} outside the plan ({} nodes)",
                            node.id,
                            i,
                            plan.len()
                        ))
                    })
                })
                .collect::<Result<_>>()?;
            cards[node.id.0] = self.op_output_card(&node.op, &ins, loop_card)?;
        }
        Ok(cards)
    }

    fn op_output_card(&self, op: &PhysicalOp, ins: &[f64], loop_card: f64) -> Result<f64> {
        let in0 = ins.first().copied().unwrap_or(0.0);
        Ok(match op {
            PhysicalOp::CollectionSource { data, .. } => data.len() as f64,
            PhysicalOp::StorageSource { dataset_id } => self
                .source_hints
                .get(dataset_id)
                .copied()
                .unwrap_or(self.default_source_card),
            PhysicalOp::LoopInput => loop_card,
            PhysicalOp::Map(_) | PhysicalOp::ZipWithId | PhysicalOp::Project { .. } => in0,
            PhysicalOp::ChunkPipeline { stages } => {
                // The fused pipeline's cardinality is the fold of its
                // stages: filters scale by selectivity, maps/projects are
                // one-to-one.
                stages.iter().fold(in0, |card, s| match &s.kind {
                    crate::physical::StageKind::Filter { selectivity, .. } => card * selectivity,
                    _ => card,
                })
            }
            PhysicalOp::FlatMap(u) => in0 * u.fanout,
            PhysicalOp::Filter(u) => in0 * u.selectivity,
            PhysicalOp::Sample { fraction, .. } => in0 * fraction,
            PhysicalOp::Limit { n } => in0.min(*n as f64),
            PhysicalOp::Sort { .. } => in0,
            PhysicalOp::Distinct => in0 * 0.8,
            PhysicalOp::SortGroupBy { key, group } | PhysicalOp::HashGroupBy { key, group } => {
                distinct_keys(key.distinct_keys, in0) * group.per_group_output
            }
            PhysicalOp::ReduceByKey { key, .. } => distinct_keys(key.distinct_keys, in0),
            PhysicalOp::GlobalReduce { .. } => 1.0,
            PhysicalOp::HashJoin {
                left_key,
                right_key,
            }
            | PhysicalOp::SortMergeJoin {
                left_key,
                right_key,
            } => {
                let (l, r) = binary_inputs(op, ins)?;
                let dl = distinct_keys(left_key.distinct_keys, l);
                let dr = distinct_keys(right_key.distinct_keys, r);
                if dl.max(dr) > 0.0 {
                    l * r / dl.max(dr)
                } else {
                    0.0
                }
            }
            PhysicalOp::NestedLoopJoin { selectivity, .. } => {
                let (l, r) = binary_inputs(op, ins)?;
                l * r * selectivity
            }
            PhysicalOp::CrossProduct => {
                let (l, r) = binary_inputs(op, ins)?;
                l * r
            }
            PhysicalOp::Union => {
                let (l, r) = binary_inputs(op, ins)?;
                l + r
            }
            PhysicalOp::Loop { body, .. } => {
                let body_cards = self.estimate_with_loop_input(body, in0)?;
                let terminals = body.terminals();
                terminals.first().map(|t| body_cards[t.0]).unwrap_or(in0)
            }
            PhysicalOp::Custom(c) => c.output_cardinality(ins),
            PhysicalOp::CollectSink | PhysicalOp::StorageSink { .. } => in0,
            PhysicalOp::CountSink => 1.0,
        })
    }
}

/// Both input cardinalities of a binary operator, or `InvalidPlan` if the
/// node is mis-wired (fewer than two inputs).
fn binary_inputs(op: &PhysicalOp, ins: &[f64]) -> Result<(f64, f64)> {
    match ins {
        [l, r, ..] => Ok((*l, *r)),
        _ => Err(RheemError::InvalidPlan(format!(
            "binary operator {} has {} wired input(s), needs 2",
            op.name(),
            ins.len()
        ))),
    }
}

fn distinct_keys(hint: Option<f64>, card: f64) -> f64 {
    hint.unwrap_or_else(|| card.sqrt().max(1.0))
        .min(card.max(1.0))
}

/// Platform-independent work estimate for an operator, in abstract
/// record-touch units. Platform cost models typically scale this by their
/// per-record price and parallelism.
///
/// Total over any `ins`: missing inputs count as cardinality 0 so that
/// infallible [`PlatformCostModel::op_cost`] implementations can call this
/// on partially wired nodes without panicking (plan validity itself is
/// checked by [`CardinalityEstimator::estimate`]).
pub fn op_work_units(op: &PhysicalOp, ins: &[f64], out: f64) -> f64 {
    let in0 = ins.first().copied().unwrap_or(0.0);
    let in1 = ins.get(1).copied().unwrap_or(0.0);
    let nlogn = |n: f64| n * (n.max(2.0)).log2();
    match op {
        PhysicalOp::CollectionSource { .. }
        | PhysicalOp::StorageSource { .. }
        | PhysicalOp::LoopInput => out,
        PhysicalOp::Map(_)
        | PhysicalOp::FlatMap(_)
        | PhysicalOp::Filter(_)
        | PhysicalOp::Project { .. }
        | PhysicalOp::Sample { .. }
        | PhysicalOp::Limit { .. }
        | PhysicalOp::ZipWithId => in0 + out,
        // A fused pipeline is a single pass over the input regardless of
        // how many operators were folded into it — that is the point of
        // fusing (no intermediate materialization between stages).
        PhysicalOp::ChunkPipeline { .. } => in0 + out,
        PhysicalOp::SortGroupBy { .. } => nlogn(in0) + out,
        PhysicalOp::HashGroupBy { .. } | PhysicalOp::ReduceByKey { .. } => in0 + out,
        PhysicalOp::GlobalReduce { .. } => in0,
        PhysicalOp::Sort { .. } => nlogn(in0),
        PhysicalOp::Distinct => in0 + out,
        PhysicalOp::HashJoin { .. } => ins.iter().sum::<f64>() + out,
        PhysicalOp::SortMergeJoin { .. } => nlogn(in0) + nlogn(in1) + out,
        PhysicalOp::NestedLoopJoin { .. } | PhysicalOp::CrossProduct => in0 * in1 + out,
        PhysicalOp::Union => out,
        // Loop work is handled by the optimizer (it recurses into the body);
        // this is only the per-iteration plumbing.
        PhysicalOp::Loop { .. } => in0,
        PhysicalOp::Custom(c) => c.cost_factor() * (ins.iter().sum::<f64>() + out),
        PhysicalOp::CollectSink | PhysicalOp::CountSink | PhysicalOp::StorageSink { .. } => in0,
    }
}

/// A platform's pluggable cost model (abstract milliseconds).
pub trait PlatformCostModel: Send + Sync {
    /// Cost of executing `op` on this platform.
    fn op_cost(&self, op: &PhysicalOp, input_cards: &[f64], output_card: f64) -> f64;

    /// Fixed overhead charged once per task atom scheduled on this platform
    /// (job submission, container spin-up, connection setup, ...).
    fn atom_startup_cost(&self) -> f64;
}

/// A simple linear cost model: `startup + work_units · per_unit / speedup`.
///
/// Good enough for the built-in platforms; applications may implement
/// [`PlatformCostModel`] directly for anything richer.
#[derive(Clone, Debug)]
pub struct LinearCostModel {
    /// Price per work unit in abstract ms.
    pub per_unit: f64,
    /// Effective parallel speedup (1.0 for single-threaded platforms).
    pub speedup: f64,
    /// Fixed per-atom overhead in abstract ms.
    pub startup: f64,
    /// Extra per-unit price for operators that force a shuffle/barrier.
    pub shuffle_surcharge: f64,
    /// Extra speedup applied to the hash-engine kernels only
    /// (`HashGroupBy` / `ReduceByKey` / `HashJoin`): platforms running on
    /// the vectorized hash engine ([`crate::kernels::hash`]) price those
    /// operators below the linear baseline. 1.0 (the default everywhere)
    /// leaves the model linear; see [`LinearCostModel::with_hash_engine`].
    pub hash_engine_speedup: f64,
}

impl LinearCostModel {
    /// A model for a zero-overhead, single-threaded engine.
    pub fn single_threaded(per_unit: f64) -> Self {
        LinearCostModel {
            per_unit,
            speedup: 1.0,
            startup: 0.0,
            shuffle_surcharge: 0.0,
            hash_engine_speedup: 1.0,
        }
    }

    /// Price in a platform's declared intra-atom kernel parallelism (see
    /// [`crate::platform::Platform::kernel_parallelism`]): `threads`
    /// morsel workers raise the effective speedup floor to `threads`,
    /// since the kernels scale near-linearly on embarrassingly-parallel
    /// operators. A declaration of 1 leaves the model unchanged.
    pub fn with_kernel_parallelism(mut self, threads: usize) -> Self {
        self.speedup = self.speedup.max(threads.max(1) as f64);
        self
    }

    /// Price in the vectorized hash engine: the key-based kernels
    /// (`HashGroupBy` / `ReduceByKey` / `HashJoin`) run `speedup`× faster
    /// than the per-unit baseline on platforms backed by
    /// [`crate::kernels::hash`] (measured chunk-vs-row in
    /// `BENCH_kernels.json`). Opt-in so existing explain snapshots and
    /// calibration baselines are untouched; values below 1 clamp to 1.
    pub fn with_hash_engine(mut self, speedup: f64) -> Self {
        self.hash_engine_speedup = speedup.max(1.0);
        self
    }

    /// True when `op` runs on the vectorized hash engine and gets the
    /// [`hash_engine_speedup`](Self::hash_engine_speedup) discount.
    fn hash_engine_op(op: &PhysicalOp) -> bool {
        matches!(
            op,
            PhysicalOp::HashGroupBy { .. }
                | PhysicalOp::ReduceByKey { .. }
                | PhysicalOp::HashJoin { .. }
        )
    }
}

/// Whether an operator requires repartitioning on a partitioned platform.
pub fn requires_shuffle(op: &PhysicalOp) -> bool {
    matches!(
        op,
        PhysicalOp::SortGroupBy { .. }
            | PhysicalOp::HashGroupBy { .. }
            | PhysicalOp::ReduceByKey { .. }
            | PhysicalOp::GlobalReduce { .. }
            | PhysicalOp::Sort { .. }
            | PhysicalOp::Distinct
            | PhysicalOp::HashJoin { .. }
            | PhysicalOp::SortMergeJoin { .. }
            | PhysicalOp::NestedLoopJoin { .. }
            | PhysicalOp::CrossProduct
    )
}

/// A platform's static operator cost, corrected by the runtime-observed
/// calibration factor for the `(operator, platform)` pair.
///
/// This is where the observe layer's feedback loop touches cost
/// estimation: the factor is the EMA of observed/estimated ratios kept by
/// [`CostCalibration`] (1.0 for never-observed pairs, i.e. a no-op until
/// the first calibrated job ran).
pub fn calibrated_op_cost(
    model: &dyn PlatformCostModel,
    op: &PhysicalOp,
    input_cards: &[f64],
    output_card: f64,
    platform_name: &str,
    calibration: &CostCalibration,
) -> f64 {
    model.op_cost(op, input_cards, output_card) * calibration.cost_factor(&op.name(), platform_name)
}

impl PlatformCostModel for LinearCostModel {
    fn op_cost(&self, op: &PhysicalOp, input_cards: &[f64], output_card: f64) -> f64 {
        let work = op_work_units(op, input_cards, output_card);
        let mut per_unit = self.per_unit;
        if requires_shuffle(op) {
            per_unit += self.shuffle_surcharge;
        }
        let mut speedup = self.speedup.max(1.0);
        if Self::hash_engine_op(op) {
            speedup *= self.hash_engine_speedup.max(1.0);
        }
        work * per_unit / speedup
    }

    fn atom_startup_cost(&self) -> f64 {
        self.startup
    }
}

// ---------------------------------------------------------------------------
// Data movement channels
// ---------------------------------------------------------------------------

/// The kind of data channel an atom boundary uses (RHEEMix-style explicit
/// data-movement channels): every platform declares which kinds it can
/// produce and consume, and crossing between platforms whose channel sets
/// do not intersect requires *conversion operators* priced by the
/// [`ChannelConversionGraph`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ChannelKind {
    /// An in-process (or shared-memory) collection handle.
    #[default]
    Memory,
    /// A file materialized on (distributed) storage.
    File,
    /// A record stream / pipe between running processes.
    Stream,
}

impl ChannelKind {
    /// Lower-case display name (used by explain renderers).
    pub fn as_str(&self) -> &'static str {
        match self {
            ChannelKind::Memory => "memory",
            ChannelKind::File => "file",
            ChannelKind::Stream => "stream",
        }
    }

    /// All channel kinds, in a fixed order.
    pub const ALL: [ChannelKind; 3] = [ChannelKind::Memory, ChannelKind::File, ChannelKind::Stream];
}

impl std::fmt::Display for ChannelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The channel kinds one platform can produce and consume at atom
/// boundaries (declared via
/// [`Platform::channels`](crate::platform::Platform::channels)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChannelSpec {
    /// Channel kinds this platform can write its boundary outputs to.
    pub outputs: Vec<ChannelKind>,
    /// Channel kinds this platform can read boundary inputs from.
    pub inputs: Vec<ChannelKind>,
}

impl ChannelSpec {
    /// A platform that only speaks in-memory collections (the default for
    /// platforms that declare nothing richer).
    pub fn memory_only() -> Self {
        ChannelSpec {
            outputs: vec![ChannelKind::Memory],
            inputs: vec![ChannelKind::Memory],
        }
    }

    /// A spec with explicit output and input channel kinds.
    pub fn new(outputs: Vec<ChannelKind>, inputs: Vec<ChannelKind>) -> Self {
        ChannelSpec { outputs, inputs }
    }
}

impl Default for ChannelSpec {
    fn default() -> Self {
        ChannelSpec::memory_only()
    }
}

/// One conversion operator in the channel conversion graph: re-encodes
/// data from one channel kind into another at a fixed + per-record price.
#[derive(Clone, Debug)]
pub struct ConversionOp {
    /// Display name (e.g. `serialize`), used by explain renderers.
    pub name: String,
    /// Fixed price of running the conversion at all.
    pub fixed: f64,
    /// Per-record price.
    pub per_record: f64,
}

/// The channel conversion graph: which channel-kind conversions exist and
/// what they cost. Shortest conversion *paths* are found over this graph,
/// so a `File → Stream` hop may route through `Memory` even though no
/// direct conversion is registered.
#[derive(Clone, Debug)]
pub struct ChannelConversionGraph {
    edges: HashMap<(ChannelKind, ChannelKind), ConversionOp>,
}

impl Default for ChannelConversionGraph {
    fn default() -> Self {
        let mut g = ChannelConversionGraph {
            edges: HashMap::new(),
        };
        // Defaults mirror the built-in platforms' relative overheads:
        // touching disk costs more than draining a stream.
        g.register(
            ChannelKind::Memory,
            ChannelKind::File,
            "serialize",
            0.5,
            0.002,
        );
        g.register(
            ChannelKind::File,
            ChannelKind::Memory,
            "deserialize",
            0.5,
            0.002,
        );
        g.register(
            ChannelKind::Memory,
            ChannelKind::Stream,
            "publish",
            0.2,
            0.001,
        );
        g.register(
            ChannelKind::Stream,
            ChannelKind::Memory,
            "drain",
            0.2,
            0.001,
        );
        g
    }
}

impl ChannelConversionGraph {
    /// A graph with no conversions at all (only like-for-like channel
    /// hand-offs are possible).
    pub fn empty() -> Self {
        ChannelConversionGraph {
            edges: HashMap::new(),
        }
    }

    /// Register (or replace) the conversion `from -> to`.
    pub fn register(
        &mut self,
        from: ChannelKind,
        to: ChannelKind,
        name: impl Into<String>,
        fixed: f64,
        per_record: f64,
    ) {
        self.edges.insert(
            (from, to),
            ConversionOp {
                name: name.into(),
                fixed,
                per_record,
            },
        );
    }

    /// The registered direct conversion `from -> to`, if any.
    pub fn conversion(&self, from: ChannelKind, to: ChannelKind) -> Option<&ConversionOp> {
        self.edges.get(&(from, to))
    }

    /// Cheapest conversion path from any kind in `outs` to any kind in
    /// `ins` for `records` data quanta. Returns the visited channel kinds
    /// (length 1 when producer and consumer share a kind) and the summed
    /// conversion price, or `None` when the sets cannot be connected.
    pub fn cheapest_path(
        &self,
        outs: &[ChannelKind],
        ins: &[ChannelKind],
        records: f64,
    ) -> Option<(Vec<ChannelKind>, f64)> {
        let records = records.max(0.0);
        let mut best: Option<(Vec<ChannelKind>, f64)> = None;
        // The graph has three nodes; Bellman-Ford-style relaxation over
        // all kinds is exact and allocation-light.
        for &start in outs {
            let mut dist: HashMap<ChannelKind, (f64, Vec<ChannelKind>)> = HashMap::new();
            dist.insert(start, (0.0, vec![start]));
            for _ in 0..ChannelKind::ALL.len() {
                for &from in &ChannelKind::ALL {
                    let Some((d, path)) = dist.get(&from).cloned() else {
                        continue;
                    };
                    for &to in &ChannelKind::ALL {
                        let Some(op) = self.edges.get(&(from, to)) else {
                            continue;
                        };
                        let nd = d + op.fixed + op.per_record * records;
                        let better = dist.get(&to).is_none_or(|(cur, _)| nd < *cur);
                        if better {
                            let mut p = path.clone();
                            p.push(to);
                            dist.insert(to, (nd, p));
                        }
                    }
                }
            }
            for &end in ins {
                if let Some((d, path)) = dist.get(&end) {
                    if best.as_ref().is_none_or(|(_, b)| d < b) {
                        best = Some((path.clone(), *d));
                    }
                }
            }
        }
        best
    }
}

/// A priced route for one cross-platform boundary edge: the channel kinds
/// the data passes through plus the transport and conversion components.
#[derive(Clone, Debug)]
pub struct ChannelRoute {
    /// Channel kinds visited, producer side first. A single entry means
    /// the producer's output channel is directly consumable.
    pub path: Vec<ChannelKind>,
    /// The flat transport component (`fixed + per_record · records`).
    pub transport_ms: f64,
    /// The conversion component along `path`.
    pub conversion_ms: f64,
}

impl ChannelRoute {
    /// Total price of the route.
    pub fn total_ms(&self) -> f64 {
        self.transport_ms + self.conversion_ms
    }
}

/// Inter-platform data movement prices (the paper's §4.2 third aspect and
/// §8 challenge 2's "inter-platform cost model").
///
/// Two layers: a flat `fixed + per_record · records` transport price per
/// platform pair (always charged on a switch), plus — once platform
/// [`ChannelSpec`]s are declared via
/// [`declare_channels`](MovementCostModel::declare_channels) — the cost of
/// the cheapest conversion path through the [`ChannelConversionGraph`]
/// connecting the producer's output channels to the consumer's input
/// channels. A model with no declared channels prices exactly like the
/// historical flat scalar.
#[derive(Clone, Debug)]
pub struct MovementCostModel {
    /// Fixed cost of any platform switch (channel setup).
    pub fixed: f64,
    /// Fallback per-record transfer price.
    pub default_per_record: f64,
    per_record: HashMap<(String, String), f64>,
    /// Channel conversion prices (consulted only for platforms with
    /// declared channels).
    pub conversions: ChannelConversionGraph,
    channels: HashMap<String, ChannelSpec>,
}

impl Default for MovementCostModel {
    fn default() -> Self {
        MovementCostModel {
            fixed: 1.0,
            default_per_record: 0.001,
            per_record: HashMap::new(),
            conversions: ChannelConversionGraph::default(),
            channels: HashMap::new(),
        }
    }
}

impl MovementCostModel {
    /// A model with the given fixed and default per-record prices.
    pub fn new(fixed: f64, default_per_record: f64) -> Self {
        MovementCostModel {
            fixed,
            default_per_record,
            ..MovementCostModel::default()
        }
    }

    /// A model in which moving data is free (for tests and ablations).
    pub fn free() -> Self {
        let mut m = MovementCostModel::new(0.0, 0.0);
        m.conversions = ChannelConversionGraph::empty();
        m
    }

    /// Set the per-record price of moving data `from -> to`.
    pub fn set_per_record(&mut self, from: &str, to: &str, price: f64) {
        self.per_record
            .insert((from.to_string(), to.to_string()), price);
    }

    /// Declare the channel kinds `platform` produces and consumes. From
    /// then on, switches touching it are priced through the conversion
    /// graph on top of the flat transport price.
    pub fn declare_channels(&mut self, platform: impl Into<String>, spec: ChannelSpec) {
        self.channels.insert(platform.into(), spec);
    }

    /// The declared channel spec of a platform, if any.
    pub fn channel_spec(&self, platform: &str) -> Option<&ChannelSpec> {
        self.channels.get(platform)
    }

    /// A copy of this model with every platform in `registry` declaring
    /// its [`ChannelSpec`] — the form the optimizer and executor use so
    /// enumeration, re-planning, and monitoring all price movement through
    /// the same channel conversion graph.
    pub fn channelized(&self, registry: &crate::platform::PlatformRegistry) -> MovementCostModel {
        let mut out = self.clone();
        for p in registry.all() {
            out.declare_channels(p.name(), p.channels());
        }
        out
    }

    /// The channel route for moving `records` data quanta `from -> to`.
    /// Same platform: a free single-hop route. Undeclared platforms fall
    /// back to [`ChannelSpec::memory_only`]; unconnectable channel sets
    /// fall back to the flat transport price with an empty path (priced as
    /// if a bespoke copy operator existed), so enumeration never wedges on
    /// an exotic platform pair.
    pub fn route(&self, from: &str, to: &str, records: f64) -> ChannelRoute {
        if from == to {
            return ChannelRoute {
                path: Vec::new(),
                transport_ms: 0.0,
                conversion_ms: 0.0,
            };
        }
        let per = self
            .per_record
            .get(&(from.to_string(), to.to_string()))
            .copied()
            .unwrap_or(self.default_per_record);
        let transport_ms = self.fixed + per * records;
        if self.channels.is_empty() {
            // Legacy flat pricing: no platform declared channels.
            return ChannelRoute {
                path: Vec::new(),
                transport_ms,
                conversion_ms: 0.0,
            };
        }
        let memory_only = ChannelSpec::memory_only();
        let outs = self.channels.get(from).unwrap_or(&memory_only);
        let ins = self.channels.get(to).unwrap_or(&memory_only);
        match self
            .conversions
            .cheapest_path(&outs.outputs, &ins.inputs, records)
        {
            Some((path, conversion_ms)) => ChannelRoute {
                path,
                transport_ms,
                conversion_ms,
            },
            None => ChannelRoute {
                path: Vec::new(),
                transport_ms,
                conversion_ms: 0.0,
            },
        }
    }

    /// Cost of moving `records` data quanta `from -> to`; zero if same
    /// platform. With declared channels this is the full
    /// [`route`](MovementCostModel::route) price (transport + conversion);
    /// without, the historical flat scalar.
    pub fn cost(&self, from: &str, to: &str, records: f64) -> f64 {
        if from == to {
            return 0.0;
        }
        self.route(from, to, records).total_ms()
    }
}

/// Symmetric estimation-error ratio between an estimated and an observed
/// quantity: `max(observed / estimated, estimated / observed)`.
///
/// A perfect estimate yields `1.0`, and the ratio grows the further the
/// estimate was off, regardless of direction — under- and over-estimation
/// drift alike, which is what the executor's re-planning trigger needs.
/// Degenerate cases: both sides (near) zero means the estimate was right
/// (`1.0`); exactly one side zero means it was arbitrarily wrong
/// (`f64::INFINITY`).
pub fn drift_ratio(estimated: f64, observed: f64) -> f64 {
    const EPS: f64 = 1e-9;
    let e = estimated.max(0.0);
    let o = observed.max(0.0);
    if e < EPS && o < EPS {
        1.0
    } else if e < EPS || o < EPS {
        f64::INFINITY
    } else {
        (o / e).max(e / o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanBuilder;
    use crate::rec;
    use crate::udf::{FilterUdf, FlatMapUdf, GroupMapUdf, KeyUdf, LoopCondUdf, MapUdf};

    fn records(n: usize) -> Vec<crate::data::Record> {
        (0..n as i64).map(|i| rec![i]).collect()
    }

    #[test]
    fn source_map_filter_cards() {
        let mut b = PlanBuilder::new();
        let src = b.collection("s", records(100));
        let m = b.map(src, MapUdf::new("id", |r| r.clone()));
        let f = b.filter(m, FilterUdf::new("half", |_| true).with_selectivity(0.1));
        b.collect(f);
        let plan = b.build().unwrap();
        let cards = CardinalityEstimator::default().estimate(&plan).unwrap();
        assert_eq!(cards[0], 100.0);
        assert_eq!(cards[1], 100.0);
        assert!((cards[2] - 10.0).abs() < 1e-9);
        assert!((cards[3] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn flatmap_fanout_and_groupby_distinct_hints() {
        let mut b = PlanBuilder::new();
        let src = b.collection("s", records(100));
        let fm = b.flat_map(
            src,
            FlatMapUdf::new("x3", |r| vec![r.clone(); 3]).with_fanout(3.0),
        );
        let g = b.group_by(
            fm,
            KeyUdf::field(0).with_distinct_keys(10.0),
            GroupMapUdf::identity().with_per_group_output(2.0),
        );
        b.collect(g);
        let plan = b.build().unwrap();
        let cards = CardinalityEstimator::default().estimate(&plan).unwrap();
        assert_eq!(cards[1], 300.0);
        assert_eq!(cards[2], 20.0); // 10 keys × 2 outputs per group
    }

    #[test]
    fn storage_source_uses_hints() {
        let mut b = PlanBuilder::new();
        let src = b.storage_source("big");
        b.count(src);
        let plan = b.build().unwrap();
        let mut est = CardinalityEstimator::default();
        assert_eq!(est.estimate(&plan).unwrap()[0], 1000.0); // default
        est.hint("big", 5e6);
        assert_eq!(est.estimate(&plan).unwrap()[0], 5e6);
        assert_eq!(est.estimate(&plan).unwrap()[1], 1.0); // CountSink
    }

    #[test]
    fn loop_card_flows_through_body() {
        let mut body = PlanBuilder::new();
        let li = body.loop_input();
        body.filter(li, FilterUdf::new("keep", |_| true).with_selectivity(1.0));
        let body = body.build_fragment().unwrap();

        let mut b = PlanBuilder::new();
        let src = b.collection("s", records(50));
        let l = b.repeat(src, body, LoopCondUdf::fixed_iterations(4), 4);
        b.collect(l);
        let plan = b.build().unwrap();
        let cards = CardinalityEstimator::default().estimate(&plan).unwrap();
        assert_eq!(cards[1], 50.0);
    }

    #[test]
    fn cross_product_and_join_cards() {
        let mut b = PlanBuilder::new();
        let l = b.collection("l", records(100));
        let r = b.collection("r", records(400));
        let cp = b.cross_product(l, r);
        let j = b.hash_join(l, r, KeyUdf::field(0), KeyUdf::field(0));
        b.collect(cp);
        b.collect(j);
        let plan = b.build().unwrap();
        let cards = CardinalityEstimator::default().estimate(&plan).unwrap();
        assert_eq!(cards[cp.0], 40_000.0);
        // 100*400 / max(sqrt(100), sqrt(400)) = 40000/20 = 2000
        assert!((cards[j.0] - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn malformed_binary_ops_are_invalid_plan_not_panics() {
        use crate::plan::{NodeId, PhysicalNode, PhysicalPlan};
        // A Union wired with a single input: invalid, but it must surface
        // as an error rather than an `ins[1]` index panic.
        let plan = PhysicalPlan::from_nodes(vec![
            PhysicalNode {
                id: NodeId(0),
                op: PhysicalOp::CollectionSource {
                    data: crate::data::Dataset::new(records(5)),
                    name: "s".into(),
                },
                inputs: vec![],
            },
            PhysicalNode {
                id: NodeId(1),
                op: PhysicalOp::Union,
                inputs: vec![NodeId(0)],
            },
        ]);
        let est = CardinalityEstimator::default();
        assert!(matches!(
            est.estimate(&plan),
            Err(RheemError::InvalidPlan(_))
        ));
        // And the work-unit estimate stays total (missing input => 0 work).
        assert_eq!(op_work_units(&PhysicalOp::CrossProduct, &[100.0], 0.0), 0.0);
        assert_eq!(
            op_work_units(
                &PhysicalOp::SortMergeJoin {
                    left_key: KeyUdf::field(0),
                    right_key: KeyUdf::field(0),
                },
                &[],
                0.0
            ),
            0.0
        );
    }

    #[test]
    fn dangling_input_edges_are_invalid_plan_not_panics() {
        use crate::plan::{NodeId, PhysicalNode, PhysicalPlan};
        let plan = PhysicalPlan::from_nodes(vec![PhysicalNode {
            id: NodeId(0),
            op: PhysicalOp::Distinct,
            inputs: vec![NodeId(42)],
        }]);
        assert!(matches!(
            CardinalityEstimator::default().estimate(&plan),
            Err(RheemError::InvalidPlan(_))
        ));
    }

    #[test]
    fn work_units_reflect_algorithmic_profiles() {
        let sort = PhysicalOp::Sort {
            key: KeyUdf::field(0),
            descending: false,
        };
        let n = 1024.0;
        assert!((op_work_units(&sort, &[n], n) - n * 10.0).abs() < 1e-6);
        let cross = PhysicalOp::CrossProduct;
        assert_eq!(op_work_units(&cross, &[100.0, 100.0], 10_000.0), 20_000.0);
    }

    #[test]
    fn linear_cost_model_scales_with_parallelism() {
        let single = LinearCostModel::single_threaded(1.0);
        let parallel = LinearCostModel {
            per_unit: 1.0,
            speedup: 8.0,
            startup: 100.0,
            shuffle_surcharge: 0.0,
            hash_engine_speedup: 1.0,
        };
        let op = PhysicalOp::Map(MapUdf::new("id", |r| r.clone()));
        let c1 = single.op_cost(&op, &[1000.0], 1000.0);
        let c2 = parallel.op_cost(&op, &[1000.0], 1000.0);
        assert!((c1 / c2 - 8.0).abs() < 1e-9);
        assert_eq!(single.atom_startup_cost(), 0.0);
        assert_eq!(parallel.atom_startup_cost(), 100.0);
    }

    #[test]
    fn shuffle_surcharge_applies_to_wide_ops() {
        let m = LinearCostModel {
            per_unit: 1.0,
            speedup: 1.0,
            startup: 0.0,
            shuffle_surcharge: 1.0,
            hash_engine_speedup: 1.0,
        };
        let narrow = PhysicalOp::Map(MapUdf::new("id", |r| r.clone()));
        let wide = PhysicalOp::ReduceByKey {
            key: KeyUdf::field(0),
            reduce: crate::udf::ReduceUdf::new("sum", |a, _| a),
        };
        assert!(requires_shuffle(&wide));
        assert!(!requires_shuffle(&narrow));
        assert!(m.op_cost(&wide, &[100.0], 10.0) > m.op_cost(&narrow, &[100.0], 100.0));
    }

    #[test]
    fn calibrated_cost_applies_observed_factor() {
        let m = LinearCostModel::single_threaded(1.0);
        let op = PhysicalOp::Map(MapUdf::new("id", |r| r.clone()));
        let cal = CostCalibration::new();
        let base = calibrated_op_cost(&m, &op, &[100.0], 100.0, "java", &cal);
        assert_eq!(base, m.op_cost(&op, &[100.0], 100.0));
        cal.observe(&op.name(), "java", 1.0, 3.0, 1.0, 1.0);
        let scaled = calibrated_op_cost(&m, &op, &[100.0], 100.0, "java", &cal);
        assert!((scaled / base - 3.0).abs() < 1e-9);
        // Other platforms are unaffected.
        let other = calibrated_op_cost(&m, &op, &[100.0], 100.0, "spark", &cal);
        assert_eq!(other, base);
    }

    #[test]
    fn movement_cost_zero_within_platform() {
        let mut m = MovementCostModel::new(5.0, 0.01);
        m.set_per_record("java", "spark", 0.1);
        assert_eq!(m.cost("java", "java", 1e6), 0.0);
        assert_eq!(m.cost("java", "spark", 100.0), 5.0 + 10.0);
        assert_eq!(m.cost("spark", "java", 100.0), 5.0 + 1.0); // default price
        assert_eq!(MovementCostModel::free().cost("a", "b", 1e9), 0.0);
    }

    #[test]
    fn conversion_graph_finds_multi_hop_paths() {
        let g = ChannelConversionGraph::default();
        // Direct hand-off: no conversion needed.
        let (path, cost) = g
            .cheapest_path(&[ChannelKind::Memory], &[ChannelKind::Memory], 1000.0)
            .unwrap();
        assert_eq!(path, vec![ChannelKind::Memory]);
        assert_eq!(cost, 0.0);
        // One hop: memory -> file is the serialize op.
        let (path, cost) = g
            .cheapest_path(&[ChannelKind::Memory], &[ChannelKind::File], 1000.0)
            .unwrap();
        assert_eq!(path, vec![ChannelKind::Memory, ChannelKind::File]);
        assert!((cost - (0.5 + 0.002 * 1000.0)).abs() < 1e-9);
        // No direct file -> stream conversion exists: the path routes
        // through memory (deserialize + publish).
        let (path, cost) = g
            .cheapest_path(&[ChannelKind::File], &[ChannelKind::Stream], 100.0)
            .unwrap();
        assert_eq!(
            path,
            vec![ChannelKind::File, ChannelKind::Memory, ChannelKind::Stream]
        );
        assert!((cost - (0.5 + 0.2 + 0.003 * 100.0)).abs() < 1e-9);
        // Sets that cannot be connected yield None.
        assert!(ChannelConversionGraph::empty()
            .cheapest_path(&[ChannelKind::File], &[ChannelKind::Stream], 1.0)
            .is_none());
        // Multiple producer channels: the cheapest origin wins.
        let (path, _) = g
            .cheapest_path(
                &[ChannelKind::File, ChannelKind::Stream],
                &[ChannelKind::Memory],
                1000.0,
            )
            .unwrap();
        assert_eq!(path[0], ChannelKind::Stream, "drain beats deserialize");
    }

    #[test]
    fn declared_channels_add_conversion_prices_on_top_of_transport() {
        let mut m = MovementCostModel::new(1.0, 0.001);
        let flat = m.cost("java", "mapreduce", 1000.0);
        assert!((flat - 2.0).abs() < 1e-9);
        // Declare channels: java speaks memory, mapreduce only files.
        m.declare_channels("java", ChannelSpec::memory_only());
        m.declare_channels(
            "mapreduce",
            ChannelSpec::new(vec![ChannelKind::File], vec![ChannelKind::File]),
        );
        let route = m.route("java", "mapreduce", 1000.0);
        assert_eq!(route.path, vec![ChannelKind::Memory, ChannelKind::File]);
        assert!((route.transport_ms - flat).abs() < 1e-9);
        assert!((route.conversion_ms - 2.5).abs() < 1e-9);
        assert!((m.cost("java", "mapreduce", 1000.0) - 4.5).abs() < 1e-9);
        // Same platform stays free; memory-to-memory pairs pay no
        // conversion, so their price is unchanged by the declarations.
        assert_eq!(m.cost("mapreduce", "mapreduce", 1e6), 0.0);
        m.declare_channels("spark", ChannelSpec::memory_only());
        assert!((m.cost("java", "spark", 1000.0) - 2.0).abs() < 1e-9);
        // An undeclared platform defaults to memory-only.
        assert!((m.cost("java", "unknown", 1000.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn drift_ratio_is_symmetric_and_handles_zeroes() {
        assert_eq!(drift_ratio(100.0, 100.0), 1.0);
        assert!((drift_ratio(100.0, 500.0) - 5.0).abs() < 1e-9);
        assert!((drift_ratio(500.0, 100.0) - 5.0).abs() < 1e-9);
        // Both sides empty: the estimate was right.
        assert_eq!(drift_ratio(0.0, 0.0), 1.0);
        // One side empty: arbitrarily wrong.
        assert_eq!(drift_ratio(0.0, 10.0), f64::INFINITY);
        assert_eq!(drift_ratio(10.0, 0.0), f64::INFINITY);
        // Negative estimates are clamped, never NaN.
        assert_eq!(drift_ratio(-5.0, 0.0), 1.0);
    }
}
