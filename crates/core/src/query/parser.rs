//! Recursive-descent parser for the declarative query language.

use crate::error::{Result, RheemError};

use super::ast::*;
use super::lexer::{lex, Token};

/// Parse a query string into the AST.
pub fn parse(input: &str) -> Result<Query> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(p.error(format!(
            "unexpected trailing input at token {:?}",
            p.tokens[p.pos]
        )));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn error(&self, msg: String) -> RheemError {
        RheemError::Query(format!("parse error: {msg}"))
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Is the next token the given keyword (case-insensitive)?
    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume the given keyword if present.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn expect(&mut self, t: Token) -> Result<()> {
        if self.peek() == Some(&t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    /// True if the identifier is a reserved keyword that terminates clauses.
    fn is_reserved(s: &str) -> bool {
        const KW: [&str; 15] = [
            "select", "from", "join", "on", "where", "group", "by", "having", "order", "limit",
            "as", "and", "or", "not", "asc",
        ];
        KW.contains(&s.to_ascii_lowercase().as_str()) || s.eq_ignore_ascii_case("desc")
    }

    // ---------------------------------------------------------------- query

    fn query(&mut self) -> Result<Query> {
        self.expect_keyword("SELECT")?;
        let select = self.select_items()?;
        self.expect_keyword("FROM")?;
        let from = self.ident()?;

        let join = if self.eat_keyword("JOIN") {
            let table = self.ident()?;
            self.expect_keyword("ON")?;
            let left = self.column_ref()?;
            self.expect(Token::Eq)?;
            let right = self.column_ref()?;
            Some(JoinClause { table, left, right })
        } else {
            None
        };

        let filter = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.column_ref()?);
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        let having = if self.eat_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };

        let order_by = if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            let column = self.ident()?;
            let descending = if self.eat_keyword("DESC") {
                true
            } else {
                self.eat_keyword("ASC");
                false
            };
            Some(OrderBy { column, descending })
        } else {
            None
        };

        let limit = if self.eat_keyword("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => return Err(self.error(format!("expected LIMIT count, found {other:?}"))),
            }
        } else {
            None
        };

        Ok(Query {
            select,
            from,
            join,
            filter,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_items(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if self.peek() == Some(&Token::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        let expr = if self.peek() == Some(&Token::Star) {
            self.pos += 1;
            SelectExpr::Star
        } else if let Some(agg) = self.try_agg()? {
            agg
        } else {
            SelectExpr::Expr(self.expr()?)
        };
        let alias = if self.eat_keyword("AS") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    fn try_agg(&mut self) -> Result<Option<SelectExpr>> {
        let func = match self.peek() {
            Some(Token::Ident(s)) => match s.to_ascii_lowercase().as_str() {
                "count" => AggFunc::Count,
                "sum" => AggFunc::Sum,
                "min" => AggFunc::Min,
                "max" => AggFunc::Max,
                "avg" => AggFunc::Avg,
                _ => return Ok(None),
            },
            _ => return Ok(None),
        };
        // Only an aggregate when followed by `(`.
        if self.tokens.get(self.pos + 1) != Some(&Token::LParen) {
            return Ok(None);
        }
        self.pos += 2; // func + LParen
        let arg = if self.peek() == Some(&Token::Star) {
            self.pos += 1;
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(Token::RParen)?;
        if arg.is_none() && func != AggFunc::Count {
            return Err(self.error(format!("{}(*) is only valid for COUNT", func.name())));
        }
        Ok(Some(SelectExpr::Agg(func, arg)))
    }

    fn column_ref(&mut self) -> Result<ColumnRef> {
        let first = self.ident()?;
        if Self::is_reserved(&first) {
            return Err(self.error(format!("expected column, found keyword `{first}`")));
        }
        if self.peek() == Some(&Token::Dot) {
            self.pos += 1;
            let column = self.ident()?;
            Ok(ColumnRef {
                table: Some(first),
                column,
            })
        } else {
            Ok(ColumnRef {
                table: None,
                column: first,
            })
        }
    }

    // ----------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Neq) => CmpOp::Neq,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Lte) => CmpOp::Lte,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Gte) => CmpOp::Gte,
            _ => return Ok(left),
        };
        self.pos += 1;
        let right = self.add_expr()?;
        Ok(Expr::Cmp(Box::new(left), op, Box::new(right)))
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => ArithOp::Add,
                Some(Token::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = Expr::Arith(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => ArithOp::Mul,
                Some(Token::Slash) => ArithOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary_expr()?;
            left = Expr::Arith(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.peek() == Some(&Token::Minus) {
            self.pos += 1;
            Ok(Expr::Neg(Box::new(self.unary_expr()?)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Int(i)))
            }
            Some(Token::Float(x)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Float(x)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Str(s)))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("true") => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Bool(true)))
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("false") => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Bool(false)))
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("null") => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Null))
            }
            Some(Token::Ident(_)) => Ok(Expr::Column(self.column_ref()?)),
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_query() {
        let q = parse("SELECT * FROM t").unwrap();
        assert_eq!(q.from, "t");
        assert_eq!(q.select.len(), 1);
        assert!(matches!(q.select[0].expr, SelectExpr::Star));
        assert!(q.join.is_none() && q.filter.is_none() && q.group_by.is_empty());
    }

    #[test]
    fn parses_full_query() {
        let q = parse(
            "SELECT region, COUNT(*) AS n, SUM(amount * 2) AS total \
             FROM orders JOIN customers ON orders.cid = customers.id \
             WHERE amount > 100 AND NOT (region = 'EU' OR region = 'US') \
             GROUP BY region HAVING n > 3 ORDER BY total DESC LIMIT 5",
        )
        .unwrap();
        assert_eq!(q.select.len(), 3);
        assert_eq!(q.select[1].alias.as_deref(), Some("n"));
        assert!(q.has_aggregates());
        let join = q.join.unwrap();
        assert_eq!(join.table, "customers");
        assert_eq!(join.left.table.as_deref(), Some("orders"));
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
        let ob = q.order_by.unwrap();
        assert!(ob.descending);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn operator_precedence() {
        // a + b * c < d AND e  parses as  ((a + (b*c)) < d) AND e
        let q = parse("SELECT * FROM t WHERE a + b * c < d AND e = 1").unwrap();
        match q.filter.unwrap() {
            Expr::And(left, _) => match *left {
                Expr::Cmp(lhs, CmpOp::Lt, _) => match *lhs {
                    Expr::Arith(_, ArithOp::Add, rhs) => {
                        assert!(matches!(*rhs, Expr::Arith(_, ArithOp::Mul, _)))
                    }
                    other => panic!("expected Add, got {other:?}"),
                },
                other => panic!("expected Cmp, got {other:?}"),
            },
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse("select a from t where a >= 1 order by a asc").is_ok());
    }

    #[test]
    fn count_star_only() {
        assert!(parse("SELECT COUNT(*) FROM t").is_ok());
        assert!(parse("SELECT SUM(*) FROM t").is_err());
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse("FROM t").is_err());
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t LIMIT x").is_err());
        assert!(parse("SELECT * FROM t extra junk").is_err());
        assert!(parse("SELECT * FROM t JOIN u ON a != b").is_err());
    }

    #[test]
    fn aggregate_names_can_still_be_columns() {
        // `count` not followed by `(` is an ordinary identifier.
        let q = parse("SELECT count FROM t").unwrap();
        assert!(matches!(
            &q.select[0].expr,
            SelectExpr::Expr(Expr::Column(c)) if c.column == "count"
        ));
    }
}
