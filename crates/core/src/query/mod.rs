//! A declarative query interface on top of the logical layer.
//!
//! §3.2 of the paper: "In addition to logical operators, an application
//! developer could also expose a declarative language for users to define
//! their tasks (e.g., queries). The application is then responsible for
//! translating a declarative query into a logical plan." This module is
//! that path: a small SQL dialect (SELECT / FROM / JOIN / WHERE / GROUP BY
//! / HAVING / ORDER BY / LIMIT) parsed by [`parser::parse`] and planned by
//! [`QueryCatalog::plan`] into an ordinary [`crate::logical::LogicalPlan`]
//! — from there the usual machinery applies: declarative operator
//! mappings, rewrites, multi-platform optimization, task atoms.
//!
//! ```
//! use rheem_core::data::{DataType, Schema};
//! use rheem_core::query::QueryCatalog;
//! use rheem_core::rec;
//!
//! let mut catalog = QueryCatalog::new();
//! catalog.register(
//!     "people",
//!     Schema::new(vec![("name", DataType::Str), ("age", DataType::Int)]),
//!     vec![rec!["ada", 36i64], rec!["carl", 17i64]],
//! );
//! let planned = catalog.plan("SELECT name FROM people WHERE age >= 18").unwrap();
//! assert_eq!(planned.schema.fields()[0].name, "name");
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod planner;

pub use parser::parse;
pub use planner::{PlannedQuery, QueryCatalog, QueryResult, TableDef, TableSource};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::data::{DataType, Record, Schema, Value};
    use crate::interpreter;
    use crate::mapping::MappingRegistry;
    use crate::optimizer::application;
    use crate::platform::ExecutionContext;
    use crate::rec;

    fn orders_schema() -> Schema {
        Schema::new(vec![
            ("id", DataType::Int),
            ("cust", DataType::Int),
            ("amount", DataType::Float),
        ])
    }

    fn customers_schema() -> Schema {
        Schema::new(vec![
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("region", DataType::Str),
        ])
    }

    fn catalog() -> QueryCatalog {
        let mut c = QueryCatalog::new();
        c.register(
            "orders",
            orders_schema(),
            vec![
                rec![1i64, 10i64, 250.0],
                rec![2i64, 11i64, 75.0],
                rec![3i64, 10i64, 125.0],
                rec![4i64, 12i64, 900.0],
                rec![5i64, 11i64, 50.0],
            ],
        );
        c.register(
            "customers",
            customers_schema(),
            vec![
                rec![10i64, "ada", "EU"],
                rec![11i64, "bob", "US"],
                rec![12i64, "eve", "EU"],
            ],
        );
        c
    }

    /// Plan and run a query on the reference interpreter.
    fn run(sql: &str) -> (Vec<Record>, Schema) {
        let planned = catalog().plan(sql).unwrap();
        let physical =
            application::lower(&planned.logical, &MappingRegistry::with_defaults()).unwrap();
        let outputs = interpreter::run_plan(&physical, &ExecutionContext::new()).unwrap();
        let rows = outputs[&planned.sink].records().to_vec();
        (rows, planned.schema)
    }

    #[test]
    fn select_star() {
        let (rows, schema) = run("SELECT * FROM customers");
        assert_eq!(rows.len(), 3);
        assert_eq!(schema.width(), 3);
        assert_eq!(schema.index_of("region"), Some(2));
    }

    #[test]
    fn filter_and_projection_with_arithmetic() {
        let (rows, schema) =
            run("SELECT id, amount * 2 AS double_amount FROM orders WHERE amount >= 100");
        assert_eq!(schema.fields()[1].name, "double_amount");
        assert_eq!(rows.len(), 3);
        let first = &rows[0];
        assert_eq!(first.int(0).unwrap(), 1);
        assert_eq!(first.float(1).unwrap(), 500.0);
    }

    #[test]
    fn join_groups_and_aggregates() {
        let (rows, schema) = run(
            "SELECT region, COUNT(*) AS n, SUM(amount) AS total, AVG(amount) AS mean \
             FROM orders JOIN customers ON orders.cust = customers.id \
             GROUP BY region ORDER BY total DESC",
        );
        assert_eq!(
            schema
                .fields()
                .iter()
                .map(|f| f.name.as_str())
                .collect::<Vec<_>>(),
            vec!["region", "n", "total", "mean"]
        );
        assert_eq!(rows.len(), 2);
        // EU: orders 1 (250), 3 (125), 4 (900) = 1275; US: 75 + 50 = 125.
        assert_eq!(rows[0].str(0).unwrap(), "EU");
        assert_eq!(rows[0].int(1).unwrap(), 3);
        assert_eq!(rows[0].float(2).unwrap(), 1275.0);
        assert!((rows[0].float(3).unwrap() - 425.0).abs() < 1e-9);
        assert_eq!(rows[1].str(0).unwrap(), "US");
    }

    #[test]
    fn having_filters_groups() {
        let (rows, _) =
            run("SELECT cust, COUNT(*) AS n FROM orders GROUP BY cust HAVING n >= 2 ORDER BY cust");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].int(0).unwrap(), 10);
        assert_eq!(rows[1].int(0).unwrap(), 11);
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let (rows, _) = run("SELECT COUNT(*), MIN(amount), MAX(amount) FROM orders");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].int(0).unwrap(), 5);
        assert_eq!(rows[0].float(1).unwrap(), 50.0);
        assert_eq!(rows[0].float(2).unwrap(), 900.0);
    }

    #[test]
    fn order_by_and_limit() {
        let (rows, _) = run("SELECT id FROM orders ORDER BY id DESC LIMIT 2");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].int(0).unwrap(), 5);
        assert_eq!(rows[1].int(0).unwrap(), 4);
    }

    #[test]
    fn sum_of_ints_stays_int() {
        let mut c = QueryCatalog::new();
        c.register(
            "t",
            Schema::new(vec![("k", DataType::Int), ("v", DataType::Int)]),
            vec![rec![1i64, 10i64], rec![1i64, 20i64]],
        );
        let planned = c.plan("SELECT k, SUM(v) AS s FROM t GROUP BY k").unwrap();
        let physical =
            application::lower(&planned.logical, &MappingRegistry::with_defaults()).unwrap();
        let outputs = interpreter::run_plan(&physical, &ExecutionContext::new()).unwrap();
        let rows = outputs[&planned.sink].records();
        assert_eq!(rows[0].get(1).unwrap(), &Value::Int(30));
    }

    #[test]
    fn null_semantics() {
        let mut c = QueryCatalog::new();
        c.register(
            "t",
            Schema::new(vec![("x", DataType::Int)]),
            vec![
                Record::new(vec![Value::Int(1)]),
                Record::new(vec![Value::Null]),
                Record::new(vec![Value::Int(3)]),
            ],
        );
        let planned = c
            .plan("SELECT COUNT(*) AS all_rows, COUNT(x) AS non_null, SUM(x) AS s FROM t")
            .unwrap();
        let physical =
            application::lower(&planned.logical, &MappingRegistry::with_defaults()).unwrap();
        let outputs = interpreter::run_plan(&physical, &ExecutionContext::new()).unwrap();
        let r = &outputs[&planned.sink].records()[0];
        assert_eq!(r.int(0).unwrap(), 3);
        assert_eq!(r.int(1).unwrap(), 2);
        assert_eq!(r.int(2).unwrap(), 4);
        // A NULL comparison is not truthy: the row vanishes from WHERE.
        let planned = c.plan("SELECT x FROM t WHERE x > 0").unwrap();
        let physical =
            application::lower(&planned.logical, &MappingRegistry::with_defaults()).unwrap();
        let outputs = interpreter::run_plan(&physical, &ExecutionContext::new()).unwrap();
        assert_eq!(outputs[&planned.sink].len(), 2);
    }

    #[test]
    fn duplicate_output_names_are_disambiguated() {
        let (rows, schema) = run("SELECT id, id FROM customers LIMIT 1");
        assert_eq!(schema.fields()[0].name, "id");
        assert_eq!(schema.fields()[1].name, "id_2");
        assert_eq!(rows[0].int(0).unwrap(), rows[0].int(1).unwrap());
    }

    #[test]
    fn planning_errors_are_helpful() {
        let c = catalog();
        let err = c.plan("SELECT nope FROM orders").unwrap_err();
        assert!(err.to_string().contains("unknown column"), "{err}");
        let err = c.plan("SELECT id FROM nope").unwrap_err();
        assert!(err.to_string().contains("unknown table"), "{err}");
        let err = c
            .plan("SELECT orders.id FROM orders JOIN customers ON orders.cust = customers.id GROUP BY region")
            .unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
        let err = c
            .plan("SELECT amount FROM orders GROUP BY cust")
            .unwrap_err();
        assert!(err.to_string().contains("must appear in GROUP BY"), "{err}");
        let err = c.plan("SELECT id FROM orders HAVING id > 1").unwrap_err();
        assert!(err.to_string().contains("HAVING"), "{err}");
        // Ambiguous column across a join.
        let err = c
            .plan("SELECT id FROM orders JOIN customers ON orders.cust = customers.id")
            .unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{err}");
    }

    #[test]
    fn join_key_orientation_is_flexible() {
        // ON right = left also works.
        let (rows, _) = run(
            "SELECT name FROM orders JOIN customers ON customers.id = orders.cust \
             WHERE amount > 800",
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].str(0).unwrap(), "eve");
    }

    #[test]
    fn end_to_end_on_a_context() {
        use crate::RheemContext;
        // A context with the reference-quality single-process platform from
        // this crate's tests is not available here; use a trivial platform
        // via the public trait. Instead we exercise `execute` through the
        // logical path indirectly in the integration tests; here we check
        // that planning composes with lowering and optimization.
        let planned = catalog()
            .plan("SELECT region, COUNT(*) AS n FROM orders JOIN customers ON orders.cust = customers.id GROUP BY region")
            .unwrap();
        let ctx = RheemContext::new();
        // No platform registered: optimization must fail cleanly, proving
        // the logical plan is structurally valid but needs a platform.
        assert!(ctx.optimize_logical(&planned.logical).is_err());
        let _ = Arc::new(()); // silence unused-import lint paths
    }
}
