//! Query planning: name resolution, expression compilation, and lowering
//! to a [`LogicalPlan`].
//!
//! The planner needs *schemas*, which execution does not: a
//! [`QueryCatalog`] registers each queryable dataset with its
//! [`Schema`], and resolution turns qualified column names into field
//! indices before any UDF is built. Expressions compile to closures over
//! records (three-valued-ish semantics: any operation on `Null`, a type
//! mismatch, or an out-of-range access yields `Null`, and `Null` is not
//! truthy).

use std::collections::HashMap;
use std::sync::Arc;

use crate::data::{DataType, Dataset, Record, Schema, Value};
use crate::error::{Result, RheemError};
use crate::logical::{LogicalPayload, LogicalPlan, LogicalPlanBuilder};
use crate::plan::NodeId;
use crate::udf::{FilterUdf, GroupMapUdf, KeyUdf, MapUdf};
use crate::{JobResult, RheemContext};

use super::ast::*;
use super::parser::parse;

/// Where a registered table's data comes from.
#[derive(Clone)]
pub enum TableSource {
    /// An in-memory collection.
    Collection(Dataset),
    /// A dataset in the storage layer.
    Storage(String),
}

/// A registered, queryable table.
#[derive(Clone)]
pub struct TableDef {
    /// Column names and types.
    pub schema: Schema,
    /// Data location.
    pub source: TableSource,
}

/// The set of tables a query may reference.
#[derive(Clone, Default)]
pub struct QueryCatalog {
    tables: HashMap<String, TableDef>,
}

/// A planned query, ready to execute.
pub struct PlannedQuery {
    /// The logical plan (lower + optimize + run it through a context).
    pub logical: LogicalPlan,
    /// Output column names and (best-effort) types.
    pub schema: Schema,
    /// The sink's node id in the lowered physical plan (lowering is 1:1).
    pub sink: NodeId,
}

impl std::fmt::Debug for PlannedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PlannedQuery({} logical nodes, {} output columns)",
            self.logical.len(),
            self.schema.width()
        )
    }
}

/// Query output: rows plus their schema and the job's statistics.
pub struct QueryResult {
    /// Result rows.
    pub rows: Dataset,
    /// Output schema.
    pub schema: Schema,
    /// Execution statistics.
    pub job: JobResult,
}

impl QueryCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        QueryCatalog::default()
    }

    /// Register an in-memory table.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        records: Vec<Record>,
    ) -> &mut Self {
        self.tables.insert(
            name.into(),
            TableDef {
                schema,
                source: TableSource::Collection(Dataset::new(records)),
            },
        );
        self
    }

    /// Register a table backed by the storage layer.
    pub fn register_storage(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        dataset_id: impl Into<String>,
    ) -> &mut Self {
        self.tables.insert(
            name.into(),
            TableDef {
                schema,
                source: TableSource::Storage(dataset_id.into()),
            },
        );
        self
    }

    fn table(&self, name: &str) -> Result<&TableDef> {
        self.tables
            .get(name)
            .ok_or_else(|| RheemError::Query(format!("unknown table `{name}`")))
    }

    /// Parse and plan a query.
    pub fn plan(&self, sql: &str) -> Result<PlannedQuery> {
        let query = parse(sql)?;
        plan_query(self, &query)
    }

    /// Parse, plan, optimize, and execute a query on a context.
    pub fn execute(&self, ctx: &RheemContext, sql: &str) -> Result<QueryResult> {
        let planned = self.plan(sql)?;
        let job = ctx.execute_logical(&planned.logical)?;
        let rows = job
            .outputs
            .get(&planned.sink)
            .cloned()
            .ok_or_else(|| RheemError::Query("query produced no output".into()))?;
        Ok(QueryResult {
            rows,
            schema: planned.schema,
            job,
        })
    }
}

// ---------------------------------------------------------------------------
// Name resolution
// ---------------------------------------------------------------------------

/// The row namespace a clause is resolved against.
struct RowBinding {
    /// `(qualifier, column name, type)` per field.
    fields: Vec<(Option<String>, String, DataType)>,
}

impl RowBinding {
    fn from_table(name: &str, schema: &Schema) -> Self {
        RowBinding {
            fields: schema
                .fields()
                .iter()
                .map(|f| (Some(name.to_string()), f.name.clone(), f.dtype))
                .collect(),
        }
    }

    fn joined(left: &RowBinding, right: &RowBinding) -> Self {
        let mut fields = left.fields.clone();
        fields.extend(right.fields.clone());
        RowBinding { fields }
    }

    fn from_output(schema: &Schema) -> Self {
        RowBinding {
            fields: schema
                .fields()
                .iter()
                .map(|f| (None, f.name.clone(), f.dtype))
                .collect(),
        }
    }

    fn resolve(&self, col: &ColumnRef) -> Result<usize> {
        let matches: Vec<usize> = self
            .fields
            .iter()
            .enumerate()
            .filter(|(_, (q, name, _))| {
                name == &col.column
                    && col
                        .table
                        .as_ref()
                        .map(|want| q.as_deref() == Some(want.as_str()))
                        .unwrap_or(true)
            })
            .map(|(i, _)| i)
            .collect();
        match matches.as_slice() {
            [i] => Ok(*i),
            [] => Err(RheemError::Query(format!(
                "unknown column `{}`",
                render_col(col)
            ))),
            _ => Err(RheemError::Query(format!(
                "ambiguous column `{}` (qualify it with a table name)",
                render_col(col)
            ))),
        }
    }

    fn dtype(&self, index: usize) -> DataType {
        self.fields[index].2
    }
}

fn render_col(col: &ColumnRef) -> String {
    match &col.table {
        Some(t) => format!("{t}.{}", col.column),
        None => col.column.clone(),
    }
}

// ---------------------------------------------------------------------------
// Expression compilation
// ---------------------------------------------------------------------------

/// A compiled scalar expression.
type Compiled = Arc<dyn Fn(&Record) -> Value + Send + Sync>;

fn compile(expr: &Expr, binding: &RowBinding) -> Result<Compiled> {
    Ok(match expr {
        Expr::Column(c) => {
            let idx = binding.resolve(c)?;
            Arc::new(move |r: &Record| r.get(idx).cloned().unwrap_or(Value::Null))
        }
        Expr::Literal(lit) => {
            let v = match lit {
                Literal::Int(i) => Value::Int(*i),
                Literal::Float(x) => Value::Float(*x),
                Literal::Str(s) => Value::str(s),
                Literal::Bool(b) => Value::Bool(*b),
                Literal::Null => Value::Null,
            };
            Arc::new(move |_| v.clone())
        }
        Expr::Cmp(l, op, r) => {
            let (l, r) = (compile(l, binding)?, compile(r, binding)?);
            let op = *op;
            Arc::new(move |rec: &Record| eval_cmp(&l(rec), op, &r(rec)))
        }
        Expr::Arith(l, op, r) => {
            let (l, r) = (compile(l, binding)?, compile(r, binding)?);
            let op = *op;
            Arc::new(move |rec: &Record| eval_arith(&l(rec), op, &r(rec)))
        }
        Expr::And(l, r) => {
            let (l, r) = (compile(l, binding)?, compile(r, binding)?);
            Arc::new(move |rec: &Record| Value::Bool(truthy(&l(rec)) && truthy(&r(rec))))
        }
        Expr::Or(l, r) => {
            let (l, r) = (compile(l, binding)?, compile(r, binding)?);
            Arc::new(move |rec: &Record| Value::Bool(truthy(&l(rec)) || truthy(&r(rec))))
        }
        Expr::Not(e) => {
            let e = compile(e, binding)?;
            Arc::new(move |rec: &Record| Value::Bool(!truthy(&e(rec))))
        }
        Expr::Neg(e) => {
            let e = compile(e, binding)?;
            Arc::new(move |rec: &Record| match e(rec) {
                Value::Int(i) => Value::Int(i.wrapping_neg()),
                Value::Float(x) => Value::Float(-x),
                _ => Value::Null,
            })
        }
    })
}

/// Truthiness: only `Bool(true)` is true.
fn truthy(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

/// Numeric-aware comparison: `Int` and `Float` compare numerically; other
/// same-variant pairs compare by value; `Null` or mixed variants → `Null`
/// (→ not truthy).
fn eval_cmp(a: &Value, op: CmpOp, b: &Value) -> Value {
    use std::cmp::Ordering;
    let ord = match (a, b) {
        (Value::Null, _) | (_, Value::Null) => return Value::Null,
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Float(_) | Value::Int(_), Value::Float(_) | Value::Int(_)) => {
            let (x, y) = (
                a.as_float().expect("numeric"),
                b.as_float().expect("numeric"),
            );
            x.total_cmp(&y)
        }
        (Value::Str(x), Value::Str(y)) => x.as_ref().cmp(y.as_ref()),
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        _ => return Value::Null,
    };
    let out = match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Neq => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Lte => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Gte => ord != Ordering::Less,
    };
    Value::Bool(out)
}

/// Numeric arithmetic; `Int ∘ Int` stays `Int` except division, which is
/// always `Float` (with `/0 → Null`).
fn eval_arith(a: &Value, op: ArithOp, b: &Value) -> Value {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) if op != ArithOp::Div => Value::Int(match op {
            ArithOp::Add => x.wrapping_add(*y),
            ArithOp::Sub => x.wrapping_sub(*y),
            ArithOp::Mul => x.wrapping_mul(*y),
            ArithOp::Div => unreachable!(),
        }),
        (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
            let (x, y) = (
                a.as_float().expect("numeric"),
                b.as_float().expect("numeric"),
            );
            match op {
                ArithOp::Add => Value::Float(x + y),
                ArithOp::Sub => Value::Float(x - y),
                ArithOp::Mul => Value::Float(x * y),
                ArithOp::Div => {
                    if y == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(x / y)
                    }
                }
            }
        }
        _ => Value::Null,
    }
}

/// Best-effort output type of an expression (advisory only).
fn infer_type(expr: &Expr, binding: &RowBinding) -> DataType {
    match expr {
        Expr::Column(c) => binding
            .resolve(c)
            .map(|i| binding.dtype(i))
            .unwrap_or(DataType::Str),
        Expr::Literal(Literal::Int(_)) => DataType::Int,
        Expr::Literal(Literal::Float(_)) => DataType::Float,
        Expr::Literal(Literal::Str(_)) => DataType::Str,
        Expr::Literal(Literal::Bool(_)) => DataType::Bool,
        Expr::Literal(Literal::Null) => DataType::Str,
        Expr::Cmp(..) | Expr::And(..) | Expr::Or(..) | Expr::Not(_) => DataType::Bool,
        Expr::Arith(l, op, r) => {
            if *op != ArithOp::Div
                && infer_type(l, binding) == DataType::Int
                && infer_type(r, binding) == DataType::Int
            {
                DataType::Int
            } else {
                DataType::Float
            }
        }
        Expr::Neg(e) => infer_type(e, binding),
    }
}

// ---------------------------------------------------------------------------
// Aggregates
// ---------------------------------------------------------------------------

fn eval_agg(func: AggFunc, arg: Option<&Compiled>, members: &[Record]) -> Value {
    match func {
        AggFunc::Count => {
            let n = match arg {
                None => members.len(),
                Some(e) => members.iter().filter(|r| !e(r).is_null()).count(),
            };
            Value::Int(n as i64)
        }
        AggFunc::Sum => {
            let e = arg.expect("SUM has an argument");
            let mut int_sum = 0i64;
            let mut float_sum = 0.0f64;
            let mut any_float = false;
            let mut any = false;
            for r in members {
                match e(r) {
                    Value::Int(i) => {
                        any = true;
                        int_sum = int_sum.wrapping_add(i);
                        float_sum += i as f64;
                    }
                    Value::Float(x) => {
                        any = true;
                        any_float = true;
                        float_sum += x;
                    }
                    _ => {}
                }
            }
            if !any {
                Value::Null
            } else if any_float {
                Value::Float(float_sum)
            } else {
                Value::Int(int_sum)
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let e = arg.expect("MIN/MAX has an argument");
            let mut best: Option<Value> = None;
            for r in members {
                let v = e(r);
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = match eval_cmp(&v, CmpOp::Lt, &b) {
                            Value::Bool(lt) => {
                                if func == AggFunc::Min {
                                    lt
                                } else {
                                    !lt
                                }
                            }
                            _ => false,
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best.unwrap_or(Value::Null)
        }
        AggFunc::Avg => {
            let e = arg.expect("AVG has an argument");
            let (mut sum, mut n) = (0.0f64, 0usize);
            for r in members {
                match e(r) {
                    Value::Int(i) => {
                        sum += i as f64;
                        n += 1;
                    }
                    Value::Float(x) => {
                        sum += x;
                        n += 1;
                    }
                    _ => {}
                }
            }
            if n == 0 {
                Value::Null
            } else {
                Value::Float(sum / n as f64)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------------

/// Injective scalar encoding of a composite grouping key.
fn composite_key(r: &Record, indices: &[usize]) -> Value {
    let mut s = String::new();
    for &i in indices {
        match r.get(i) {
            Ok(Value::Null) => s.push('N'),
            Ok(Value::Bool(b)) => s.push_str(if *b { "B1" } else { "B0" }),
            Ok(Value::Int(v)) => {
                s.push('I');
                s.push_str(&v.to_string());
            }
            Ok(Value::Float(x)) => {
                s.push('F');
                s.push_str(&format!("{:016x}", x.to_bits()));
            }
            Ok(Value::Str(v)) => {
                s.push('S');
                s.push_str(&v.len().to_string());
                s.push(':');
                s.push_str(v);
            }
            Err(_) => s.push('?'),
        }
        s.push('\u{1f}');
    }
    Value::str(s)
}

fn plan_query(catalog: &QueryCatalog, query: &Query) -> Result<PlannedQuery> {
    let from_def = catalog.table(&query.from)?;
    let mut b = LogicalPlanBuilder::new();

    let source_payload = |def: &TableDef, name: &str| match &def.source {
        TableSource::Collection(data) => LogicalPayload::Source {
            name: name.to_string(),
            data: data.clone(),
        },
        TableSource::Storage(id) => LogicalPayload::StorageSource {
            dataset_id: id.clone(),
        },
    };

    let from_node = b.add_simple(
        format!("scan-{}", query.from),
        source_payload(from_def, &query.from),
        vec![],
    );
    let from_binding = RowBinding::from_table(&query.from, &from_def.schema);

    // JOIN: resolve each key against the side it belongs to (accepting
    // either order in the ON clause).
    let (mut node, binding) = match &query.join {
        None => (from_node, from_binding),
        Some(join) => {
            let right_def = catalog.table(&join.table)?;
            let right_node = b.add_simple(
                format!("scan-{}", join.table),
                source_payload(right_def, &join.table),
                vec![],
            );
            let right_binding = RowBinding::from_table(&join.table, &right_def.schema);
            let (lk, rk) = match (
                from_binding.resolve(&join.left),
                right_binding.resolve(&join.right),
            ) {
                (Ok(l), Ok(r)) => (l, r),
                _ => {
                    // Try the reversed orientation.
                    let l = from_binding.resolve(&join.right).map_err(|_| {
                        RheemError::Query(format!(
                            "join keys `{}` / `{}` do not match the joined tables",
                            render_col(&join.left),
                            render_col(&join.right)
                        ))
                    })?;
                    let r = right_binding.resolve(&join.left)?;
                    (l, r)
                }
            };
            let joined = b.add_simple(
                "join",
                LogicalPayload::Join {
                    left_key: KeyUdf::field(lk),
                    right_key: KeyUdf::field(rk),
                },
                vec![from_node, right_node],
            );
            (joined, RowBinding::joined(&from_binding, &right_binding))
        }
    };

    // WHERE.
    if let Some(filter) = &query.filter {
        let pred = compile(filter, &binding)?;
        node = b.add_simple(
            "where",
            LogicalPayload::Filter(FilterUdf::new("where", move |r: &Record| truthy(&pred(r)))),
            vec![node],
        );
    }

    // SELECT (+ GROUP BY): produce the output rows and schema.
    let grouped = !query.group_by.is_empty() || query.has_aggregates();
    let (out_node, out_schema) = if grouped {
        plan_grouped_select(query, &binding, &mut b, node)?
    } else {
        plan_plain_select(query, &binding, &mut b, node)?
    };
    node = out_node;

    // HAVING (over output columns).
    let out_binding = RowBinding::from_output(&out_schema);
    if let Some(having) = &query.having {
        if !grouped {
            return Err(RheemError::Query(
                "HAVING requires GROUP BY or aggregates".into(),
            ));
        }
        let pred = compile(having, &out_binding)?;
        node = b.add_simple(
            "having",
            LogicalPayload::Filter(FilterUdf::new("having", move |r: &Record| truthy(&pred(r)))),
            vec![node],
        );
    }

    // ORDER BY (an output column or alias).
    if let Some(order) = &query.order_by {
        let idx = out_binding.resolve(&ColumnRef {
            table: None,
            column: order.column.clone(),
        })?;
        node = b.add_simple(
            "order-by",
            LogicalPayload::Sort {
                key: KeyUdf::field(idx),
                descending: order.descending,
            },
            vec![node],
        );
    }

    // LIMIT.
    if let Some(n) = query.limit {
        node = b.add_simple("limit", LogicalPayload::Limit { n }, vec![node]);
    }

    let sink = b.add_simple("collect", LogicalPayload::Collect, vec![node]);
    let logical = b.build()?;
    Ok(PlannedQuery {
        logical,
        schema: out_schema,
        sink: NodeId(sink.0),
    })
}

/// Output column name for an item (alias > column name > function name),
/// deduplicated with `_2`, `_3`, ... suffixes.
fn output_names(query: &Query, binding: &RowBinding) -> Vec<(String, DataType)> {
    let mut names: Vec<(String, DataType)> = Vec::new();
    let push = |name: String, dtype: DataType, names: &mut Vec<(String, DataType)>| {
        let mut candidate = name.clone();
        let mut k = 2;
        while names.iter().any(|(n, _)| *n == candidate) {
            candidate = format!("{name}_{k}");
            k += 1;
        }
        names.push((candidate, dtype));
    };
    for item in &query.select {
        match &item.expr {
            SelectExpr::Star => {
                for (_, name, dtype) in &binding.fields {
                    push(name.clone(), *dtype, &mut names);
                }
            }
            SelectExpr::Expr(e) => {
                let name = item.alias.clone().unwrap_or_else(|| match e {
                    Expr::Column(c) => c.column.clone(),
                    _ => "expr".to_string(),
                });
                push(name, infer_type(e, binding), &mut names);
            }
            SelectExpr::Agg(f, arg) => {
                let name = item.alias.clone().unwrap_or_else(|| f.name().to_string());
                let dtype = match f {
                    AggFunc::Count => DataType::Int,
                    AggFunc::Avg => DataType::Float,
                    _ => arg
                        .as_ref()
                        .map(|e| infer_type(e, binding))
                        .unwrap_or(DataType::Float),
                };
                push(name, dtype, &mut names);
            }
        }
    }
    names
}

fn plan_plain_select(
    query: &Query,
    binding: &RowBinding,
    b: &mut LogicalPlanBuilder,
    input: crate::logical::LogicalNodeId,
) -> Result<(crate::logical::LogicalNodeId, Schema)> {
    let names = output_names(query, binding);
    let schema = Schema::new(names.clone().into_iter().collect::<Vec<_>>());

    // `SELECT *` alone needs no projection at all.
    if query.select.len() == 1 && matches!(query.select[0].expr, SelectExpr::Star) {
        return Ok((input, schema));
    }

    let mut cells: Vec<Compiled> = Vec::new();
    let mut star_spans: Vec<(usize, usize)> = Vec::new(); // (cell position, width)
    for item in &query.select {
        match &item.expr {
            SelectExpr::Star => {
                star_spans.push((cells.len(), binding.fields.len()));
                for i in 0..binding.fields.len() {
                    cells.push(Arc::new(move |r: &Record| {
                        r.get(i).cloned().unwrap_or(Value::Null)
                    }));
                }
            }
            SelectExpr::Expr(e) => cells.push(compile(e, binding)?),
            SelectExpr::Agg(f, _) => {
                return Err(RheemError::Query(format!(
                    "aggregate {}() without GROUP BY must not be mixed with plain columns \
                     unless they are grouped",
                    f.name()
                )))
            }
        }
    }
    let projected = b.add_simple(
        "select",
        LogicalPayload::Map(MapUdf::new("select", move |r: &Record| {
            Record::new(cells.iter().map(|c| c(r)).collect())
        })),
        vec![input],
    );
    Ok((projected, schema))
}

fn plan_grouped_select(
    query: &Query,
    binding: &RowBinding,
    b: &mut LogicalPlanBuilder,
    input: crate::logical::LogicalNodeId,
) -> Result<(crate::logical::LogicalNodeId, Schema)> {
    // Resolve group columns.
    let group_indices: Vec<usize> = query
        .group_by
        .iter()
        .map(|c| binding.resolve(c))
        .collect::<Result<_>>()?;

    // Validate and compile select items.
    enum Cell {
        GroupCol(usize),
        Agg(AggFunc, Option<Compiled>),
    }
    let mut cells: Vec<Cell> = Vec::new();
    for item in &query.select {
        match &item.expr {
            SelectExpr::Star => {
                return Err(RheemError::Query(
                    "SELECT * is not allowed with GROUP BY / aggregates".into(),
                ))
            }
            SelectExpr::Expr(Expr::Column(c)) => {
                let idx = binding.resolve(c)?;
                if !group_indices.contains(&idx) {
                    return Err(RheemError::Query(format!(
                        "column `{}` must appear in GROUP BY or inside an aggregate",
                        render_col(c)
                    )));
                }
                cells.push(Cell::GroupCol(idx));
            }
            SelectExpr::Expr(_) => {
                return Err(RheemError::Query(
                    "grouped SELECT items must be plain group columns or aggregates".into(),
                ))
            }
            SelectExpr::Agg(f, arg) => {
                let compiled = arg.as_ref().map(|e| compile(e, binding)).transpose()?;
                cells.push(Cell::Agg(*f, compiled));
            }
        }
    }

    let names = output_names(query, binding);
    let schema = Schema::new(names.into_iter().collect::<Vec<_>>());

    let key_indices = group_indices.clone();
    let key = KeyUdf::new("group-key", move |r: &Record| {
        composite_key(r, &key_indices)
    });
    let group = GroupMapUdf::new("aggregate", move |_key: &Value, members: &[Record]| {
        let first = &members[0];
        let fields: Vec<Value> = cells
            .iter()
            .map(|cell| match cell {
                Cell::GroupCol(i) => first.get(*i).cloned().unwrap_or(Value::Null),
                Cell::Agg(f, arg) => eval_agg(*f, arg.as_ref(), members),
            })
            .collect();
        vec![Record::new(fields)]
    });
    let node = b.add_simple(
        "group-by",
        LogicalPayload::Group { key, group },
        vec![input],
    );
    Ok((node, schema))
}
