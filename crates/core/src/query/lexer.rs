//! Tokenizer for the declarative query language.

use crate::error::{Result, RheemError};

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// A bare identifier (case preserved; keywords are matched
    /// case-insensitively by the parser).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Lte,
    /// `>`
    Gt,
    /// `>=`
    Gte,
}

/// Tokenize a query string.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            ',' => {
                chars.next();
                tokens.push(Token::Comma);
            }
            '.' => {
                chars.next();
                tokens.push(Token::Dot);
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            '*' => {
                chars.next();
                tokens.push(Token::Star);
            }
            '+' => {
                chars.next();
                tokens.push(Token::Plus);
            }
            '-' => {
                chars.next();
                tokens.push(Token::Minus);
            }
            '/' => {
                chars.next();
                tokens.push(Token::Slash);
            }
            '=' => {
                chars.next();
                tokens.push(Token::Eq);
            }
            '!' => {
                chars.next();
                match chars.next() {
                    Some('=') => tokens.push(Token::Neq),
                    other => return Err(bad(format!("`!{}`", opt(other)))),
                }
            }
            '<' => {
                chars.next();
                match chars.peek() {
                    Some('=') => {
                        chars.next();
                        tokens.push(Token::Lte);
                    }
                    Some('>') => {
                        chars.next();
                        tokens.push(Token::Neq);
                    }
                    _ => tokens.push(Token::Lt),
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token::Gte);
                } else {
                    tokens.push(Token::Gt);
                }
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => {
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(c) => s.push(c),
                        None => return Err(bad("unterminated string literal".into())),
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                let mut is_float = false;
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        chars.next();
                    } else if c == '.' {
                        // Lookahead: `1.` followed by a digit is a float;
                        // otherwise treat the dot as punctuation.
                        let mut ahead = chars.clone();
                        ahead.next();
                        if ahead.peek().is_some_and(|d| d.is_ascii_digit()) {
                            is_float = true;
                            text.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    } else {
                        break;
                    }
                }
                if is_float {
                    tokens.push(Token::Float(
                        text.parse()
                            .map_err(|_| bad(format!("bad float `{text}`")))?,
                    ));
                } else {
                    tokens.push(Token::Int(
                        text.parse().map_err(|_| bad(format!("bad int `{text}`")))?,
                    ));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        ident.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(ident));
            }
            other => return Err(bad(format!("unexpected character `{other}`"))),
        }
    }
    Ok(tokens)
}

fn bad(msg: String) -> RheemError {
    RheemError::Query(format!("lex error: {msg}"))
}

fn opt(c: Option<char>) -> String {
    c.map(String::from).unwrap_or_else(|| "<eof>".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_full_query() {
        let toks = lex("SELECT a, SUM(b) FROM t WHERE x >= 1.5 AND y != 'it''s'").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert!(toks.contains(&Token::Float(1.5)));
        assert!(toks.contains(&Token::Gte));
        assert!(toks.contains(&Token::Neq));
        assert!(toks.contains(&Token::Str("it's".into())));
    }

    #[test]
    fn distinguishes_dots_from_floats() {
        assert_eq!(
            lex("t.col 1.5 2.x").unwrap(),
            vec![
                Token::Ident("t".into()),
                Token::Dot,
                Token::Ident("col".into()),
                Token::Float(1.5),
                Token::Int(2),
                Token::Dot,
                Token::Ident("x".into()),
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            lex("< <= > >= = != <>").unwrap(),
            vec![
                Token::Lt,
                Token::Lte,
                Token::Gt,
                Token::Gte,
                Token::Eq,
                Token::Neq,
                Token::Neq
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a ? b").is_err());
        assert!(lex("'unterminated").is_err());
        assert!(lex("a ! b").is_err());
    }
}
