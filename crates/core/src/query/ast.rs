//! Abstract syntax of the declarative query language.
//!
//! Grammar (informal):
//!
//! ```text
//! query      := SELECT items FROM ident [join] [WHERE expr]
//!               [GROUP BY columns] [HAVING expr]
//!               [ORDER BY ident [ASC|DESC]] [LIMIT int]
//! join       := JOIN ident ON column = column
//! items      := item (',' item)*         item := ( '*' | expr | agg ) [AS ident]
//! agg        := (COUNT|SUM|MIN|MAX|AVG) '(' ('*' | expr) ')'
//! expr       := or ;  or := and (OR and)* ;  and := not (AND not)*
//! not        := [NOT] cmp ;  cmp := add (cmpop add)?
//! add        := mul (('+'|'-') mul)* ;  mul := unary (('*'|'/') unary)*
//! unary      := ['-'] primary
//! primary    := literal | column | '(' expr ')'
//! column     := ident ['.' ident]
//! ```

/// A literal value.
#[derive(Clone, Debug, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `TRUE` / `FALSE`.
    Bool(bool),
    /// `NULL`.
    Null,
}

/// A (possibly qualified) column reference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnRef {
    /// Optional table qualifier.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Lte,
    /// `>`
    Gt,
    /// `>=`
    Gte,
}

/// Arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A scalar expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal.
    Literal(Literal),
    /// Binary comparison.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Binary arithmetic.
    Arith(Box<Expr>, ArithOp, Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
}

/// Aggregate functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `AVG`
    Avg,
}

impl AggFunc {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// One item of the SELECT list.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectExpr {
    /// `*` — every column of the row schema.
    Star,
    /// A scalar expression.
    Expr(Expr),
    /// An aggregate; `None` argument means `COUNT(*)`.
    Agg(AggFunc, Option<Expr>),
}

/// A SELECT item with an optional alias.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectItem {
    /// The expression.
    pub expr: SelectExpr,
    /// `AS alias`.
    pub alias: Option<String>,
}

/// `JOIN table ON left = right`.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinClause {
    /// Joined table name.
    pub table: String,
    /// Left key column.
    pub left: ColumnRef,
    /// Right key column.
    pub right: ColumnRef,
}

/// `ORDER BY column [ASC|DESC]`.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderBy {
    /// Output-column name (or alias) to sort on.
    pub column: String,
    /// Descending?
    pub descending: bool,
}

/// A parsed query.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// SELECT list.
    pub select: Vec<SelectItem>,
    /// FROM table.
    pub from: String,
    /// Optional equi-join.
    pub join: Option<JoinClause>,
    /// WHERE predicate.
    pub filter: Option<Expr>,
    /// GROUP BY columns.
    pub group_by: Vec<ColumnRef>,
    /// HAVING predicate (over output columns).
    pub having: Option<Expr>,
    /// ORDER BY clause.
    pub order_by: Option<OrderBy>,
    /// LIMIT clause.
    pub limit: Option<usize>,
}

impl Query {
    /// True iff any SELECT item is an aggregate.
    pub fn has_aggregates(&self) -> bool {
        self.select
            .iter()
            .any(|i| matches!(i.expr, SelectExpr::Agg(..)))
    }
}
