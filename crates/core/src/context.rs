//! [`RheemContext`]: the user-facing entry point tying the three layers
//! together.
//!
//! A context owns the platform registry, the multi-platform optimizer, the
//! executor configuration, and the (optional) storage service. Typical use:
//!
//! ```ignore
//! let ctx = RheemContext::new()
//!     .with_platform(Arc::new(JavaPlatform::new()))
//!     .with_platform(Arc::new(SparkLikePlatform::new(8)));
//! let result = ctx.execute(plan)?;           // optimize + run
//! println!("{}", result.stats.total_wall.as_millis());
//! ```

use std::sync::Arc;
use std::time::Duration;

use crate::error::Result;
use crate::executor::{
    Executor, ExecutorConfig, JobResult, ProgressListener, ScheduleMode, WaveGate,
};
use crate::fault::{CancelToken, FaultPolicy, PlatformHealth, Sleeper};
use crate::kernels::parallel::KernelParallelism;
use crate::logical::LogicalPlan;
use crate::observe::Observability;
use crate::optimizer::{MultiPlatformOptimizer, PlanCache, ReplanPolicy};
use crate::plan::{ExecutionPlan, PhysicalPlan};
use crate::platform::{
    ExecutionContext, FailureInjector, Platform, PlatformRegistry, StorageService,
};

/// The top-level RHEEM handle.
#[derive(Clone, Default)]
pub struct RheemContext {
    platforms: PlatformRegistry,
    optimizer: MultiPlatformOptimizer,
    executor_config: ExecutorConfig,
    storage: Option<Arc<dyn StorageService>>,
    failure_injector: Option<Arc<FailureInjector>>,
    listeners: Vec<Arc<dyn ProgressListener>>,
    observability: Option<Arc<Observability>>,
    replan_policy: Option<ReplanPolicy>,
    fault_policy: Option<FaultPolicy>,
    platform_health: Option<Arc<PlatformHealth>>,
    sleeper: Option<Arc<dyn Sleeper>>,
    kernel_parallelism: Option<KernelParallelism>,
    wave_gate: Option<Arc<dyn WaveGate>>,
    cancel: Option<CancelToken>,
}

impl RheemContext {
    /// An empty context; register at least one platform before executing.
    pub fn new() -> Self {
        RheemContext::default()
    }

    /// Register a processing platform.
    pub fn with_platform(mut self, platform: Arc<dyn Platform>) -> Self {
        self.platforms.register(platform);
        self
    }

    /// Attach a storage service (enables `StorageSource`/`StorageSink`).
    pub fn with_storage(mut self, storage: Arc<dyn StorageService>) -> Self {
        self.storage = Some(storage);
        self
    }

    /// Replace the optimizer (cost models, mappings, config).
    pub fn with_optimizer(mut self, optimizer: MultiPlatformOptimizer) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Pin all operators to one platform.
    pub fn force_platform(mut self, platform: impl Into<String>) -> Self {
        self.optimizer = self.optimizer.force_platform(platform);
        self
    }

    /// Set a wall-clock budget for executed jobs.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.executor_config.timeout = Some(timeout);
        self
    }

    /// Set the retry budget per task atom.
    pub fn with_max_retries(mut self, retries: usize) -> Self {
        self.executor_config.max_retries = retries;
        self
    }

    /// Cap how many task atoms may run concurrently within a scheduling
    /// wave (defaults to the host's available parallelism).
    pub fn with_max_parallel_atoms(mut self, atoms: usize) -> Self {
        self.executor_config.max_parallel_atoms = atoms;
        self
    }

    /// Choose wave-parallel (default) or sequential atom scheduling.
    pub fn with_schedule_mode(mut self, mode: ScheduleMode) -> Self {
        self.executor_config.mode = mode;
        self
    }

    /// Set the intra-atom kernel parallelism knob (morsel-driven parallel
    /// kernels; see `DESIGN.md` §10). Complements
    /// [`with_max_parallel_atoms`](Self::with_max_parallel_atoms): that
    /// caps how many atoms run concurrently, this caps how many threads
    /// each atom's kernels may use — the executor divides the kernel
    /// budget by the concurrent-atom count so the two never multiply.
    /// Defaults to `RHEEM_KERNEL_THREADS` or the host's available
    /// parallelism. Outputs are byte-identical at any setting.
    pub fn with_kernel_parallelism(mut self, parallelism: KernelParallelism) -> Self {
        self.kernel_parallelism = Some(parallelism);
        self
    }

    /// Enable adaptive mid-job re-optimization: after each committed
    /// wave the executor compares observed boundary cardinalities with
    /// the plan's estimates and, past `policy.threshold`, re-enumerates
    /// the unexecuted suffix (at most `policy.max_replans` times per
    /// job). Outputs are unaffected; only platform choices may change.
    pub fn with_replan_policy(mut self, policy: ReplanPolicy) -> Self {
        self.replan_policy = Some(policy);
        self
    }

    /// Install fault tolerance (see `DESIGN.md` §9): backoff between
    /// retry attempts, per-platform circuit breakers shared across this
    /// context's jobs, and — when `policy.failover` is set — failover
    /// re-planning that re-routes the unexecuted suffix of a job around
    /// a failed platform instead of failing the job.
    pub fn with_fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.platform_health = Some(Arc::new(PlatformHealth::new(policy.breaker)));
        self.fault_policy = Some(policy);
        self
    }

    /// Replace how retry backoff delays are slept. Tests install a
    /// [`crate::fault::VirtualSleeper`] to observe intended delays
    /// without paying wall-clock for them.
    pub fn with_sleeper(mut self, sleeper: Arc<dyn Sleeper>) -> Self {
        self.sleeper = Some(sleeper);
        self
    }

    /// The per-platform circuit breakers, when a fault policy is
    /// installed. Shared across every job this context runs (and across
    /// clones of the context), so a platform marked down by one job is
    /// avoided by the next.
    pub fn platform_health(&self) -> Option<&Arc<PlatformHealth>> {
        self.platform_health.as_ref()
    }

    /// Install a failure injector (tests / chaos experiments).
    pub fn with_failure_injector(mut self, injector: Arc<FailureInjector>) -> Self {
        self.failure_injector = Some(injector);
        self
    }

    /// Observe job progress (per-atom start/retry/complete callbacks).
    /// May be called repeatedly; all listeners receive all callbacks.
    pub fn with_progress_listener(mut self, listener: Arc<dyn ProgressListener>) -> Self {
        self.listeners.push(listener);
        self
    }

    /// Attach an [`Observability`] hub: its metrics registry and trace
    /// sinks receive every job this context runs, and — the calibration
    /// feedback loop — observed per-operator runtimes and cardinalities
    /// are folded into the optimizer's [`crate::observe::CostCalibration`]
    /// table after each successful job, correcting cost estimates on the
    /// next optimization pass.
    pub fn with_observability(mut self, observe: Arc<Observability>) -> Self {
        self.optimizer.metrics = Some(observe.metrics().clone());
        self.optimizer.calibration = observe.calibration().clone();
        self.observability = Some(observe);
        self
    }

    /// The attached observability hub, if any.
    pub fn observability(&self) -> Option<&Arc<Observability>> {
        self.observability.as_ref()
    }

    /// Attach a plan cache: jobs whose plans share a canonical fingerprint
    /// reuse each other's enumeration results (see
    /// [`crate::optimizer::cache`]). Share the same `Arc` across context
    /// clones to share the cache — the server does this for all sessions
    /// of one service.
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.optimizer.plan_cache = Some(cache);
        self
    }

    /// The attached plan cache, if any.
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.optimizer.plan_cache.as_ref()
    }

    /// Confine this context's opaque (closure-identity) plan fingerprints
    /// to `scope`. The server allocates one scope per session, which is
    /// what keeps opaque cache entries from ever being shared across
    /// sessions; `0` (the default) is the embedded single-tenant scope.
    pub fn with_cache_scope(mut self, scope: u64) -> Self {
        self.optimizer.cache_scope = scope;
        self
    }

    /// Install a [`WaveGate`] bracketing every scheduling wave of every
    /// job this context runs (external fair-share scheduling).
    pub fn with_wave_gate(mut self, gate: Arc<dyn WaveGate>) -> Self {
        self.wave_gate = Some(gate);
        self
    }

    /// Install a cooperative [`CancelToken`] observed by every job this
    /// context runs: checked at wave boundaries, between retry attempts,
    /// between interpreted operators, and at morsel granularity inside
    /// parallel kernels (see `DESIGN.md` §14). Cancelling the token makes
    /// in-flight jobs fail with [`crate::RheemError::Cancelled`].
    pub fn with_cancel_token(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The installed cancel token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The registered platforms.
    pub fn platforms(&self) -> &PlatformRegistry {
        &self.platforms
    }

    /// The optimizer in use.
    pub fn optimizer(&self) -> &MultiPlatformOptimizer {
        &self.optimizer
    }

    /// Mutable access to the optimizer (to hint cardinalities, adjust
    /// mappings, or tweak movement prices).
    pub fn optimizer_mut(&mut self) -> &mut MultiPlatformOptimizer {
        &mut self.optimizer
    }

    /// The ambient execution context handed to platforms.
    pub fn execution_context(&self) -> ExecutionContext {
        ExecutionContext {
            storage: self.storage.clone(),
            failure_injector: self.failure_injector.clone(),
            kernel_parallelism: self.kernel_parallelism.unwrap_or_default(),
            cancel: self.cancel.clone(),
        }
    }

    /// Optimize a physical plan without running it.
    pub fn optimize(&self, plan: PhysicalPlan) -> Result<ExecutionPlan> {
        self.optimizer.optimize(plan, &self.platforms)
    }

    /// Optimize a logical plan without running it.
    pub fn optimize_logical(&self, plan: &LogicalPlan) -> Result<ExecutionPlan> {
        self.optimizer.optimize_logical(plan, &self.platforms)
    }

    /// Run an already-optimized execution plan.
    pub fn execute_plan(&self, plan: &ExecutionPlan) -> Result<JobResult> {
        let mut executor = Executor::new(self.platforms.clone())
            .with_movement(self.optimizer.movement.channelized(&self.platforms))
            .with_config(self.executor_config.clone());
        for listener in &self.listeners {
            executor = executor.with_listener(listener.clone());
        }
        if let Some(observe) = &self.observability {
            executor = executor.with_listener(observe.clone() as Arc<dyn ProgressListener>);
        }
        if let Some(policy) = self.replan_policy {
            executor = executor.with_replanner(self.optimizer.replanner(policy));
        }
        if let Some(fp) = &self.fault_policy {
            executor = executor.with_backoff(fp.backoff);
            if let Some(health) = &self.platform_health {
                if let Some(observe) = &self.observability {
                    health.mirror_to(observe.metrics().clone());
                }
                executor = executor.with_platform_health(health.clone());
            }
            if fp.failover {
                // Failover shares the drift re-planner's machinery but
                // not its budget: `max_failovers` is counted separately.
                let replanner = self
                    .optimizer
                    .replanner(self.replan_policy.unwrap_or_default());
                executor = executor.with_failover(replanner, fp.max_failovers);
            }
        }
        if let Some(sleeper) = &self.sleeper {
            executor = executor.with_sleeper(sleeper.clone());
        }
        if let Some(gate) = &self.wave_gate {
            executor = executor.with_wave_gate(gate.clone());
        }
        if let Some(cancel) = &self.cancel {
            executor = executor.with_cancel_token(cancel.clone());
        }
        let result = executor.execute(plan, &self.execution_context())?;
        if self.observability.is_some() {
            // Close the feedback loop: fold this job's observed kernel
            // runtimes and true cardinalities into the calibration table
            // the optimizer consults on its next pass. Only successful
            // jobs get here, and only committed attempts carry
            // observations, so failed attempts cannot pollute the table.
            // When the job re-planned mid-flight, the effective plan
            // carries the assignments the atoms actually ran under.
            self.optimizer.calibration.absorb(
                result.effective_plan.as_ref().unwrap_or(plan),
                &result.stats,
            );
        }
        Ok(result)
    }

    /// Optimize and run a physical plan.
    pub fn execute(&self, plan: PhysicalPlan) -> Result<JobResult> {
        let exec = self.optimize(plan)?;
        self.execute_plan(&exec)
    }

    /// Lower, optimize, and run a logical plan.
    pub fn execute_logical(&self, plan: &LogicalPlan) -> Result<JobResult> {
        let exec = self.optimize_logical(plan)?;
        self.execute_plan(&exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Record;
    use crate::plan::PlanBuilder;
    use crate::platform::{AtomInputs, AtomResult, ProcessingProfile};
    use crate::rec;

    /// A minimal interpreter-backed platform for core-only tests.
    struct MockPlatform(&'static str);
    impl Platform for MockPlatform {
        fn name(&self) -> &str {
            self.0
        }
        fn profile(&self) -> ProcessingProfile {
            ProcessingProfile::SingleProcess
        }
        fn supports(&self, _op: &crate::PhysicalOp) -> bool {
            true
        }
        fn cost_model(&self) -> Arc<dyn crate::cost::PlatformCostModel> {
            Arc::new(crate::cost::LinearCostModel::single_threaded(1e-4))
        }
        fn execute_atom(
            &self,
            plan: &crate::PhysicalPlan,
            atom: &crate::TaskAtom,
            inputs: &AtomInputs,
            ctx: &ExecutionContext,
        ) -> Result<AtomResult> {
            let run = crate::interpreter::run_fragment(plan, &atom.nodes, inputs, ctx, None)?;
            Ok(AtomResult {
                outputs: atom
                    .outputs
                    .iter()
                    .filter_map(|n| run.outputs.get(n).map(|d| (*n, d.clone())))
                    .collect(),
                records_processed: run.records_processed,
                simulated_overhead_ms: 0.0,
                simulated_elapsed_ms: 0.0,
                node_observations: run.observations,
            })
        }
    }

    fn tiny_plan() -> crate::PhysicalPlan {
        let mut b = PlanBuilder::new();
        let src = b.collection("s", vec![rec![1i64], rec![2i64]]);
        b.collect(src);
        b.build().unwrap()
    }

    #[test]
    fn context_without_platforms_cannot_optimize() {
        let ctx = RheemContext::new();
        assert!(ctx.optimize(tiny_plan()).is_err());
    }

    #[test]
    fn reregistering_a_platform_name_replaces_it() {
        let ctx = RheemContext::new()
            .with_platform(Arc::new(MockPlatform("m")))
            .with_platform(Arc::new(MockPlatform("m")));
        assert_eq!(ctx.platforms().all().len(), 1);
        assert_eq!(ctx.platforms().names(), vec!["m"]);
    }

    #[test]
    fn end_to_end_on_a_mock_platform() {
        let ctx = RheemContext::new().with_platform(Arc::new(MockPlatform("m")));
        let result = ctx.execute(tiny_plan()).unwrap();
        assert_eq!(result.single().unwrap().len(), 2);
        assert_eq!(result.stats.platforms_used(), vec!["m"]);
        // Stats explain renders without panicking and mentions the platform.
        assert!(result.stats.explain().contains('m'));
    }

    #[test]
    fn forced_platform_must_exist() {
        let ctx = RheemContext::new()
            .with_platform(Arc::new(MockPlatform("m")))
            .force_platform("nope");
        assert!(matches!(
            ctx.execute(tiny_plan()),
            Err(crate::RheemError::UnknownPlatform(_))
        ));
    }

    #[test]
    fn execution_context_carries_storage_and_injector() {
        use crate::platform::{FailureInjector, MemoryStorageService};
        let ctx = RheemContext::new()
            .with_storage(Arc::new(MemoryStorageService::new()))
            .with_failure_injector(Arc::new(FailureInjector::none()));
        let ec = ctx.execution_context();
        assert!(ec.storage.is_some());
        assert!(ec.failure_injector.is_some());
    }

    #[test]
    fn single_on_multi_sink_job_is_an_error() {
        let ctx = RheemContext::new().with_platform(Arc::new(MockPlatform("m")));
        let mut b = PlanBuilder::new();
        let src = b.collection("s", vec![rec![1i64]]);
        b.collect(src);
        b.collect(src);
        let result = ctx.execute(b.build().unwrap()).unwrap();
        assert_eq!(result.outputs.len(), 2);
        assert!(result.single().is_err());
    }

    #[test]
    fn max_retries_zero_fails_on_first_injected_failure() {
        use crate::platform::FailureInjector;
        let ctx = RheemContext::new()
            .with_platform(Arc::new(MockPlatform("m")))
            .with_failure_injector(Arc::new(FailureInjector::fail_next("m", 1)))
            .with_max_retries(0);
        assert!(ctx.execute(tiny_plan()).is_err());
    }

    #[test]
    fn a_pre_cancelled_token_aborts_before_any_work() {
        use crate::error::CancelReason;
        use crate::fault::CancelToken;
        let token = CancelToken::new();
        token.cancel(CancelReason::Explicit);
        let obs = Arc::new(crate::observe::Observability::new());
        let ctx = RheemContext::new()
            .with_platform(Arc::new(MockPlatform("m")))
            .with_observability(obs.clone())
            .with_cancel_token(token);
        let err = ctx.execute(tiny_plan()).unwrap_err();
        assert!(matches!(
            err,
            crate::RheemError::Cancelled {
                reason: CancelReason::Explicit
            }
        ));
        assert_eq!(err.classify(), crate::ErrorKind::Cancelled);
        assert_eq!(obs.metrics().counter_value("executor.cancelled"), 1);
    }

    #[test]
    fn an_expired_deadline_trips_the_cancel_token() {
        use crate::error::CancelReason;
        use crate::fault::CancelToken;
        let token = CancelToken::new();
        let ctx = RheemContext::new()
            .with_platform(Arc::new(MockPlatform("m")))
            .with_cancel_token(token.clone())
            .with_timeout(Duration::ZERO);
        let err = ctx.execute(tiny_plan()).unwrap_err();
        assert!(matches!(err, crate::RheemError::BudgetExceeded(_)));
        // The deadline gate also trips the token, so morsel loops of any
        // in-flight sibling atoms would stop promptly.
        assert_eq!(token.reason(), Some(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn a_panicking_udf_fails_cleanly_and_the_context_survives() {
        use crate::udf::MapUdf;
        let obs = Arc::new(crate::observe::Observability::new());
        let ctx = RheemContext::new()
            .with_platform(Arc::new(MockPlatform("m")))
            .with_observability(obs.clone());
        let mut b = PlanBuilder::new();
        let src = b.collection("s", vec![rec![1i64], rec![2i64]]);
        let m = b.map(
            src,
            MapUdf::new("boom", |r| {
                if r.int(0).unwrap() == 2 {
                    panic!("poisoned udf");
                }
                r.clone()
            }),
        );
        b.collect(m);
        let err = ctx.execute(b.build().unwrap()).unwrap_err();
        match &err {
            crate::RheemError::Panic { platform, message } => {
                assert_eq!(platform, "m");
                assert!(message.contains("poisoned udf"), "{message}");
            }
            other => panic!("expected Panic, got {other}"),
        }
        assert_eq!(err.classify(), crate::ErrorKind::Permanent { panic: true });
        assert_eq!(obs.metrics().counter_value("executor.panics_caught"), 1);
        // The caught panic never unwound through the scheduler: the same
        // context immediately runs the next job.
        let ok = ctx.execute(tiny_plan()).unwrap();
        assert_eq!(ok.single().unwrap().len(), 2);
    }

    #[test]
    fn backoff_naps_clamp_to_the_remaining_deadline() {
        use crate::fault::{BackoffPolicy, FaultPolicy, VirtualSleeper};
        use crate::platform::FailureInjector;
        let sleeper = Arc::new(VirtualSleeper::new());
        let mut policy = FaultPolicy::instant();
        // A fixed 10 s backoff against a 50 ms deadline: unclamped, the
        // single retry nap alone would overshoot the budget 200-fold.
        policy.backoff = BackoffPolicy {
            base: Duration::from_secs(10),
            multiplier: 1.0,
            max: Duration::from_secs(10),
            jitter: 0.0,
            seed: 0,
        };
        let ctx = RheemContext::new()
            .with_platform(Arc::new(MockPlatform("m")))
            .with_failure_injector(Arc::new(FailureInjector::fail_next("m", 1)))
            .with_fault_policy(policy)
            .with_sleeper(sleeper.clone())
            .with_timeout(Duration::from_millis(50));
        ctx.execute(tiny_plan()).unwrap();
        let naps = sleeper.naps();
        assert_eq!(naps.len(), 1);
        assert!(naps[0] <= Duration::from_millis(50), "{:?}", naps[0]);
    }

    #[test]
    fn records_are_preserved_through_mock_execution() {
        let ctx = RheemContext::new().with_platform(Arc::new(MockPlatform("m")));
        let mut b = PlanBuilder::new();
        let src = b.collection("s", vec![rec![1i64, "a"], rec![2i64, "b"]]);
        let sink = b.collect(src);
        let result = ctx.execute(b.build().unwrap()).unwrap();
        let out: &Record = &result.outputs[&sink].records()[1];
        assert_eq!(out.str(1).unwrap(), "b");
    }
}
