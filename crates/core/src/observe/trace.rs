//! Structured trace spans for jobs → waves → atoms → operator kernels.
//!
//! Spans are plain records emitted through a pluggable [`TraceSink`]; the
//! executor's listener callbacks drive emission, so parallel atoms
//! interleave safely (each span is recorded atomically, and tree structure
//! lives in the `parent` links rather than in emission order). The
//! [`canonical_tree`] helper renders a trace as a *schedule-independent*
//! tree so tests can assert that sequential and parallel runs of the same
//! plan produced identical work.

use std::collections::{BTreeMap, VecDeque};

use parking_lot::Mutex;

/// What level of the execution hierarchy a span describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// One `execute` call end to end.
    Job,
    /// One scheduling wave of the executor.
    Wave,
    /// One mid-job re-optimization of the unexecuted suffix.
    Replan,
    /// How the executed plan was enumerated when not by the default
    /// greedy DP (lattice v2 or its budget-exhausted greedy fallback).
    Enumeration,
    /// One failover re-plan around a failed platform.
    Failover,
    /// A job abandoned through its cancel token (client disconnect,
    /// deadline, shutdown, or an explicit `CANCEL`).
    Cancel,
    /// A panic caught at the atom boundary and converted into a clean
    /// permanent error (see `DESIGN.md` §14).
    Panic,
    /// One task atom (a platform-homogeneous plan fragment).
    Atom,
    /// One operator kernel inside an atom.
    Kernel,
}

impl SpanKind {
    /// Lower-case label used in rendered output.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanKind::Job => "job",
            SpanKind::Wave => "wave",
            SpanKind::Replan => "replan",
            SpanKind::Enumeration => "enumeration",
            SpanKind::Failover => "failover",
            SpanKind::Cancel => "cancel",
            SpanKind::Panic => "panic",
            SpanKind::Atom => "atom",
            SpanKind::Kernel => "kernel",
        }
    }
}

/// One completed span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Unique id within the emitting [`super::Observability`] instance.
    pub id: u64,
    /// Parent span id; `None` for the job root.
    pub parent: Option<u64>,
    /// Hierarchy level.
    pub kind: SpanKind,
    /// Human-readable label (`atom-3`, `Map(inc)`, ...).
    pub label: String,
    /// Platform that ran the work, or empty when not applicable.
    pub platform: String,
    /// Observed duration in (possibly simulated) milliseconds.
    pub elapsed_ms: f64,
    /// Records produced by the span's work.
    pub records_out: u64,
    /// Parallel kernel work units (morsels) under this span: the kernel's
    /// own count for kernel spans, the sum over kernels for atom spans,
    /// 0 where not applicable. Excluded from [`canonical_tree`] — like
    /// timing, it may legitimately differ between runs whose *work* is
    /// identical.
    pub morsels: u64,
}

/// Destination for completed spans. Implementations must tolerate
/// concurrent `record` calls — parallel atoms complete on worker threads.
pub trait TraceSink: Send + Sync {
    /// Accept one completed span.
    fn record(&self, span: &SpanRecord);
}

/// Bounded in-memory sink keeping the most recent `capacity` spans.
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    spans: Mutex<VecDeque<SpanRecord>>,
}

impl RingBufferSink {
    /// Create a ring buffer holding at most `capacity` spans (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            spans: Mutex::new(VecDeque::new()),
        }
    }

    /// Copy out the retained spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.spans.lock().iter().cloned().collect()
    }

    /// Drop all retained spans.
    pub fn clear(&self) {
        self.spans.lock().clear();
    }
}

impl TraceSink for RingBufferSink {
    fn record(&self, span: &SpanRecord) {
        let mut spans = self.spans.lock();
        if spans.len() == self.capacity {
            spans.pop_front();
        }
        spans.push_back(span.clone());
    }
}

/// Escape a string for inclusion in a JSON string literal.
///
/// Hand-rolled because the workspace deliberately carries no serde; covers
/// the JSON spec's mandatory escapes (quote, backslash, control chars).
#[cfg(feature = "observe-json")]
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON-lines sink: one JSON object per span, one span per line.
///
/// Gated behind the `observe-json` cargo feature (on by default) so a
/// `--no-default-features` build of the core stays free of file I/O in
/// the observability path.
#[cfg(feature = "observe-json")]
pub struct JsonLinesSink {
    writer: Mutex<Box<dyn std::io::Write + Send>>,
}

#[cfg(feature = "observe-json")]
impl JsonLinesSink {
    /// Wrap an arbitrary writer (e.g. a `Vec<u8>` in tests).
    pub fn new(writer: Box<dyn std::io::Write + Send>) -> Self {
        Self {
            writer: Mutex::new(writer),
        }
    }

    /// Create (truncate) `path` and stream spans into it.
    pub fn to_file(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(std::io::BufWriter::new(file))))
    }

    /// Flush buffered output to the underlying writer.
    pub fn flush(&self) -> std::io::Result<()> {
        self.writer.lock().flush()
    }

    /// Serialize one span as a JSON object (no trailing newline).
    pub fn to_json(span: &SpanRecord) -> String {
        let parent = match span.parent {
            Some(p) => p.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"id\":{},\"parent\":{},\"kind\":\"{}\",\"label\":\"{}\",\"platform\":\"{}\",\"elapsed_ms\":{:.6},\"records_out\":{},\"morsels\":{}}}",
            span.id,
            parent,
            span.kind.as_str(),
            json_escape(&span.label),
            json_escape(&span.platform),
            span.elapsed_ms,
            span.records_out,
            span.morsels,
        )
    }
}

#[cfg(feature = "observe-json")]
impl TraceSink for JsonLinesSink {
    fn record(&self, span: &SpanRecord) {
        let line = Self::to_json(span);
        let mut w = self.writer.lock();
        // A sink must never take the executor down; swallow I/O errors.
        let _ = writeln!(w, "{line}");
    }
}

/// Render a set of spans as a schedule-independent tree.
///
/// Two runs of the same plan — one sequential, one parallel — produce
/// different wave structure and different emission interleavings, but
/// identical *work*; a run with adaptive re-planning enabled additionally
/// emits [`SpanKind::Replan`] spans while still doing the same work when
/// nothing (or something output-preserving) was re-planned, and a run
/// that survived a platform outage emits [`SpanKind::Failover`] spans.
/// This renderer therefore:
///
/// - skips [`SpanKind::Wave`], [`SpanKind::Replan`],
///   [`SpanKind::Failover`], [`SpanKind::Enumeration`],
///   [`SpanKind::Cancel`], and [`SpanKind::Panic`] spans, re-parenting
///   their children to the nearest kept ancestor (the job);
/// - sorts siblings by their rendered text, erasing emission order;
/// - excludes timing fields, which legitimately differ between runs.
///
/// The result is a stable string equal across schedule modes — and across
/// re-planning on/off whenever the re-plan preserved the executed atoms —
/// used by the deterministic-replay tests.
pub fn canonical_tree(spans: &[SpanRecord]) -> String {
    let skipped = |kind: SpanKind| {
        matches!(
            kind,
            SpanKind::Wave
                | SpanKind::Replan
                | SpanKind::Failover
                | SpanKind::Enumeration
                | SpanKind::Cancel
                | SpanKind::Panic
        )
    };
    // Resolve each span's nearest kept (non-skipped) ancestor.
    let by_id: BTreeMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let effective_parent = |span: &SpanRecord| -> Option<u64> {
        let mut parent = span.parent;
        while let Some(pid) = parent {
            match by_id.get(&pid) {
                Some(p) if skipped(p.kind) => parent = p.parent,
                Some(_) => return Some(pid),
                None => return None,
            }
        }
        None
    };
    let mut children: BTreeMap<Option<u64>, Vec<&SpanRecord>> = BTreeMap::new();
    for span in spans {
        if skipped(span.kind) {
            continue;
        }
        children
            .entry(effective_parent(span))
            .or_default()
            .push(span);
    }

    fn render(
        span: &SpanRecord,
        children: &BTreeMap<Option<u64>, Vec<&SpanRecord>>,
        depth: usize,
        out: &mut String,
    ) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!(
            "{} {} [{}] out={}\n",
            span.kind.as_str(),
            span.label,
            span.platform,
            span.records_out
        ));
        if let Some(kids) = children.get(&Some(span.id)) {
            let mut lines: Vec<String> = kids
                .iter()
                .map(|k| {
                    let mut s = String::new();
                    render(k, children, depth + 1, &mut s);
                    s
                })
                .collect();
            lines.sort();
            for line in lines {
                out.push_str(&line);
            }
        }
    }

    let mut out = String::new();
    let mut roots: Vec<String> = children
        .get(&None)
        .map(|roots| {
            roots
                .iter()
                .map(|r| {
                    let mut s = String::new();
                    render(r, &children, 0, &mut s);
                    s
                })
                .collect()
        })
        .unwrap_or_default();
    roots.sort();
    for r in roots {
        out.push_str(&r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, kind: SpanKind, label: &str) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            kind,
            label: label.into(),
            platform: "java".into(),
            elapsed_ms: 1.5,
            records_out: id * 10,
            morsels: 0,
        }
    }

    #[test]
    fn ring_buffer_keeps_most_recent() {
        let sink = RingBufferSink::new(2);
        for i in 0..4 {
            sink.record(&span(i, None, SpanKind::Atom, "a"));
        }
        let kept = sink.snapshot();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].id, 2);
        assert_eq!(kept[1].id, 3);
        sink.clear();
        assert!(sink.snapshot().is_empty());
    }

    #[test]
    fn canonical_tree_skips_waves_and_sorts_siblings() {
        // job(0) -> wave(1) -> atom(3); job(0) -> wave(2) -> atom(4)
        let many_waves = vec![
            span(0, None, SpanKind::Job, "job"),
            span(1, Some(0), SpanKind::Wave, "wave-0"),
            span(2, Some(0), SpanKind::Wave, "wave-1"),
            span(3, Some(1), SpanKind::Atom, "atom-0"),
            span(4, Some(2), SpanKind::Atom, "atom-1"),
        ];
        // Same atoms, single wave, emitted in the opposite order.
        let one_wave = vec![
            span(4, Some(1), SpanKind::Atom, "atom-1"),
            span(3, Some(1), SpanKind::Atom, "atom-0"),
            span(1, Some(0), SpanKind::Wave, "wave-0"),
            span(0, None, SpanKind::Job, "job"),
        ];
        let a = canonical_tree(&many_waves);
        let b = canonical_tree(&one_wave);
        // records_out differs per span id in the helper, so trees match
        // only because structure and labels match.
        assert_eq!(a, b);
        assert!(a.contains("job job"));
        assert!(a.contains("  atom atom-0"));
        assert!(!a.contains("wave"));
    }

    #[cfg(feature = "observe-json")]
    #[test]
    fn json_lines_escapes_and_emits_one_line_per_span() {
        let s = SpanRecord {
            id: 7,
            parent: Some(3),
            kind: SpanKind::Kernel,
            label: "Map(\"quo\\ted\"\n)".into(),
            platform: "java".into(),
            elapsed_ms: 0.25,
            records_out: 9,
            morsels: 3,
        };
        let json = JsonLinesSink::to_json(&s);
        assert!(json.contains("\\\"quo\\\\ted\\\"\\n"));
        assert!(json.contains("\"parent\":3"));
        assert!(json.contains("\"kind\":\"kernel\""));
        assert!(json.contains("\"morsels\":3"));

        let sink = JsonLinesSink::new(Box::new(Vec::new()));
        sink.record(&s);
        sink.record(&span(1, None, SpanKind::Job, "job"));
        // Two records -> two lines; root parent serialises as null.
        let root_json = JsonLinesSink::to_json(&span(1, None, SpanKind::Job, "job"));
        assert!(root_json.contains("\"parent\":null"));
    }
}
