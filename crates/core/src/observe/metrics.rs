//! Lock-cheap metrics primitives: counters, gauges, and fixed-bound
//! histograms backed by atomics.
//!
//! Hot paths hold an `Arc` handle to the instrument and touch nothing but
//! the atomic itself — the registry's `Mutex`-guarded name table is only
//! consulted when a handle is first created (or when a snapshot is taken).
//! All mutation is *saturating*: instruments never wrap and never panic,
//! even in debug builds at `u64::MAX`-adjacent values.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// A monotonically increasing counter with saturating arithmetic.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Create a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta`, saturating at `u64::MAX` instead of wrapping.
    pub fn add(&self, delta: u64) {
        // `fetch_add` wraps (and `overflowing_add` debug-asserts nowhere,
        // but the wrapped value would corrupt the count); `fetch_update`
        // with `saturating_add` pins the counter at the ceiling instead.
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(delta))
            });
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Create a gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the gauge with `value`.
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed, ascending bucket upper bounds.
///
/// `bounds = [b0, b1, ..]` produces `bounds.len() + 1` buckets: values
/// `<= b0`, `<= b1`, .., and an implicit overflow bucket for everything
/// larger. Bounds are fixed at construction so recording is a linear scan
/// over a handful of `u64`s plus three saturating atomic adds — no
/// allocation, no locks, no wall-clock reads.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: Counter,
    sum: Counter,
}

impl Histogram {
    /// Create a histogram with the given ascending upper bounds.
    ///
    /// Bounds are sorted and deduplicated defensively so a sloppy caller
    /// cannot produce out-of-order buckets.
    pub fn new(bounds: &[u64]) -> Self {
        let mut bounds = bounds.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds,
            buckets,
            count: Counter::new(),
            sum: Counter::new(),
        }
    }

    /// Record one observation (saturating everywhere).
    pub fn record(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        let _ = self.buckets[idx].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_add(1))
        });
        self.count.inc();
        self.sum.add(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Saturating sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.get()
    }

    /// The configured upper bounds (ascending; overflow bucket implied).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts, one more entry than [`Histogram::bounds`].
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// Point-in-time copy of a histogram, for snapshots and assertions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Total observation count.
    pub count: u64,
    /// Saturating sum of observed values.
    pub sum: u64,
}

/// Point-in-time copy of every instrument in a registry, sorted by name
/// so two snapshots compare deterministically.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, ascending by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` pairs, ascending by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Render the snapshot as deterministic `name value` lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("counter {name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge {name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {name} count={} sum={} buckets={:?}\n",
                h.count, h.sum, h.buckets
            ));
        }
        out
    }
}

/// Named registry of counters, gauges, and histograms.
///
/// Handing out `Arc` handles keeps the registry lock off the hot path:
/// callers resolve a name once and then mutate the shared atomic directly.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<HashMap<String, Arc<Counter>>>,
    gauges: Mutex<HashMap<String, Arc<Gauge>>>,
    histograms: Mutex<HashMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock();
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::new()))
            .clone()
    }

    /// Get or create the histogram named `name` with the given bounds.
    ///
    /// The bounds of the *first* creation win; later callers share it.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(bounds)))
            .clone()
    }

    /// Current value of a counter, or 0 when it was never created.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.lock().get(name).map_or(0, |c| c.get())
    }

    /// Current value of a gauge, or 0 when it was never created.
    pub fn gauge_value(&self, name: &str) -> u64 {
        self.gauges.lock().get(name).map_or(0, |g| g.get())
    }

    /// Take a deterministic (name-sorted) snapshot of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, u64)> = self
            .gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        gauges.sort();
        let mut histograms: Vec<(String, HistogramSnapshot)> = self
            .histograms
            .lock()
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        bounds: v.bounds().to_vec(),
                        buckets: v.bucket_counts(),
                        count: v.count(),
                        sum: v.sum(),
                    },
                )
            })
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Render every instrument as deterministic text (see
    /// [`MetricsSnapshot::render`]).
    pub fn render(&self) -> String {
        self.snapshot().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        // Satellite: overflow hygiene. This runs in debug builds where a
        // plain `fetch_add` past u64::MAX would wrap silently; the
        // saturating update must pin at the ceiling without panicking.
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        c.add(usize::MAX as u64);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_saturates_near_max() {
        let h = Histogram::new(&[10, 100]);
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(usize::MAX as u64);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.bucket_counts(), vec![0, 0, 3]);
    }

    #[test]
    fn histogram_bucket_assignment() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [0, 10, 11, 100, 500, 5000] {
            h.record(v);
        }
        assert_eq!(h.bucket_counts(), vec![2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 5621);
    }

    #[test]
    fn histogram_bounds_are_sorted_and_deduped() {
        let h = Histogram::new(&[100, 10, 100]);
        assert_eq!(h.bounds(), &[10, 100]);
    }

    #[test]
    fn registry_shares_handles_and_snapshots_deterministically() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("b.second");
        let b = reg.counter("b.second");
        a.add(2);
        b.inc();
        reg.counter("a.first").add(7);
        reg.gauge("g").set(42);
        reg.histogram("h", &[1]).record(3);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a.first".into(), 7), ("b.second".into(), 3)]
        );
        assert_eq!(snap.gauges, vec![("g".into(), 42)]);
        assert_eq!(snap.histograms[0].1.buckets, vec![0, 1]);
        assert_eq!(reg.counter_value("missing"), 0);
        assert!(reg.render().contains("counter a.first 7\n"));
    }
}
