//! Observability: metrics, execution traces, and cost-model calibration.
//!
//! Three cooperating pieces (see `DESIGN.md` §7):
//!
//! - [`metrics`] — a lock-cheap [`MetricsRegistry`] of counters, gauges,
//!   and fixed-bound histograms. The executor, optimizer, and the storage
//!   hot buffer all report into one registry; hot paths only touch atomics.
//! - [`trace`] — structured spans (job → wave → atom → operator kernel)
//!   emitted through pluggable [`TraceSink`]s: an in-memory
//!   [`RingBufferSink`] and (behind the default `observe-json` feature) a
//!   [`JsonLinesSink`].
//! - [`calibrate`] — a [`CostCalibration`] table folding observed kernel
//!   runtimes and true cardinalities back into the optimizer's estimates
//!   as an EMA per `(operator, platform)` pair.
//!
//! [`Observability`] ties them together: it implements the executor's
//! [`ProgressListener`], so attaching one to a [`crate::RheemContext`]
//! (via `with_observability`) instruments every job the context runs and
//! enables the calibration feedback loop.

pub mod calibrate;
pub mod metrics;
pub mod trace;

pub use calibrate::{CalibrationEntry, CostCalibration, DEFAULT_ALPHA};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
#[cfg(feature = "observe-json")]
pub use trace::JsonLinesSink;
pub use trace::{canonical_tree, RingBufferSink, SpanKind, SpanRecord, TraceSink};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{CancelReason, ErrorKind, RheemError};
use crate::executor::{AtomStats, ExecutionStats, FailoverEvent, ProgressListener, ReplanEvent};
use crate::plan::NodeId;

/// What one operator kernel actually did inside a committed atom.
///
/// Platforms attach these to their `AtomResult`; the executor copies them
/// onto the committed `AtomStats`, from where they feed kernel trace spans
/// and the calibration table. Failed attempts are discarded wholesale by
/// the retry loop, so their observations never escape.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeObservation {
    /// The physical plan node the kernel executed.
    pub node: NodeId,
    /// Display name of the operator (e.g. `Map(tokenize)`).
    pub op: String,
    /// Records the kernel actually produced.
    pub records_out: u64,
    /// Observed kernel runtime in (possibly simulated) milliseconds.
    pub elapsed_ms: f64,
    /// Parallel work units (morsels or chunks) the kernel ran on; 1 for
    /// a sequential kernel. Deterministic for a fixed
    /// [`crate::KernelParallelism`] setting, and excluded from
    /// [`canonical_tree`], so traces stay schedule-independent.
    pub morsels: u64,
}

/// Upper bounds (microseconds) for the per-atom runtime histogram.
const ATOM_US_BOUNDS: [u64; 7] = [
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
];

/// Pre-resolved metric handles so listener callbacks never touch the
/// registry's name table.
struct ExecutorMetrics {
    atoms_completed: Arc<Counter>,
    atom_retries: Arc<Counter>,
    atom_failures: Arc<Counter>,
    retries_transient: Arc<Counter>,
    retries_suppressed: Arc<Counter>,
    failovers: Arc<Counter>,
    records_in: Arc<Counter>,
    records_out: Arc<Counter>,
    movement_us: Arc<Counter>,
    jobs_completed: Arc<Counter>,
    replans: Arc<Counter>,
    atom_simulated_us: Arc<Histogram>,
    kernel_parallel_invocations: Arc<Counter>,
    kernel_parallel_morsels: Arc<Counter>,
    kernel_sequential: Arc<Counter>,
    cancelled: Arc<Counter>,
    panics_caught: Arc<Counter>,
}

impl ExecutorMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        Self {
            atoms_completed: registry.counter("executor.atoms_completed"),
            atom_retries: registry.counter("executor.atom_retries"),
            atom_failures: registry.counter("executor.atom_failures"),
            retries_transient: registry.counter("executor.retries_transient"),
            retries_suppressed: registry.counter("executor.retries_suppressed"),
            failovers: registry.counter("executor.failovers"),
            records_in: registry.counter("executor.records_in"),
            records_out: registry.counter("executor.records_out"),
            movement_us: registry.counter("executor.movement_us"),
            jobs_completed: registry.counter("executor.jobs_completed"),
            replans: registry.counter("optimizer.replans"),
            atom_simulated_us: registry.histogram("executor.atom_simulated_us", &ATOM_US_BOUNDS),
            kernel_parallel_invocations: registry.counter("kernel.parallel.invocations"),
            kernel_parallel_morsels: registry.counter("kernel.parallel.morsels"),
            kernel_sequential: registry.counter("kernel.parallel.sequential"),
            cancelled: registry.counter("executor.cancelled"),
            panics_caught: registry.counter("executor.panics_caught"),
        }
    }
}

/// Per-job trace bookkeeping: span ids are allocated lazily as atoms
/// complete, and the job/wave spans themselves are emitted at job end.
#[derive(Default)]
struct JobTrace {
    job_span: Option<u64>,
    /// wave index → wave span id.
    waves: BTreeMap<usize, u64>,
    jobs_done: u64,
}

/// The observability hub: one metrics registry, any number of trace
/// sinks, and a calibration table, driven by executor listener callbacks.
///
/// Thread-safety: parallel atoms complete on worker threads; span ids and
/// the wave table are guarded by a mutex taken once per atom, and every
/// metric update is a single atomic operation. Span *records* are emitted
/// outside the bookkeeping lock, so sinks may block without stalling
/// other atoms' bookkeeping.
pub struct Observability {
    registry: Arc<MetricsRegistry>,
    calibration: Arc<CostCalibration>,
    sinks: Vec<Arc<dyn TraceSink>>,
    exec: ExecutorMetrics,
    next_span: AtomicU64,
    job: Mutex<JobTrace>,
}

impl Default for Observability {
    fn default() -> Self {
        Self::new()
    }
}

impl Observability {
    /// Create a hub with a fresh registry and calibration table and no
    /// trace sinks.
    pub fn new() -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let exec = ExecutorMetrics::new(&registry);
        Self {
            registry,
            calibration: Arc::new(CostCalibration::new()),
            sinks: Vec::new(),
            exec,
            next_span: AtomicU64::new(0),
            job: Mutex::new(JobTrace::default()),
        }
    }

    /// Attach a trace sink (builder style).
    pub fn with_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The calibration table fed by this hub's jobs.
    pub fn calibration(&self) -> &Arc<CostCalibration> {
        &self.calibration
    }

    fn alloc_span(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    fn emit(&self, span: SpanRecord) {
        for sink in &self.sinks {
            sink.record(&span);
        }
    }
}

impl ProgressListener for Observability {
    fn on_atom_retry(&self, _atom_id: usize, _attempt: usize, _error: &RheemError) {
        // Each retry callback corresponds to exactly one failed attempt,
        // so both metrics advance by `attempts - 1` per atom. The
        // executor only retries transient errors, so every retry also
        // counts toward the transient split.
        self.exec.atom_retries.inc();
        self.exec.atom_failures.inc();
        self.exec.retries_transient.inc();
    }

    fn on_atom_failed(&self, atom_id: usize, error: &RheemError, suppressed_retries: usize) {
        // The final, un-retried failed attempt (0 attempts happened when
        // an open breaker rejected the atom up front, but the rejection
        // itself is the failure).
        self.exec.atom_failures.inc();
        // Retry budget the classifier declined to spend: the pre-taxonomy
        // executor would have burned these on errors that could not
        // succeed.
        self.exec.retries_suppressed.add(suppressed_retries as u64);
        // A caught panic is a permanent failure with its own budget line:
        // the worker thread survived, the job gets a clean error.
        if error.classify() == (ErrorKind::Permanent { panic: true }) {
            self.exec.panics_caught.inc();
            if self.sinks.is_empty() {
                return;
            }
            let (job_id, span_id) = {
                let mut job = self.job.lock();
                if job.job_span.is_none() {
                    job.job_span = Some(self.alloc_span());
                }
                (job.job_span.expect("just set"), self.alloc_span())
            };
            self.emit(SpanRecord {
                id: span_id,
                parent: Some(job_id),
                kind: SpanKind::Panic,
                label: format!("panic atom-{atom_id} {error}"),
                platform: error.platform().unwrap_or_default().to_string(),
                elapsed_ms: 0.0,
                records_out: 0,
                morsels: 0,
            });
        }
    }

    fn on_atom_complete(&self, stats: &AtomStats) {
        self.exec.atoms_completed.inc();
        self.exec.records_in.add(stats.records_in);
        self.exec.records_out.add(stats.records_out);
        // Movement cost is simulated (deterministic), so it is safe to
        // keep as a counter compared across schedule modes.
        self.exec
            .movement_us
            .add((stats.movement_cost_ms * 1_000.0).max(0.0) as u64);
        self.exec
            .atom_simulated_us
            .record((stats.simulated_elapsed_ms * 1_000.0).max(0.0) as u64);
        // Morsel counts are pure functions of input sizes and the
        // KernelParallelism setting, so these counters replay identically
        // across schedule modes (like the movement counter above).
        for obs in &stats.node_observations {
            if obs.morsels > 1 {
                self.exec.kernel_parallel_invocations.inc();
                self.exec.kernel_parallel_morsels.add(obs.morsels);
            } else {
                self.exec.kernel_sequential.inc();
            }
        }

        if self.sinks.is_empty() {
            return;
        }
        let (wave_id, atom_id) = {
            let mut job = self.job.lock();
            if job.job_span.is_none() {
                job.job_span = Some(self.alloc_span());
            }
            // Wave spans are emitted at job end; only the id is needed
            // now so atom spans can point at their wave.
            let wave_id = *job
                .waves
                .entry(stats.wave)
                .or_insert_with(|| self.alloc_span());
            (wave_id, self.alloc_span())
        };
        self.emit(SpanRecord {
            id: atom_id,
            parent: Some(wave_id),
            kind: SpanKind::Atom,
            label: format!("atom-{}", stats.atom_id),
            platform: stats.platform.clone(),
            elapsed_ms: stats.simulated_elapsed_ms,
            records_out: stats.records_out,
            morsels: stats.node_observations.iter().map(|o| o.morsels).sum(),
        });
        for obs in &stats.node_observations {
            self.emit(SpanRecord {
                id: self.alloc_span(),
                parent: Some(atom_id),
                kind: SpanKind::Kernel,
                label: format!("n{} {}", obs.node.0, obs.op),
                platform: stats.platform.clone(),
                elapsed_ms: obs.elapsed_ms,
                records_out: obs.records_out,
                morsels: obs.morsels,
            });
        }
    }

    fn on_replan(&self, event: &ReplanEvent) {
        self.exec.replans.inc();
        if self.sinks.is_empty() {
            return;
        }
        let (job_id, span_id) = {
            let mut job = self.job.lock();
            if job.job_span.is_none() {
                job.job_span = Some(self.alloc_span());
            }
            (job.job_span.expect("just set"), self.alloc_span())
        };
        self.emit(SpanRecord {
            id: span_id,
            parent: Some(job_id),
            kind: SpanKind::Replan,
            label: format!(
                "replan-{} n{} drift x{:.2}",
                event.index, event.trigger_node.0, event.drift
            ),
            platform: String::new(),
            elapsed_ms: 0.0,
            records_out: event.observed_card,
            morsels: 0,
        });
    }

    fn on_failover(&self, event: &FailoverEvent) {
        self.exec.failovers.inc();
        if self.sinks.is_empty() {
            return;
        }
        let (job_id, span_id) = {
            let mut job = self.job.lock();
            if job.job_span.is_none() {
                job.job_span = Some(self.alloc_span());
            }
            (job.job_span.expect("just set"), self.alloc_span())
        };
        self.emit(SpanRecord {
            id: span_id,
            parent: Some(job_id),
            kind: SpanKind::Failover,
            label: format!(
                "failover-{} atom-{} excluded [{}]",
                event.index,
                event.atom_id,
                event.excluded.join(", ")
            ),
            platform: event.failed_platform.clone(),
            elapsed_ms: 0.0,
            records_out: 0,
            morsels: 0,
        });
    }

    fn on_job_cancelled(&self, reason: CancelReason) {
        self.exec.cancelled.inc();
        if self.sinks.is_empty() {
            return;
        }
        // The job failed: close out its trace bookkeeping like
        // `on_job_complete` does, emitting the cancel span and any wave
        // spans under the job root so the next job starts fresh.
        let (job_id, waves) = {
            let mut job = self.job.lock();
            let id = job.job_span.take().unwrap_or_else(|| self.alloc_span());
            let waves = std::mem::take(&mut job.waves);
            job.jobs_done += 1;
            (id, waves)
        };
        for (wave_index, wave_id) in waves {
            self.emit(SpanRecord {
                id: wave_id,
                parent: Some(job_id),
                kind: SpanKind::Wave,
                label: format!("wave-{wave_index}"),
                platform: String::new(),
                elapsed_ms: 0.0,
                records_out: 0,
                morsels: 0,
            });
        }
        self.emit(SpanRecord {
            id: self.alloc_span(),
            parent: Some(job_id),
            kind: SpanKind::Cancel,
            label: format!("cancelled: {reason}"),
            platform: String::new(),
            elapsed_ms: 0.0,
            records_out: 0,
            morsels: 0,
        });
    }

    fn on_job_complete(&self, stats: &ExecutionStats) {
        self.exec.jobs_completed.inc();
        if self.sinks.is_empty() {
            return;
        }
        let (job_id, waves, job_index) = {
            let mut job = self.job.lock();
            let id = job.job_span.take().unwrap_or_else(|| self.alloc_span());
            let waves = std::mem::take(&mut job.waves);
            let index = job.jobs_done;
            job.jobs_done += 1;
            (id, waves, index)
        };
        for (wave_index, wave_id) in waves {
            self.emit(SpanRecord {
                id: wave_id,
                parent: Some(job_id),
                kind: SpanKind::Wave,
                label: format!("wave-{wave_index}"),
                platform: String::new(),
                elapsed_ms: 0.0,
                records_out: 0,
                morsels: 0,
            });
        }
        // Record non-default enumeration paths (lattice v2 / its greedy
        // fallback) as a span, so traces show *how* the executed plan was
        // found. Skipped by `canonical_tree`, like replan/failover spans.
        if stats.enumeration_path != crate::plan::EnumerationPath::Greedy {
            self.emit(SpanRecord {
                id: self.alloc_span(),
                parent: Some(job_id),
                kind: SpanKind::Enumeration,
                label: stats.enumeration_path.as_str().to_string(),
                platform: String::new(),
                elapsed_ms: 0.0,
                records_out: 0,
                morsels: 0,
            });
        }
        self.emit(SpanRecord {
            id: job_id,
            parent: None,
            kind: SpanKind::Job,
            label: format!("job-{job_index}"),
            platform: String::new(),
            elapsed_ms: stats.total_wall.as_secs_f64() * 1e3,
            records_out: stats.atoms.iter().map(|a| a.records_out).sum(),
            morsels: 0,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn atom_stats(atom_id: usize, wave: usize) -> AtomStats {
        AtomStats {
            atom_id,
            platform: "java".into(),
            wave,
            attempts: 1,
            wall: Duration::from_millis(1),
            records_in: 10,
            records_out: 20,
            simulated_overhead_ms: 0.0,
            simulated_elapsed_ms: 2.5,
            movement_cost_ms: 1.5,
            node_observations: vec![NodeObservation {
                node: NodeId(atom_id),
                op: "Map(f)".into(),
                records_out: 20,
                elapsed_ms: 2.0,
                morsels: 4,
            }],
        }
    }

    #[test]
    fn listener_updates_metrics_and_emits_span_tree() {
        let sink = Arc::new(RingBufferSink::new(64));
        let obs = Observability::new().with_sink(sink.clone());
        obs.on_atom_start(0, "java");
        let boom = RheemError::Execution {
            platform: "java".into(),
            message: "boom".into(),
        };
        obs.on_atom_retry(0, 1, &boom);
        obs.on_atom_complete(&atom_stats(0, 0));
        obs.on_atom_complete(&atom_stats(1, 1));
        let mut stats = ExecutionStats::default();
        stats.atoms.push(atom_stats(0, 0));
        stats.atoms.push(atom_stats(1, 1));
        obs.on_job_complete(&stats);

        let m = obs.metrics();
        assert_eq!(m.counter_value("executor.atoms_completed"), 2);
        assert_eq!(m.counter_value("executor.atom_retries"), 1);
        assert_eq!(m.counter_value("executor.atom_failures"), 1);
        assert_eq!(m.counter_value("executor.records_in"), 20);
        assert_eq!(m.counter_value("executor.records_out"), 40);
        assert_eq!(m.counter_value("executor.movement_us"), 3000);
        assert_eq!(m.counter_value("executor.jobs_completed"), 1);

        let spans = sink.snapshot();
        // 2 atoms + 2 kernels + 2 waves + 1 job.
        assert_eq!(spans.len(), 7);
        let tree = canonical_tree(&spans);
        assert!(tree.starts_with("job job-0"));
        assert!(tree.contains("  atom atom-0 [java]"));
        assert!(tree.contains("    kernel n0 Map(f) [java]"));
        assert!(!tree.contains("wave"));
    }

    #[test]
    fn job_state_resets_between_jobs() {
        let sink = Arc::new(RingBufferSink::new(64));
        let obs = Observability::new().with_sink(sink.clone());
        for _ in 0..2 {
            obs.on_atom_complete(&atom_stats(0, 0));
            let mut stats = ExecutionStats::default();
            stats.atoms.push(atom_stats(0, 0));
            obs.on_job_complete(&stats);
        }
        let spans = sink.snapshot();
        let jobs: Vec<_> = spans.iter().filter(|s| s.kind == SpanKind::Job).collect();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].label, "job-0");
        assert_eq!(jobs[1].label, "job-1");
        assert_eq!(obs.metrics().counter_value("executor.jobs_completed"), 2);
    }
}
