//! Cost-model calibration: fold observed runtimes and cardinalities back
//! into the optimizer's estimates.
//!
//! The optimizer's cost models are static guesses; after a job runs we
//! know, per operator and platform, how long the kernel actually took and
//! how many records it actually produced. [`CostCalibration`] keeps an
//! exponential moving average of the *ratio* observed/estimated per
//! `(operator, platform)` pair. `cost.rs` multiplies its static estimate
//! by that factor on the next optimization pass, so a platform whose cost
//! model flattered it loses work to its honest competitors.
//!
//! The EMA decay constant is [`DEFAULT_ALPHA`] = 0.5: the newest job
//! contributes half of the factor, the entire history the other half. The
//! first sample seeds the factor directly (no pull toward the prior 1.0),
//! so a single calibrated run is enough to correct a grossly wrong model —
//! the property the `ablation_calibration` bench demonstrates.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::executor::ExecutionStats;
use crate::plan::ExecutionPlan;

/// Default EMA decay constant: weight of the newest observation.
pub const DEFAULT_ALPHA: f64 = 0.5;

/// Ratios are clamped to this range before entering the EMA so a single
/// absurd measurement (clock glitch, near-zero estimate) cannot poison the
/// table beyond recovery.
pub const RATIO_CLAMP: (f64, f64) = (1e-4, 1e4);

/// Calibration state for one `(operator, platform)` pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CalibrationEntry {
    /// EMA of observed/estimated cost (multiplies the static cost model).
    pub cost_factor: f64,
    /// EMA of observed/estimated output cardinality.
    pub card_factor: f64,
    /// Number of successful observations folded in.
    pub samples: u64,
}

impl Default for CalibrationEntry {
    fn default() -> Self {
        Self {
            cost_factor: 1.0,
            card_factor: 1.0,
            samples: 0,
        }
    }
}

/// EMA table of observed/estimated ratios per `(operator, platform)`.
///
/// Interior mutability (a `Mutex` around the map) lets the optimizer hold
/// the table in an `Arc` and fold observations in from `&self` contexts;
/// the table is only touched once per job plus once per candidate during
/// enumeration, never inside kernel hot loops.
#[derive(Debug)]
pub struct CostCalibration {
    alpha: f64,
    entries: Mutex<HashMap<(String, String), CalibrationEntry>>,
}

impl Default for CostCalibration {
    fn default() -> Self {
        Self::new()
    }
}

impl CostCalibration {
    /// Create an empty table with [`DEFAULT_ALPHA`].
    pub fn new() -> Self {
        Self::with_alpha(DEFAULT_ALPHA)
    }

    /// Create an empty table with a custom decay constant in `(0, 1]`.
    pub fn with_alpha(alpha: f64) -> Self {
        Self {
            alpha: alpha.clamp(f64::EPSILON, 1.0),
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// The configured EMA decay constant.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Fold one successful observation into the table.
    ///
    /// Non-finite or non-positive estimates/observations are discarded:
    /// a ratio cannot be formed from them, and failed attempts (which are
    /// the usual source of garbage) must not pollute the table.
    pub fn observe(
        &self,
        op: &str,
        platform: &str,
        estimated_cost_ms: f64,
        observed_cost_ms: f64,
        estimated_card: f64,
        observed_card: f64,
    ) {
        let cost_ratio = safe_ratio(observed_cost_ms, estimated_cost_ms);
        let card_ratio = safe_ratio(observed_card, estimated_card);
        if cost_ratio.is_none() && card_ratio.is_none() {
            return;
        }
        let mut entries = self.entries.lock();
        let entry = entries
            .entry((op.to_string(), platform.to_string()))
            .or_default();
        let first = entry.samples == 0;
        if let Some(r) = cost_ratio {
            entry.cost_factor = if first {
                r
            } else {
                self.alpha * r + (1.0 - self.alpha) * entry.cost_factor
            };
        }
        if let Some(r) = card_ratio {
            entry.card_factor = if first {
                r
            } else {
                self.alpha * r + (1.0 - self.alpha) * entry.card_factor
            };
        }
        entry.samples = entry.samples.saturating_add(1);
    }

    /// Multiplier for the static cost of `op` on `platform` (1.0 when the
    /// pair was never observed).
    pub fn cost_factor(&self, op: &str, platform: &str) -> f64 {
        self.entries
            .lock()
            .get(&(op.to_string(), platform.to_string()))
            .map_or(1.0, |e| e.cost_factor)
    }

    /// Multiplier for the estimated output cardinality of `op` on
    /// `platform` (1.0 when never observed).
    pub fn card_factor(&self, op: &str, platform: &str) -> f64 {
        self.entries
            .lock()
            .get(&(op.to_string(), platform.to_string()))
            .map_or(1.0, |e| e.card_factor)
    }

    /// Full entry for a pair, if any observation was folded in.
    pub fn entry(&self, op: &str, platform: &str) -> Option<CalibrationEntry> {
        self.entries
            .lock()
            .get(&(op.to_string(), platform.to_string()))
            .copied()
    }

    /// Number of `(operator, platform)` pairs observed so far.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when no observation has been folded in yet.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Total samples folded in across all pairs.
    pub fn total_samples(&self) -> u64 {
        self.entries.lock().values().map(|e| e.samples).sum()
    }

    /// Drop all calibration state.
    pub fn clear(&self) {
        self.entries.lock().clear();
    }

    /// Sorted copy of the table for reporting.
    pub fn snapshot(&self) -> Vec<((String, String), CalibrationEntry)> {
        let mut rows: Vec<_> = self
            .entries
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Fold every per-kernel observation of a finished job into the table.
    ///
    /// Requires the plan to carry optimizer estimates (plans hand-built in
    /// tests have none — those are skipped). Only observations attached to
    /// committed atom stats reach this point: a failed attempt's outputs
    /// are discarded by the executor's retry loop, so failures can never
    /// pollute the table.
    pub fn absorb(&self, plan: &ExecutionPlan, stats: &ExecutionStats) {
        if plan.estimates.len() != plan.physical.len() {
            return;
        }
        for atom in &stats.atoms {
            for obs in &atom.node_observations {
                let Some(est) = plan.estimates.get(obs.node.0) else {
                    continue;
                };
                let Some(platform) = plan.assignments.get(obs.node.0) else {
                    continue;
                };
                self.observe(
                    &obs.op,
                    platform,
                    est.cost_ms,
                    obs.elapsed_ms,
                    est.card,
                    obs.records_out as f64,
                );
            }
        }
    }

    /// Render the table as deterministic `op@platform` rows.
    pub fn render(&self) -> String {
        let mut out = String::from("calibration (EMA of observed/estimated):\n");
        for ((op, platform), e) in self.snapshot() {
            out.push_str(&format!(
                "  {op} @{platform}: cost x{:.3}, card x{:.3} ({} samples)\n",
                e.cost_factor, e.card_factor, e.samples
            ));
        }
        out
    }
}

/// `observed / estimated`, clamped, or `None` when either side is unusable.
fn safe_ratio(observed: f64, estimated: f64) -> Option<f64> {
    if !observed.is_finite() || !estimated.is_finite() || observed <= 0.0 || estimated <= 0.0 {
        return None;
    }
    Some((observed / estimated).clamp(RATIO_CLAMP.0, RATIO_CLAMP.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_seeds_then_ema_decays() {
        let cal = CostCalibration::with_alpha(0.5);
        assert_eq!(cal.cost_factor("Map(f)", "java"), 1.0);
        cal.observe("Map(f)", "java", 10.0, 40.0, 100.0, 100.0);
        // First sample seeds directly: 40/10 = 4.
        assert!((cal.cost_factor("Map(f)", "java") - 4.0).abs() < 1e-9);
        cal.observe("Map(f)", "java", 10.0, 20.0, 100.0, 100.0);
        // EMA: 0.5*2 + 0.5*4 = 3.
        assert!((cal.cost_factor("Map(f)", "java") - 3.0).abs() < 1e-9);
        assert_eq!(cal.entry("Map(f)", "java").unwrap().samples, 2);
        assert_eq!(cal.len(), 1);
    }

    #[test]
    fn garbage_observations_are_discarded() {
        let cal = CostCalibration::new();
        cal.observe("Map(f)", "java", 0.0, 5.0, 0.0, 5.0);
        cal.observe("Map(f)", "java", f64::NAN, 5.0, -1.0, 5.0);
        cal.observe("Map(f)", "java", 10.0, f64::INFINITY, 10.0, -3.0);
        assert!(cal.is_empty());
        // A usable cost ratio with garbage cardinality still lands, but
        // leaves the cardinality factor untouched.
        cal.observe("Map(f)", "java", 10.0, 30.0, f64::NAN, 5.0);
        let e = cal.entry("Map(f)", "java").unwrap();
        assert!((e.cost_factor - 3.0).abs() < 1e-9);
        assert!((e.card_factor - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ratios_are_clamped() {
        let cal = CostCalibration::new();
        cal.observe("Map(f)", "java", 1e-12, 1e12, 1.0, 1.0);
        assert!((cal.cost_factor("Map(f)", "java") - RATIO_CLAMP.1).abs() < 1e-9);
        cal.observe("Filter(g)", "java", 1e12, 1e-12, 1.0, 1.0);
        assert!((cal.cost_factor("Filter(g)", "java") - RATIO_CLAMP.0).abs() < 1e-12);
    }
}
