//! Cost-model calibration: fold observed runtimes and cardinalities back
//! into the optimizer's estimates.
//!
//! The optimizer's cost models are static guesses; after a job runs we
//! know, per operator and platform, how long the kernel actually took and
//! how many records it actually produced. [`CostCalibration`] keeps an
//! exponential moving average of the *ratio* observed/estimated per
//! `(operator, platform)` pair. `cost.rs` multiplies its static estimate
//! by that factor on the next optimization pass, so a platform whose cost
//! model flattered it loses work to its honest competitors.
//!
//! The EMA decay constant is [`DEFAULT_ALPHA`] = 0.5: the newest job
//! contributes half of the factor, the entire history the other half. The
//! first sample seeds the factor directly (no pull toward the prior 1.0),
//! so a single calibrated run is enough to correct a grossly wrong model —
//! the property the `ablation_calibration` bench demonstrates.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::executor::ExecutionStats;
use crate::plan::ExecutionPlan;

/// Default EMA decay constant: weight of the newest observation.
pub const DEFAULT_ALPHA: f64 = 0.5;

/// Ratios are clamped to this range before entering the EMA so a single
/// absurd measurement (clock glitch, near-zero estimate) cannot poison the
/// table beyond recovery.
pub const RATIO_CLAMP: (f64, f64) = (1e-4, 1e4);

/// Calibration state for one `(operator, platform)` pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CalibrationEntry {
    /// EMA of observed/estimated cost (multiplies the static cost model).
    pub cost_factor: f64,
    /// EMA of observed/estimated output cardinality.
    pub card_factor: f64,
    /// Number of successful observations folded in.
    pub samples: u64,
}

impl Default for CalibrationEntry {
    fn default() -> Self {
        Self {
            cost_factor: 1.0,
            card_factor: 1.0,
            samples: 0,
        }
    }
}

/// EMA table of observed/estimated ratios per `(operator, platform)`.
///
/// Interior mutability (a `Mutex` around the map) lets the optimizer hold
/// the table in an `Arc` and fold observations in from `&self` contexts;
/// the table is only touched once per job plus once per candidate during
/// enumeration, never inside kernel hot loops.
///
/// Concurrency: [`CostCalibration::absorb`] holds the table lock for the
/// whole job it folds in, so two jobs finishing at the same time serialize
/// as whole jobs — the result is always one of the two serial orders, never
/// an interleaving that loses updates mid-EMA. The [`CostCalibration::version`]
/// counter advances once per mutating batch, giving the plan cache a cheap
/// "did anything change since I last checked?" probe.
#[derive(Debug)]
pub struct CostCalibration {
    alpha: f64,
    entries: Mutex<HashMap<(String, String), CalibrationEntry>>,
    version: AtomicU64,
}

impl Default for CostCalibration {
    fn default() -> Self {
        Self::new()
    }
}

impl CostCalibration {
    /// Create an empty table with [`DEFAULT_ALPHA`].
    pub fn new() -> Self {
        Self::with_alpha(DEFAULT_ALPHA)
    }

    /// Create an empty table with a custom decay constant in `(0, 1]`.
    ///
    /// Non-finite alphas fall back to [`DEFAULT_ALPHA`]: `f64::clamp`
    /// propagates NaN, so without the explicit guard a NaN alpha would
    /// poison every subsequent EMA update.
    pub fn with_alpha(alpha: f64) -> Self {
        let alpha = if alpha.is_finite() {
            alpha.clamp(f64::EPSILON, 1.0)
        } else {
            DEFAULT_ALPHA
        };
        Self {
            alpha,
            entries: Mutex::new(HashMap::new()),
            version: AtomicU64::new(0),
        }
    }

    /// The configured EMA decay constant.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Fold one successful observation into the table.
    ///
    /// Non-finite or non-positive estimates/observations are discarded:
    /// a ratio cannot be formed from them, and failed attempts (which are
    /// the usual source of garbage) must not pollute the table.
    pub fn observe(
        &self,
        op: &str,
        platform: &str,
        estimated_cost_ms: f64,
        observed_cost_ms: f64,
        estimated_card: f64,
        observed_card: f64,
    ) {
        let mut entries = self.entries.lock();
        if Self::fold_one(
            self.alpha,
            &mut entries,
            op,
            platform,
            estimated_cost_ms,
            observed_cost_ms,
            estimated_card,
            observed_card,
        ) {
            self.version.fetch_add(1, Ordering::Release);
        }
    }

    /// Fold one observation into an already-locked table; returns whether
    /// anything changed. Shared by [`Self::observe`] (one lock per call)
    /// and [`Self::absorb`] (one lock per *job*).
    #[allow(clippy::too_many_arguments)]
    fn fold_one(
        alpha: f64,
        entries: &mut HashMap<(String, String), CalibrationEntry>,
        op: &str,
        platform: &str,
        estimated_cost_ms: f64,
        observed_cost_ms: f64,
        estimated_card: f64,
        observed_card: f64,
    ) -> bool {
        let cost_ratio = safe_ratio(observed_cost_ms, estimated_cost_ms);
        let card_ratio = safe_ratio(observed_card, estimated_card);
        if cost_ratio.is_none() && card_ratio.is_none() {
            return false;
        }
        let entry = entries
            .entry((op.to_string(), platform.to_string()))
            .or_default();
        let first = entry.samples == 0;
        if let Some(r) = cost_ratio {
            entry.cost_factor = if first {
                r
            } else {
                alpha * r + (1.0 - alpha) * entry.cost_factor
            };
        }
        if let Some(r) = card_ratio {
            entry.card_factor = if first {
                r
            } else {
                alpha * r + (1.0 - alpha) * entry.card_factor
            };
        }
        entry.samples = entry.samples.saturating_add(1);
        true
    }

    /// Monotone mutation counter: advances once per mutating [`Self::observe`]
    /// call and once per [`Self::absorb`] that folded anything in. The plan
    /// cache compares versions to skip drift recomputation when the table
    /// has not moved since an entry was last validated.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Multiplier for the static cost of `op` on `platform` (1.0 when the
    /// pair was never observed).
    pub fn cost_factor(&self, op: &str, platform: &str) -> f64 {
        self.entries
            .lock()
            .get(&(op.to_string(), platform.to_string()))
            .map_or(1.0, |e| e.cost_factor)
    }

    /// Multiplier for the estimated output cardinality of `op` on
    /// `platform` (1.0 when never observed).
    pub fn card_factor(&self, op: &str, platform: &str) -> f64 {
        self.entries
            .lock()
            .get(&(op.to_string(), platform.to_string()))
            .map_or(1.0, |e| e.card_factor)
    }

    /// Full entry for a pair, if any observation was folded in.
    pub fn entry(&self, op: &str, platform: &str) -> Option<CalibrationEntry> {
        self.entries
            .lock()
            .get(&(op.to_string(), platform.to_string()))
            .copied()
    }

    /// Number of `(operator, platform)` pairs observed so far.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when no observation has been folded in yet.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Total samples folded in across all pairs.
    pub fn total_samples(&self) -> u64 {
        self.entries.lock().values().map(|e| e.samples).sum()
    }

    /// Drop all calibration state.
    pub fn clear(&self) {
        self.entries.lock().clear();
    }

    /// Sorted copy of the table for reporting.
    pub fn snapshot(&self) -> Vec<((String, String), CalibrationEntry)> {
        let mut rows: Vec<_> = self
            .entries
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Fold every per-kernel observation of a finished job into the table.
    ///
    /// Requires the plan to carry optimizer estimates (plans hand-built in
    /// tests have none — those are skipped). Only observations attached to
    /// committed atom stats reach this point: a failed attempt's outputs
    /// are discarded by the executor's retry loop, so failures can never
    /// pollute the table.
    ///
    /// The whole job is folded under one table lock, so absorption is
    /// merge-safe: when two jobs finish concurrently the table always ends
    /// up in one of the two serial orders (job A then B, or B then A) —
    /// per-observation interleavings that read a half-updated EMA cannot
    /// happen.
    pub fn absorb(&self, plan: &ExecutionPlan, stats: &ExecutionStats) {
        if plan.estimates.len() != plan.physical.len() {
            return;
        }
        let mut entries = self.entries.lock();
        let mut changed = false;
        for atom in &stats.atoms {
            for obs in &atom.node_observations {
                let Some(est) = plan.estimates.get(obs.node.0) else {
                    continue;
                };
                let Some(platform) = plan.assignments.get(obs.node.0) else {
                    continue;
                };
                changed |= Self::fold_one(
                    self.alpha,
                    &mut entries,
                    &obs.op,
                    platform,
                    est.cost_ms,
                    obs.elapsed_ms,
                    est.card,
                    obs.records_out as f64,
                );
            }
        }
        if changed {
            self.version.fetch_add(1, Ordering::Release);
        }
    }

    /// Render the table as deterministic `op@platform` rows.
    pub fn render(&self) -> String {
        let mut out = String::from("calibration (EMA of observed/estimated):\n");
        for ((op, platform), e) in self.snapshot() {
            out.push_str(&format!(
                "  {op} @{platform}: cost x{:.3}, card x{:.3} ({} samples)\n",
                e.cost_factor, e.card_factor, e.samples
            ));
        }
        out
    }
}

/// `observed / estimated`, clamped, or `None` when either side is unusable.
fn safe_ratio(observed: f64, estimated: f64) -> Option<f64> {
    if !observed.is_finite() || !estimated.is_finite() || observed <= 0.0 || estimated <= 0.0 {
        return None;
    }
    Some((observed / estimated).clamp(RATIO_CLAMP.0, RATIO_CLAMP.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_seeds_then_ema_decays() {
        let cal = CostCalibration::with_alpha(0.5);
        assert_eq!(cal.cost_factor("Map(f)", "java"), 1.0);
        cal.observe("Map(f)", "java", 10.0, 40.0, 100.0, 100.0);
        // First sample seeds directly: 40/10 = 4.
        assert!((cal.cost_factor("Map(f)", "java") - 4.0).abs() < 1e-9);
        cal.observe("Map(f)", "java", 10.0, 20.0, 100.0, 100.0);
        // EMA: 0.5*2 + 0.5*4 = 3.
        assert!((cal.cost_factor("Map(f)", "java") - 3.0).abs() < 1e-9);
        assert_eq!(cal.entry("Map(f)", "java").unwrap().samples, 2);
        assert_eq!(cal.len(), 1);
    }

    #[test]
    fn garbage_observations_are_discarded() {
        let cal = CostCalibration::new();
        cal.observe("Map(f)", "java", 0.0, 5.0, 0.0, 5.0);
        cal.observe("Map(f)", "java", f64::NAN, 5.0, -1.0, 5.0);
        cal.observe("Map(f)", "java", 10.0, f64::INFINITY, 10.0, -3.0);
        assert!(cal.is_empty());
        // A usable cost ratio with garbage cardinality still lands, but
        // leaves the cardinality factor untouched.
        cal.observe("Map(f)", "java", 10.0, 30.0, f64::NAN, 5.0);
        let e = cal.entry("Map(f)", "java").unwrap();
        assert!((e.cost_factor - 3.0).abs() < 1e-9);
        assert!((e.card_factor - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ratios_are_clamped() {
        let cal = CostCalibration::new();
        cal.observe("Map(f)", "java", 1e-12, 1e12, 1.0, 1.0);
        assert!((cal.cost_factor("Map(f)", "java") - RATIO_CLAMP.1).abs() < 1e-9);
        cal.observe("Filter(g)", "java", 1e12, 1e-12, 1.0, 1.0);
        assert!((cal.cost_factor("Filter(g)", "java") - RATIO_CLAMP.0).abs() < 1e-12);
    }

    #[test]
    fn with_alpha_rejects_non_finite_alpha() {
        // Regression: NaN propagates through `f64::clamp`, so a NaN alpha
        // used to survive the `(EPSILON, 1.0)` guard and turn every EMA
        // update into NaN.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let cal = CostCalibration::with_alpha(bad);
            assert_eq!(cal.alpha(), DEFAULT_ALPHA, "alpha {bad} not rejected");
            cal.observe("Map(f)", "java", 10.0, 40.0, 100.0, 100.0);
            cal.observe("Map(f)", "java", 10.0, 20.0, 100.0, 100.0);
            let e = cal.entry("Map(f)", "java").unwrap();
            assert!(e.cost_factor.is_finite());
            // Seed 4.0, then EMA with DEFAULT_ALPHA: 0.5*2 + 0.5*4 = 3.
            assert!((e.cost_factor - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn version_advances_only_on_mutation() {
        let cal = CostCalibration::new();
        assert_eq!(cal.version(), 0);
        cal.observe("Map(f)", "java", 0.0, 0.0, 0.0, 0.0); // garbage: discarded
        assert_eq!(cal.version(), 0);
        cal.observe("Map(f)", "java", 10.0, 20.0, 100.0, 100.0);
        assert_eq!(cal.version(), 1);
    }

    /// A one-job (plan, stats) pair whose absorption folds `observed_ms`
    /// ratios into `Map(f)@java`, in order.
    fn absorb_job(observed_ms: &[f64]) -> (ExecutionPlan, ExecutionStats) {
        use crate::observe::NodeObservation;
        use crate::plan::{EnumerationInfo, NodeEstimate, NodeId, PlanBuilder};
        use crate::rec;
        use crate::udf::MapUdf;
        use std::sync::Arc;
        use std::time::Duration;

        let mut b = PlanBuilder::new();
        let src = b.collection("s", vec![rec![1i64]]);
        let m = b.map(src, MapUdf::new("f", |r| r.clone()));
        b.collect(m);
        let physical = Arc::new(b.build().unwrap());
        let n = physical.len();
        let plan = ExecutionPlan {
            physical,
            assignments: vec!["java".into(); n],
            atoms: vec![],
            estimated_cost: 0.0,
            estimates: vec![
                NodeEstimate {
                    cost_ms: 10.0,
                    card: 100.0
                };
                n
            ],
            enumeration: EnumerationInfo::default(),
        };
        let mut stats = ExecutionStats::default();
        stats.atoms.push(crate::executor::AtomStats {
            atom_id: 0,
            platform: "java".into(),
            wave: 0,
            attempts: 1,
            wall: Duration::from_millis(1),
            records_in: 1,
            records_out: 1,
            simulated_overhead_ms: 0.0,
            simulated_elapsed_ms: 0.0,
            movement_cost_ms: 0.0,
            node_observations: observed_ms
                .iter()
                .map(|ms| NodeObservation {
                    node: NodeId(1),
                    op: "Map(f)".into(),
                    records_out: 100,
                    elapsed_ms: *ms,
                    morsels: 1,
                })
                .collect(),
        });
        (plan, stats)
    }

    #[test]
    fn concurrent_absorption_is_merge_safe() {
        // Regression: `absorb` used to take the table lock once per
        // observation, so two jobs finishing concurrently could interleave
        // mid-EMA and land on a state reachable by no serial order. With
        // the whole-job critical section, the result is always exactly
        // serial(A;B) or serial(B;A).
        let (plan_a, stats_a) = absorb_job(&[20.0, 40.0, 80.0]);
        let (plan_b, stats_b) = absorb_job(&[30.0, 50.0, 90.0]);

        let serial = |first: (&ExecutionPlan, &ExecutionStats),
                      second: (&ExecutionPlan, &ExecutionStats)| {
            let cal = CostCalibration::new();
            cal.absorb(first.0, first.1);
            cal.absorb(second.0, second.1);
            cal.entry("Map(f)", "java").unwrap()
        };
        let ab = serial((&plan_a, &stats_a), (&plan_b, &stats_b));
        let ba = serial((&plan_b, &stats_b), (&plan_a, &stats_a));
        assert_ne!(
            ab.cost_factor, ba.cost_factor,
            "orders must be distinguishable"
        );

        for _ in 0..100 {
            let cal = CostCalibration::new();
            let barrier = std::sync::Barrier::new(2);
            std::thread::scope(|s| {
                s.spawn(|| {
                    barrier.wait();
                    cal.absorb(&plan_a, &stats_a);
                });
                s.spawn(|| {
                    barrier.wait();
                    cal.absorb(&plan_b, &stats_b);
                });
            });
            let got = cal.entry("Map(f)", "java").unwrap();
            assert!(
                got == ab || got == ba,
                "concurrent absorb produced a non-serializable state: {got:?} \
                 (expected {ab:?} or {ba:?})"
            );
            assert_eq!(got.samples, 6);
        }
    }
}
