//! The executor (§4.2): schedules task atoms on their platforms, monitors
//! progress, copes with failures, and aggregates results.
//!
//! Duties, verbatim from the paper: "(i) scheduling the resulting execution
//! plan on the selected data processing frameworks, (ii) monitoring the
//! progress of plan execution, (iii) coping with failures, and
//! (iv) aggregating and returning results to users."
//!
//! # Wave scheduling
//!
//! Atoms whose inputs are all available are independent and can run
//! concurrently — the paper's motivation for splitting a plan into task
//! atoms in the first place. The executor derives the atom dependency DAG
//! from the plan's boundary edges ([`ExecutionPlan::atom_dependencies`])
//! and partitions it into *waves*: wave 0 holds every atom with no
//! cross-atom inputs, wave *k+1* every atom whose last dependency sits in
//! wave *k*. Each wave runs on a pool of scoped worker threads (capped by
//! [`ExecutorConfig::max_parallel_atoms`]); the next wave starts once the
//! whole wave finished.
//!
//! Sequential mode runs exactly the same waves, one atom at a time, so
//! wave numbering, per-atom wave attribution, and the `waves` stat are
//! identical across schedule modes — the modes differ only in intra-wave
//! concurrency.
//!
//! Intermediate datasets are reference counted: once every boundary
//! consumer of a node's output has run, the dataset is dropped (sink
//! outputs are kept — they are the job's results).
//!
//! Scheduling is deterministic where it can be: per-atom monitoring
//! records are appended in ascending atom id within each wave regardless
//! of completion order, and when several atoms of a wave fail, the error
//! of the lowest-id atom that failed is reported (see
//! [`Executor::execute`] internals for the attempt-set caveat).
//!
//! # Fault tolerance
//!
//! Failures are classified ([`RheemError::classify`]) before any retry
//! budget is spent: only [`ErrorKind::Transient`](crate::ErrorKind)
//! errors are retried (up to [`ExecutorConfig::max_retries`] times, with
//! [`BackoffPolicy`] delays between attempts); permanent errors fail fast
//! after exactly one attempt. With a [`PlatformHealth`] attached, every
//! transient failure also feeds the platform's circuit breaker — an open
//! breaker rejects atoms up front with
//! [`RheemError::PlatformUnavailable`], skipping their retry budget.
//!
//! When an atom gives up (retries exhausted, breaker opened, or breaker
//! already open) and failover is enabled ([`Executor::with_failover`]),
//! the executor does not fail the job immediately: it commits every atom
//! of the wave that *did* succeed, marks the failed platform down, and
//! re-enumerates the unexecuted suffix with all failed platforms excluded
//! — the same suffix-splicing machinery as adaptive re-planning, pointed
//! at outages instead of drift. Committed atoms are never re-run; the job
//! fails only when the re-enumeration finds no alternative mapping (or
//! the failover budget / job deadline is spent).
//!
//! # Adaptive re-optimization
//!
//! With a [`Replanner`] attached ([`Executor::with_replanner`]), the
//! executor revisits the optimizer's decisions *mid-job*: after each
//! committed wave it compares the observed cardinality of every live
//! boundary dataset against the plan's estimates and, past the policy
//! threshold, re-enumerates the unexecuted suffix with the true
//! cardinalities (completed outputs become fixed-size pseudo-sources)
//! and splices the new atoms in. Committed atoms are never re-run and
//! re-planning only ever happens between waves, so a partially executed
//! atom is never re-planned; each re-plan also counts against the job
//! deadline.

use std::borrow::Cow;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::cost::MovementCostModel;
use crate::data::Dataset;
use crate::error::{CancelReason, Result, RheemError};
use crate::fault::{BackoffPolicy, CancelToken, PlatformHealth, Sleeper, ThreadSleeper};
use crate::optimizer::replan::{worst_drift, Replanner};
use crate::plan::{ExecutionPlan, NodeId, TaskAtom};
use crate::platform::{AtomInputs, ExecutionContext, FailureInjector, PlatformRegistry};

/// How the executor orders atom execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScheduleMode {
    /// Dependency-aware waves of concurrently running atoms (the default).
    #[default]
    Parallel,
    /// One atom at a time, in wave order (the same waves parallel mode
    /// computes, with identical wave numbering). Kept as the ablation
    /// baseline (`ablation_scheduling` bench) and for debugging.
    Sequential,
}

/// Executor tuning.
#[derive(Clone, Debug)]
pub struct ExecutorConfig {
    /// How many times a failed atom is retried before the job fails.
    pub max_retries: usize,
    /// Wall-clock budget for the whole job (the paper's baselines were
    /// "stopped after 22 hours"; benchmarks use this to reproduce that).
    /// Enforced as a deadline checked before every attempt of every atom,
    /// so a retry storm cannot outlive the budget.
    pub timeout: Option<Duration>,
    /// Upper bound on atoms running concurrently within a wave. Defaults
    /// to the host's available parallelism; values ≤ 1 run each wave
    /// inline on the caller's thread.
    pub max_parallel_atoms: usize,
    /// Wave-parallel or sequential scheduling.
    pub mode: ScheduleMode,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            max_retries: 2,
            timeout: None,
            max_parallel_atoms: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            mode: ScheduleMode::default(),
        }
    }
}

/// Per-atom monitoring record.
#[derive(Clone, Debug)]
pub struct AtomStats {
    /// Atom id within the execution plan.
    pub atom_id: usize,
    /// Platform that executed it.
    pub platform: String,
    /// Scheduling wave the atom ran in. Wave numbering is identical in
    /// parallel and sequential modes and global across re-planning
    /// phases (a re-plan continues the numbering, it never restarts it).
    pub wave: usize,
    /// Attempts used (1 = no retry).
    pub attempts: usize,
    /// Wall-clock execution time of the successful attempt.
    pub wall: Duration,
    /// Records entering the atom across its boundary.
    pub records_in: u64,
    /// Records produced by operators inside the atom.
    pub records_out: u64,
    /// Deterministic simulated overhead reported by the platform.
    pub simulated_overhead_ms: f64,
    /// Simulated elapsed time reported by the platform (critical path).
    pub simulated_elapsed_ms: f64,
    /// Simulated cost of moving the atom's inputs across platforms.
    pub movement_cost_ms: f64,
    /// Per-operator-kernel observations reported by the platform for the
    /// successful attempt (empty when the platform does not report them).
    pub node_observations: Vec<crate::observe::NodeObservation>,
}

/// Job-level monitoring summary.
#[derive(Clone, Debug, Default)]
pub struct ExecutionStats {
    /// One record per executed atom: ascending atom id within each wave,
    /// waves in execution order — the same order in both schedule modes.
    pub atoms: Vec<AtomStats>,
    /// Number of scheduling waves the job ran in. Identical in parallel
    /// and sequential modes (which differ only in intra-wave
    /// concurrency), and strictly less than the atom count whenever the
    /// plan had independent atoms to overlap.
    pub waves: usize,
    /// Total wall-clock time of the job.
    pub total_wall: Duration,
    /// Total simulated movement cost.
    pub total_movement_ms: f64,
    /// Total retries across all atoms. Only transient failures consume
    /// retries; permanent errors fail fast after one attempt.
    pub retries: usize,
    /// Mid-job re-optimizations performed (see
    /// [`Executor::with_replanner`]); `0` unless a re-planner triggered.
    pub replans: usize,
    /// Failover re-plans performed (see [`Executor::with_failover`]):
    /// times the unexecuted suffix was re-routed around a failed
    /// platform. `0` unless failover triggered.
    pub failovers: usize,
    /// Which enumeration algorithm produced the executed plan (copied from
    /// [`crate::plan::ExecutionPlan::enumeration`]). `Greedy` for plans
    /// built by the classic DP.
    pub enumeration_path: crate::plan::EnumerationPath,
}

impl ExecutionStats {
    /// Distinct platforms that participated in the job.
    pub fn platforms_used(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.atoms.iter().map(|a| a.platform.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Total simulated overhead charged by platforms.
    pub fn total_simulated_overhead_ms(&self) -> f64 {
        self.atoms.iter().map(|a| a.simulated_overhead_ms).sum()
    }

    /// Total simulated elapsed time of the job: the platforms' critical
    /// paths plus inter-platform movement. This is the figure-of-merit the
    /// benchmark harness reports (deterministic and host-independent).
    pub fn total_simulated_ms(&self) -> f64 {
        self.atoms
            .iter()
            .map(|a| a.simulated_elapsed_ms)
            .sum::<f64>()
            + self.total_movement_ms
    }

    /// A human-readable monitoring report (one line per atom).
    pub fn explain(&self) -> String {
        let mut s = String::from(
            "atom  wave  platform     attempts  in→out records     simulated_ms  movement_ms\n",
        );
        for a in &self.atoms {
            s.push_str(&format!(
                "{:<4}  {:<4}  {:<11}  {:<8}  {:>7} → {:<7}  {:>12.2}  {:>11.2}\n",
                a.atom_id,
                a.wave,
                a.platform,
                a.attempts,
                a.records_in,
                a.records_out,
                a.simulated_elapsed_ms,
                a.movement_cost_ms,
            ));
        }
        s.push_str(&format!(
            "total: {:.2} simulated ms ({:.2} movement), {:.2} ms wall, {} retries, {} waves, {} replans, {} failovers\n",
            self.total_simulated_ms(),
            self.total_movement_ms,
            self.total_wall.as_secs_f64() * 1e3,
            self.retries,
            self.waves,
            self.replans,
            self.failovers,
        ));
        if self.enumeration_path != crate::plan::EnumerationPath::Greedy {
            s.push_str(&format!("enumeration: {}\n", self.enumeration_path));
        }
        s
    }
}

/// Observer of job progress (§4.2 duty ii: "monitoring the progress of
/// plan execution"). All methods have empty defaults; implement only what
/// you need.
///
/// # Threading and ordering guarantee
///
/// Callbacks run synchronously on whichever thread executes the atom —
/// under wave scheduling that is a worker thread, and callbacks for
/// *different* atoms of the same wave may interleave arbitrarily, so
/// implementations must be thread-safe (the trait requires `Send + Sync`).
/// Per atom, the order is always:
///
/// 1. `on_atom_start` (exactly once, after its inputs were gathered),
/// 2. `on_atom_retry` (once per failed attempt, in attempt order),
/// 3. `on_atom_complete` (exactly once, if the atom succeeded).
///
/// `on_job_complete` runs last, exactly once, on the caller's thread,
/// strictly after every per-atom callback has returned.
pub trait ProgressListener: Send + Sync {
    /// An atom is about to run (after its inputs were gathered).
    fn on_atom_start(&self, _atom_id: usize, _platform: &str) {}
    /// An attempt failed and will be retried.
    fn on_atom_retry(&self, _atom_id: usize, _attempt: usize, _error: &RheemError) {}
    /// An atom gave up: its error was not retryable, its platform's
    /// breaker opened, or its retry budget ran out. `suppressed_retries`
    /// is the retry budget *not* spent because the final error was not
    /// worth retrying (0 when the budget was exhausted on transient
    /// failures). Depending on failover, the job may still survive.
    fn on_atom_failed(&self, _atom_id: usize, _error: &RheemError, _suppressed_retries: usize) {}
    /// An atom completed; its monitoring record is final.
    fn on_atom_complete(&self, _stats: &AtomStats) {}
    /// The executor re-optimized the unexecuted suffix of the job. Runs
    /// between waves, on the thread driving the job, strictly after the
    /// `on_atom_complete` of every atom committed so far.
    fn on_replan(&self, _event: &ReplanEvent) {}
    /// The executor re-routed the unexecuted suffix around a failed
    /// platform. Same threading guarantees as
    /// [`on_replan`](ProgressListener::on_replan).
    fn on_failover(&self, _event: &FailoverEvent) {}
    /// The whole job completed successfully.
    fn on_job_complete(&self, _stats: &ExecutionStats) {}
    /// The job failed with [`RheemError::Cancelled`]. Called exactly once
    /// per cancelled job, on the thread driving the job, after every
    /// per-atom callback has returned. Partial-wave progress committed
    /// before the cancellation point stays committed (it was already
    /// reported through `on_atom_complete`).
    fn on_job_cancelled(&self, _reason: crate::error::CancelReason) {}
}

/// A hook bracketing every scheduling wave of a job.
///
/// The wave boundary is the executor's natural preemption point: no atom
/// runs while the job is between waves, so an external scheduler can pause
/// a job there simply by blocking in
/// [`before_wave`](WaveGate::before_wave). The server's fair-share
/// scheduler does exactly that — each job's gate acquires a wave slot
/// before the wave runs and releases it right after, interleaving waves of
/// concurrent jobs across tenants.
///
/// Calls come on the thread driving the job, strictly ordered per job:
/// `before_wave(i)` → the wave's atoms run → `after_wave(i)` →
/// `before_wave(i+1)` … An `after_wave` call is guaranteed for every
/// `before_wave` that returned, even when the wave fails (gate releases
/// must not leak on error paths). Implementations must be `Send + Sync`;
/// blocking in `before_wave` blocks the job, nothing else.
pub trait WaveGate: Send + Sync {
    /// Called before the wave `wave_index` starts; may block to delay it.
    /// `atoms` is the number of atoms scheduled in the wave.
    fn before_wave(&self, wave_index: usize, atoms: usize);
    /// Called after the wave's atoms finished (committed or failed).
    fn after_wave(&self, wave_index: usize);
}

/// What one mid-job re-optimization did (see
/// [`Executor::with_replanner`]).
#[derive(Clone, Debug)]
pub struct ReplanEvent {
    /// 0-based index of this re-plan within the job.
    pub index: usize,
    /// The live boundary dataset whose cardinality drifted the furthest
    /// from its estimate.
    pub trigger_node: NodeId,
    /// The optimizer's cardinality estimate for that node.
    pub estimated_card: f64,
    /// The cardinality that actually materialized.
    pub observed_card: u64,
    /// Symmetric error ratio between the two ([`crate::cost::drift_ratio`]).
    pub drift: f64,
    /// Pending atoms discarded by the re-plan.
    pub replaced_atoms: usize,
    /// Atoms spliced in to replace them.
    pub new_atoms: usize,
    /// Estimated cost of the remaining work under the new plan.
    pub estimated_cost: f64,
}

/// What one failover re-plan did (see [`Executor::with_failover`]).
#[derive(Clone, Debug)]
pub struct FailoverEvent {
    /// 0-based index of this failover within the job.
    pub index: usize,
    /// Id of the atom whose failure triggered the failover.
    pub atom_id: usize,
    /// The platform that atom failed on.
    pub failed_platform: String,
    /// Rendering of the error that exhausted the atom.
    pub error: String,
    /// Every platform excluded from the re-enumeration (the failed
    /// platform plus any other platform with an open breaker, and any
    /// platform excluded by an earlier failover of this job).
    pub excluded: Vec<String>,
    /// Pending atoms discarded by the failover re-plan.
    pub replaced_atoms: usize,
    /// Atoms spliced in to replace them.
    pub new_atoms: usize,
    /// Estimated cost of the remaining work under the new plan.
    pub estimated_cost: f64,
}

/// The result the executor aggregates for the user (§4.2 duty iv).
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Output dataset per sink node.
    pub outputs: HashMap<NodeId, Dataset>,
    /// Monitoring data (§4.2 duty ii).
    pub stats: ExecutionStats,
    /// When the job re-planned mid-flight, the plan that was *actually*
    /// executed: the committed atoms in commit order over the original
    /// physical plan, with the final merged platform assignments and
    /// estimates. Reporting-only (its atom ids match `stats.atoms` but
    /// are not dense, so it cannot be fed back into
    /// [`Executor::execute`]); use it with
    /// [`ExecutionPlan::explain_observed`] and for calibration. `None`
    /// when the job ran the input plan unchanged.
    pub effective_plan: Option<ExecutionPlan>,
}

impl JobResult {
    /// The single output of a single-sink job.
    pub fn single(&self) -> Result<&Dataset> {
        if self.outputs.len() == 1 {
            Ok(self.outputs.values().next().expect("len checked"))
        } else {
            Err(RheemError::Execution {
                platform: "executor".into(),
                message: format!("expected exactly one sink, found {}", self.outputs.len()),
            })
        }
    }
}

/// One atom's completed run, before it is committed to the job state.
struct AtomRun {
    stats: AtomStats,
    outputs: HashMap<NodeId, Dataset>,
}

/// The lowest-id atom of a wave that gave up, with its final error.
struct WaveFailure {
    /// Position into the current plan's `atoms`.
    pos: usize,
    error: RheemError,
}

/// Everything one wave produced: the runs of every atom that succeeded
/// (committed even when a sibling failed — failover wants maximum
/// progress) and the first failure by atom id, if any.
struct WaveOutcome {
    runs: Vec<(usize, AtomRun)>,
    failure: Option<WaveFailure>,
}

/// Failover configuration: the re-planner used to route around failed
/// platforms and the per-job failover budget.
#[derive(Clone)]
struct FailoverConfig {
    replanner: Replanner,
    max_failovers: usize,
}

/// Schedules execution plans across registered platforms.
#[derive(Clone)]
pub struct Executor {
    platforms: PlatformRegistry,
    movement: MovementCostModel,
    config: ExecutorConfig,
    listeners: Vec<Arc<dyn ProgressListener>>,
    replanner: Option<Replanner>,
    backoff: BackoffPolicy,
    sleeper: Arc<dyn Sleeper>,
    health: Option<Arc<PlatformHealth>>,
    failover: Option<FailoverConfig>,
    wave_gate: Option<Arc<dyn WaveGate>>,
    cancel: Option<CancelToken>,
}

impl Executor {
    /// Build an executor over the given platforms. Retries are immediate
    /// (no backoff), no circuit breaker is attached, and failover is off
    /// until the corresponding builders install them.
    pub fn new(platforms: PlatformRegistry) -> Self {
        Executor {
            platforms,
            movement: MovementCostModel::default(),
            config: ExecutorConfig::default(),
            listeners: Vec::new(),
            replanner: None,
            backoff: BackoffPolicy::none(),
            sleeper: Arc::new(ThreadSleeper),
            health: None,
            failover: None,
            wave_gate: None,
            cancel: None,
        }
    }

    /// Enable adaptive mid-job re-optimization: between waves, compare
    /// observed boundary cardinalities against the plan's estimates and
    /// re-enumerate the unexecuted suffix when the re-planner's policy
    /// triggers. Without estimates on the plan (hand-built plans) the
    /// re-planner never fires.
    pub fn with_replanner(mut self, replanner: Replanner) -> Self {
        self.replanner = Some(replanner);
        self
    }

    /// Sleep [`BackoffPolicy`] delays between retry attempts of an atom.
    pub fn with_backoff(mut self, backoff: BackoffPolicy) -> Self {
        self.backoff = backoff;
        self
    }

    /// Replace how backoff delays are slept (tests install a
    /// [`crate::fault::VirtualSleeper`] to observe delays without paying
    /// wall-clock for them).
    pub fn with_sleeper(mut self, sleeper: Arc<dyn Sleeper>) -> Self {
        self.sleeper = sleeper;
        self
    }

    /// Attach per-platform circuit breakers. Shared (`Arc`) so breaker
    /// state persists across the jobs of a context.
    pub fn with_platform_health(mut self, health: Arc<PlatformHealth>) -> Self {
        self.health = Some(health);
        self
    }

    /// Enable failover re-planning: when an atom gives up, re-enumerate
    /// the unexecuted suffix through `replanner` with the failed
    /// platform(s) excluded, at most `max_failovers` times per job.
    pub fn with_failover(mut self, replanner: Replanner, max_failovers: usize) -> Self {
        self.failover = Some(FailoverConfig {
            replanner,
            max_failovers,
        });
        self
    }

    /// Attach a progress listener. May be called repeatedly; every
    /// listener receives every callback, in attachment order.
    pub fn with_listener(mut self, listener: std::sync::Arc<dyn ProgressListener>) -> Self {
        self.listeners.push(listener);
        self
    }

    /// Replace the movement cost model used for monitoring.
    pub fn with_movement(mut self, movement: MovementCostModel) -> Self {
        self.movement = movement;
        self
    }

    /// Replace the executor configuration.
    pub fn with_config(mut self, config: ExecutorConfig) -> Self {
        self.config = config;
        self
    }

    /// Install a [`WaveGate`] bracketing every scheduling wave (external
    /// fair-share scheduling across concurrent jobs).
    pub fn with_wave_gate(mut self, gate: Arc<dyn WaveGate>) -> Self {
        self.wave_gate = Some(gate);
        self
    }

    /// Install a cooperative [`CancelToken`]. Checked at every wave
    /// boundary and before every retry attempt; made ambient for the
    /// duration of each atom so interpreted operators and morsel loops
    /// observe it too (see `DESIGN.md` §14). Once cancelled, the job
    /// fails with [`RheemError::Cancelled`] — classified
    /// [`ErrorKind::Cancelled`](crate::ErrorKind), which is neither
    /// retryable nor failover-eligible.
    pub fn with_cancel_token(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Run an execution plan to completion.
    ///
    /// Both schedule modes drive the same wave loop (sequential mode
    /// merely caps intra-wave concurrency at one), so wave numbering and
    /// stats are mode-consistent. With a re-planner attached, execution
    /// proceeds in *phases*: after each committed wave the observed
    /// cardinalities of live boundary datasets are checked against the
    /// estimates, and on sufficient drift the unexecuted suffix is
    /// re-enumerated and spliced in (committed atoms are never re-run;
    /// wave numbering continues across the splice).
    pub fn execute(&self, plan: &ExecutionPlan, ctx: &ExecutionContext) -> Result<JobResult> {
        let result = self.execute_inner(plan, ctx);
        if let Err(RheemError::Cancelled { reason }) = &result {
            for l in &self.listeners {
                l.on_job_cancelled(*reason);
            }
        }
        result
    }

    fn execute_inner(&self, plan: &ExecutionPlan, ctx: &ExecutionContext) -> Result<JobResult> {
        let started = Instant::now();
        let deadline = self.config.timeout.and_then(|t| started.checked_add(t));
        // An executor-level cancel token rides on the execution context so
        // every layer below (platform runners, interpreter, morsel loops)
        // observes the same token; a token already on the context wins.
        let ctx = &match (&self.cancel, &ctx.cancel) {
            (Some(token), None) => ctx.clone().with_cancel_token(token.clone()),
            _ => ctx.clone(),
        };
        // Validates all cross-atom wiring (producer bounds, assignment
        // bounds, ownership) up front: scheduling never indexes blindly.
        plan.atom_dependencies()?;
        let sinks: HashSet<NodeId> = plan.physical.sinks().into_iter().collect();
        let node_outputs: Mutex<HashMap<NodeId, Dataset>> = Mutex::new(HashMap::new());
        let mut stats = ExecutionStats {
            enumeration_path: plan.enumeration.path,
            ..ExecutionStats::default()
        };

        // The plan currently being executed; a re-plan replaces it with
        // one carrying only the (re-partitioned) pending atoms.
        let mut current: Cow<'_, ExecutionPlan> = Cow::Borrowed(plan);
        let mut remaining = plan.boundary_consumer_counts();
        // Nodes of committed atoms (their boundary outputs are or were
        // materialized), and the committed atoms themselves in commit
        // order — the effective plan if a re-plan happens.
        let mut materialized: HashSet<NodeId> = HashSet::new();
        let mut committed: Vec<TaskAtom> = Vec::new();
        // Fresh-id fountain for re-planned atoms whose node set changed:
        // ids stay globally unique across splices, but not dense.
        let mut next_atom_id = plan.atoms.iter().map(|a| a.id + 1).max().unwrap_or(0);
        let mut wave_idx = 0usize;
        // Platforms excluded from failover re-enumerations, accumulated
        // across failovers of this job (a platform that failed once must
        // not re-enter through a later failover's enumeration).
        let mut excluded: Vec<String> = Vec::new();

        'phases: loop {
            let deps = current.pending_dependencies(&materialized)?;
            let mut waves = compute_waves(&deps)?;
            for wave in &mut waves {
                // Waves carry atom *positions*; order each by atom id so
                // commit order and failure reporting stay id-based even
                // on re-planned suffixes with non-monotone ids.
                wave.sort_by_key(|&pos| current.atoms[pos].id);
            }
            let mut executed: HashSet<usize> = HashSet::new();
            for wave in &waves {
                // Wave-boundary cancellation checkpoint: a cancelled job
                // stops before acquiring a fair-share slot for the wave.
                self.check_gates(ctx, deadline)?;
                if let Some(gate) = &self.wave_gate {
                    gate.before_wave(wave_idx, wave.len());
                }
                let outcome = self.run_wave(
                    current.as_ref(),
                    wave,
                    wave_idx,
                    deadline,
                    &node_outputs,
                    ctx,
                );
                if let Some(gate) = &self.wave_gate {
                    gate.after_wave(wave_idx);
                }
                wave_idx += 1;
                for (pos, run) in outcome.runs {
                    let atom = &current.atoms[pos];
                    self.commit_atom(atom, run, &mut stats, &node_outputs, &mut remaining, &sinks);
                    committed.push(atom.clone());
                    materialized.extend(atom.nodes.iter().copied());
                    executed.insert(pos);
                }
                if let Some(failure) = outcome.failure {
                    // §4.2 duty iii: before giving up on the job, try to
                    // re-route the unexecuted suffix around the failure.
                    match self.try_failover(
                        current.as_ref(),
                        &executed,
                        &failure,
                        &node_outputs,
                        deadline,
                        &mut next_atom_id,
                        &mut stats,
                        &mut excluded,
                    )? {
                        Some(new_plan) => {
                            remaining = new_plan.boundary_consumer_counts();
                            current = Cow::Owned(new_plan);
                            continue 'phases;
                        }
                        None => return Err(failure.error),
                    }
                }
                if executed.len() < current.atoms.len() {
                    if let Some(new_plan) = self.maybe_replan(
                        current.as_ref(),
                        &executed,
                        &node_outputs,
                        &remaining,
                        deadline,
                        &mut next_atom_id,
                        &mut stats,
                    )? {
                        remaining = new_plan.boundary_consumer_counts();
                        current = Cow::Owned(new_plan);
                        continue 'phases;
                    }
                }
            }
            break; // the whole phase ran without re-planning: done
        }

        // Final cancellation gate: a cancel that fires during the last
        // kernel of the final wave may have truncated that kernel's output
        // (morsel loops collapse remaining morsels once the token fires)
        // after every earlier checkpoint already passed. Never commit a
        // cancelled job's sink datasets as a successful result.
        ctx.check_cancelled()?;

        stats.waves = wave_idx;
        stats.total_wall = started.elapsed();
        for l in &self.listeners {
            l.on_job_complete(&stats);
        }
        let effective_plan = (stats.replans > 0 || stats.failovers > 0).then(|| ExecutionPlan {
            physical: plan.physical.clone(),
            assignments: current.assignments.clone(),
            atoms: committed,
            estimated_cost: plan.estimated_cost,
            estimates: current.estimates.clone(),
            enumeration: plan.enumeration.clone(),
        });
        let store = node_outputs.lock();
        let outputs = plan
            .physical
            .sinks()
            .into_iter()
            .filter_map(|s| store.get(&s).map(|d| (s, d.clone())))
            .collect();
        Ok(JobResult {
            outputs,
            stats,
            effective_plan,
        })
    }

    /// Between waves: check drift on live boundary datasets and, when the
    /// re-planner's policy triggers, return the re-enumerated suffix plan.
    #[allow(clippy::too_many_arguments)]
    fn maybe_replan(
        &self,
        current: &ExecutionPlan,
        executed: &HashSet<usize>,
        node_outputs: &Mutex<HashMap<NodeId, Dataset>>,
        remaining: &HashMap<NodeId, usize>,
        deadline: Option<Instant>,
        next_atom_id: &mut usize,
        stats: &mut ExecutionStats,
    ) -> Result<Option<ExecutionPlan>> {
        let Some(rp) = &self.replanner else {
            return Ok(None);
        };
        if stats.replans >= rp.policy.max_replans {
            return Ok(None);
        }
        let live = node_outputs.lock().clone();
        let Some((node, drift)) = worst_drift(current, &live, remaining, rp.policy.threshold)
        else {
            return Ok(None);
        };
        // A re-plan is part of the job: it must respect the deadline.
        check_deadline(deadline)?;
        let new_plan = rp.replan(current, executed, &live, &self.platforms, next_atom_id)?;
        stats.replans += 1;
        let event = ReplanEvent {
            index: stats.replans - 1,
            trigger_node: node,
            estimated_card: current.estimates[node.0].card,
            observed_card: live[&node].len() as u64,
            drift,
            replaced_atoms: current.atoms.len() - executed.len(),
            new_atoms: new_plan.atoms.len(),
            estimated_cost: new_plan.estimated_cost,
        };
        for l in &self.listeners {
            l.on_replan(&event);
        }
        Ok(Some(new_plan))
    }

    /// After a wave failure: re-enumerate the unexecuted suffix with the
    /// failed platform(s) excluded and return the spliced plan, or `None`
    /// when the job must fail with the original error (failover disabled
    /// or budget spent, error not failover-eligible, or no alternative
    /// mapping exists). A `BudgetExceeded` deadline error propagates.
    #[allow(clippy::too_many_arguments)]
    fn try_failover(
        &self,
        current: &ExecutionPlan,
        executed: &HashSet<usize>,
        failure: &WaveFailure,
        node_outputs: &Mutex<HashMap<NodeId, Dataset>>,
        deadline: Option<Instant>,
        next_atom_id: &mut usize,
        stats: &mut ExecutionStats,
        excluded: &mut Vec<String>,
    ) -> Result<Option<ExecutionPlan>> {
        let Some(fo) = &self.failover else {
            return Ok(None);
        };
        if stats.failovers >= fo.max_failovers {
            return Ok(None);
        }
        // Only errors that implicate the platform are worth failing over:
        // transient execution trouble and open breakers. Permanent errors
        // (a broken plan fails everywhere) and expired budgets abort.
        let eligible = matches!(
            failure.error,
            RheemError::Execution { .. }
                | RheemError::Storage(_)
                | RheemError::Io(_)
                | RheemError::PlatformUnavailable { .. }
        );
        if !eligible {
            return Ok(None);
        }
        // A failover re-plan is part of the job: it must respect the
        // deadline.
        check_deadline(deadline)?;

        let failed_atom = &current.atoms[failure.pos];
        let failed_platform = failed_atom.platform.clone();
        if let Some(h) = &self.health {
            // The abandoned platform is marked down so concurrent and
            // subsequent jobs sharing the breakers avoid it too, and any
            // *other* open breaker joins the exclusion set.
            h.force_open(&failed_platform);
            for p in h.unavailable() {
                if !excluded.contains(&p) {
                    excluded.push(p);
                }
            }
        }
        if !excluded.contains(&failed_platform) {
            excluded.push(failed_platform.clone());
        }

        let live = node_outputs.lock().clone();
        let rp = fo.replanner.excluding(excluded);
        let new_plan = match rp.replan(current, executed, &live, &self.platforms, next_atom_id) {
            Ok(p) => p,
            // No alternative mapping for some pending operator: the job
            // fails with the original error.
            Err(_) => return Ok(None),
        };
        stats.failovers += 1;
        let event = FailoverEvent {
            index: stats.failovers - 1,
            atom_id: failed_atom.id,
            failed_platform,
            error: failure.error.to_string(),
            excluded: excluded.clone(),
            replaced_atoms: current.atoms.len() - executed.len(),
            new_atoms: new_plan.atoms.len(),
            estimated_cost: new_plan.estimated_cost,
        };
        for l in &self.listeners {
            l.on_failover(&event);
        }
        Ok(Some(new_plan))
    }

    /// Run one wave of independent atoms, possibly concurrently.
    ///
    /// `wave` holds positions into `plan.atoms`, pre-sorted by atom id.
    /// The outcome's runs are `(atom position, run)` pairs in that same
    /// id order, holding every atom of the wave that succeeded — kept
    /// even when a sibling failed, so failover re-plans around the
    /// failure from maximum committed progress.
    ///
    /// On failure, the error of the lowest-id atom *that failed* is
    /// reported. Which atoms of the wave were attempted at all can differ
    /// with concurrency: the inline path (sequential mode, or
    /// `max_parallel_atoms <= 1`) stops scheduling at the first failure,
    /// while the threaded path stops handing out new atoms but lets
    /// atoms already in flight run to completion (their results are
    /// committed). Both paths therefore agree on the reported atom
    /// whenever per-atom failure outcomes are deterministic — true for
    /// the atom-keyed, platform-down, and probabilistic injection modes,
    /// whose decisions are pure functions of `(atom id, attempt)`; the
    /// legacy stateful "fail the next N executions" mode can shift
    /// *which* atom absorbs a failure between modes.
    fn run_wave(
        &self,
        plan: &ExecutionPlan,
        wave: &[usize],
        wave_idx: usize,
        deadline: Option<Instant>,
        node_outputs: &Mutex<HashMap<NodeId, Dataset>>,
        ctx: &ExecutionContext,
    ) -> WaveOutcome {
        let n = wave.len();
        let workers = match self.config.mode {
            ScheduleMode::Sequential => 1,
            ScheduleMode::Parallel => self.config.max_parallel_atoms.max(1).min(n),
        };
        // Share the intra-atom kernel thread budget with wave scheduling:
        // concurrent atoms each get `threads / workers` (min 1) kernel
        // threads, so atoms × kernel-threads never oversubscribes the
        // host. The divisor is the *configured* wave width — not the
        // mode-dependent worker count — so morsel counts and the
        // `kernel.parallel.*` counters replay identically under
        // `Sequential` and `Parallel` scheduling.
        let budget_share = self.config.max_parallel_atoms.max(1).min(n.max(1));
        let ctx = &ctx.share_kernel_threads(budget_share);
        let mut slots: Vec<Option<Result<AtomRun>>> = (0..n).map(|_| None).collect();

        if workers <= 1 {
            // Inline: no threads, exact sequential callback order.
            for (i, &atom_idx) in wave.iter().enumerate() {
                let run = self.run_atom(
                    plan,
                    &plan.atoms[atom_idx],
                    wave_idx,
                    deadline,
                    node_outputs,
                    ctx,
                );
                let failed = run.is_err();
                slots[i] = Some(run);
                if failed {
                    break;
                }
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let abort = AtomicBool::new(false);
            let cells: Vec<Mutex<Option<Result<AtomRun>>>> =
                (0..n).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        if abort.load(Ordering::Relaxed) {
                            return;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return;
                        }
                        let run = self.run_atom(
                            plan,
                            &plan.atoms[wave[i]],
                            wave_idx,
                            deadline,
                            node_outputs,
                            ctx,
                        );
                        if run.is_err() {
                            abort.store(true, Ordering::Relaxed);
                        }
                        *cells[i].lock() = Some(run);
                    });
                }
            });
            slots = cells.into_iter().map(|c| c.into_inner()).collect();
        }

        let mut runs = Vec::with_capacity(n);
        let mut failure = None;
        for (i, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(Ok(run)) => runs.push((wave[i], run)),
                // Slots are in ascending atom id: the first error seen is
                // the lowest-id failure.
                Some(Err(e)) if failure.is_none() => {
                    failure = Some(WaveFailure {
                        pos: wave[i],
                        error: e,
                    });
                }
                Some(Err(_)) => {}
                // Never started because a lower-id atom aborted the wave.
                None => {}
            }
        }
        WaveOutcome { runs, failure }
    }

    /// Gather one atom's inputs, run it with classified, bounded retries
    /// under the job deadline, and report progress.
    fn run_atom(
        &self,
        plan: &ExecutionPlan,
        atom: &TaskAtom,
        wave: usize,
        deadline: Option<Instant>,
        node_outputs: &Mutex<HashMap<NodeId, Dataset>>,
        ctx: &ExecutionContext,
    ) -> Result<AtomRun> {
        self.check_gates(ctx, deadline)?;
        // An open circuit breaker rejects the atom before any work: no
        // inputs gathered, no retry budget burned — straight to the
        // failover decision.
        if let Some(h) = &self.health {
            if let Err(e) = h.admit(&atom.platform) {
                for l in &self.listeners {
                    l.on_atom_failed(atom.id, &e, self.config.max_retries);
                }
                return Err(e);
            }
        }
        let platform = self.platforms.get(&atom.platform)?;

        // Gather boundary inputs and account for data movement.
        let mut inputs: AtomInputs = HashMap::new();
        let mut records_in = 0u64;
        let mut movement_cost_ms = 0.0;
        {
            let store = node_outputs.lock();
            for edge in &atom.inputs {
                let data = store.get(&edge.producer).ok_or_else(|| {
                    RheemError::InvalidPlan(format!(
                        "atom {} needs output of node {} before it was produced",
                        atom.id, edge.producer
                    ))
                })?;
                records_in += data.len() as u64;
                let from = plan.assignments.get(edge.producer.0).ok_or_else(|| {
                    RheemError::InvalidPlan(format!(
                        "node {} has no platform assignment",
                        edge.producer
                    ))
                })?;
                movement_cost_ms += self.movement.cost(from, &atom.platform, data.len() as f64);
                inputs.insert((edge.consumer, edge.slot), data.clone());
            }
        }

        for l in &self.listeners {
            l.on_atom_start(atom.id, &atom.platform);
        }

        // Execute with classified, bounded retries (§4.2 duty iii). The
        // job deadline is re-checked before every attempt so exhausting
        // retries cannot blow through the timeout budget. Only transient
        // errors consume retry budget: permanent errors would
        // deterministically fail again, so they abort after one attempt
        // with the unspent budget reported as suppressed retries.
        let atom_started = Instant::now();
        let mut attempts = 0usize;
        let result = loop {
            self.check_gates(ctx, deadline)?;
            attempts += 1;
            let injected = ctx
                .failure_injector
                .as_ref()
                .and_then(|inj| inj.inject(&atom.platform, atom.id, attempts));
            let outcome = match injected {
                Some(kind) => Err(FailureInjector::error_for(kind, &atom.platform, atom.id)),
                None => run_guarded(platform.as_ref(), &plan.physical, atom, &inputs, ctx),
            };
            match outcome {
                Ok(r) => {
                    if let Some(h) = &self.health {
                        h.record_success(&atom.platform);
                    }
                    break r;
                }
                Err(e) => {
                    // Only errors that implicate the platform feed its
                    // breaker; a permanent error is the plan's fault.
                    let opened = e.is_retryable()
                        && self
                            .health
                            .as_ref()
                            .is_some_and(|h| h.record_failure(&atom.platform));
                    let budget_left = self
                        .config
                        .max_retries
                        .saturating_sub(attempts.saturating_sub(1));
                    if !e.is_retryable() || opened || budget_left == 0 {
                        // Budget actually spent on transient retries
                        // counts as used; anything left when a
                        // non-retryable error (or an opening breaker)
                        // ends the loop early was suppressed.
                        let suppressed = if e.is_retryable() && !opened {
                            0
                        } else {
                            budget_left
                        };
                        for l in &self.listeners {
                            l.on_atom_failed(atom.id, &e, suppressed);
                        }
                        return Err(e);
                    }
                    for l in &self.listeners {
                        l.on_atom_retry(atom.id, attempts, &e);
                    }
                    // Clamp each nap to the remaining deadline budget so
                    // backoff can never sleep past the job deadline, and
                    // nap interruptibly when a cancel token is installed
                    // so cancellation cuts the backoff short.
                    let delay = self.backoff.delay(atom.id, attempts);
                    let nap = match deadline {
                        Some(d) => delay.min(d.saturating_duration_since(Instant::now())),
                        None => delay,
                    };
                    match &ctx.cancel {
                        Some(token) => self.sleeper.sleep_cancellable(nap, token),
                        None => self.sleeper.sleep(nap),
                    }
                }
            }
        };

        let stats = AtomStats {
            atom_id: atom.id,
            platform: atom.platform.clone(),
            wave,
            attempts,
            wall: atom_started.elapsed(),
            records_in,
            records_out: result.records_processed,
            simulated_overhead_ms: result.simulated_overhead_ms,
            simulated_elapsed_ms: result.simulated_elapsed_ms,
            movement_cost_ms,
            node_observations: result.node_observations,
        };
        for l in &self.listeners {
            l.on_atom_complete(&stats);
        }
        Ok(AtomRun {
            stats,
            outputs: result.outputs,
        })
    }

    /// The cancellation + deadline gate shared by wave boundaries and
    /// retry attempts. An expired deadline also trips the ambient cancel
    /// token (reason [`CancelReason::DeadlineExceeded`]) so morsel loops
    /// inside in-flight sibling atoms stop promptly instead of running
    /// their fragments to completion.
    fn check_gates(&self, ctx: &ExecutionContext, deadline: Option<Instant>) -> Result<()> {
        ctx.check_cancelled()?;
        if let Some(d) = deadline {
            if Instant::now() >= d {
                if let Some(token) = &ctx.cancel {
                    token.cancel(CancelReason::DeadlineExceeded);
                }
                return Err(RheemError::BudgetExceeded(
                    "job exceeded its wall-clock budget".into(),
                ));
            }
        }
        Ok(())
    }

    /// Fold one finished atom into the job state: record its stats,
    /// publish its outputs, and release inputs it was the last consumer of.
    fn commit_atom(
        &self,
        atom: &TaskAtom,
        run: AtomRun,
        stats: &mut ExecutionStats,
        node_outputs: &Mutex<HashMap<NodeId, Dataset>>,
        remaining: &mut HashMap<NodeId, usize>,
        sinks: &HashSet<NodeId>,
    ) {
        stats.retries += run.stats.attempts.saturating_sub(1);
        stats.total_movement_ms += run.stats.movement_cost_ms;
        stats.atoms.push(run.stats);

        let mut store = node_outputs.lock();
        for (node, data) in run.outputs {
            store.insert(node, data);
        }
        // Reference-counted intermediate lifetime: a dataset dies with its
        // last boundary consumer unless it is a sink output.
        for edge in &atom.inputs {
            if let Some(n) = remaining.get_mut(&edge.producer) {
                *n = n.saturating_sub(1);
                if *n == 0 && !sinks.contains(&edge.producer) {
                    store.remove(&edge.producer);
                }
            }
        }
    }
}

/// Partition the atom DAG into scheduling waves (Kahn's algorithm), each
/// wave sorted by ascending atom id. Fails on a dependency cycle.
fn compute_waves(deps: &[Vec<usize>]) -> Result<Vec<Vec<usize>>> {
    let n = deps.len();
    let mut indegree: Vec<usize> = deps.iter().map(|d| d.len()).collect();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ds) in deps.iter().enumerate() {
        for &d in ds {
            dependents[d].push(i);
        }
    }
    let mut current: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut waves = Vec::new();
    let mut scheduled = 0usize;
    while !current.is_empty() {
        current.sort_unstable();
        scheduled += current.len();
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dependents[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    next.push(j);
                }
            }
        }
        waves.push(std::mem::take(&mut current));
        current = next;
    }
    if scheduled != n {
        return Err(RheemError::InvalidPlan(format!(
            "atom dependency cycle: only {scheduled} of {n} atoms schedulable"
        )));
    }
    Ok(waves)
}

/// Run one atom invocation with panic isolation and the ambient cancel
/// scope installed for morsel-level checkpoints.
///
/// A panic anywhere below the platform boundary (typically a user UDF)
/// is caught and converted into [`RheemError::Panic`] — classified
/// [`ErrorKind::Permanent { panic: true }`](crate::ErrorKind) — so one
/// poisoned closure fails its job with a clean error instead of
/// unwinding through the wave scheduler and taking the worker thread
/// down. Platforms and UDFs are wrapped in `AssertUnwindSafe` under the
/// unwind-safety contract of `DESIGN.md` §14: a failed atom's inputs
/// and outputs are discarded wholesale and never re-observed, so
/// partially mutated state cannot leak.
fn run_guarded(
    platform: &dyn crate::platform::Platform,
    physical: &crate::plan::PhysicalPlan,
    atom: &TaskAtom,
    inputs: &AtomInputs,
    ctx: &ExecutionContext,
) -> Result<crate::platform::AtomResult> {
    let guarded = || {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            platform.execute_atom(physical, atom, inputs, ctx)
        }))
        .unwrap_or_else(|payload| {
            Err(RheemError::Panic {
                platform: atom.platform.clone(),
                message: panic_message(payload.as_ref()),
            })
        })
    };
    match &ctx.cancel {
        Some(token) => crate::kernels::parallel::with_cancel_scope(token, guarded),
        None => guarded(),
    }
}

/// Best-effort rendering of a caught panic payload (`&str` and `String`
/// payloads cover `panic!` in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

fn check_deadline(deadline: Option<Instant>) -> Result<()> {
    if let Some(d) = deadline {
        if Instant::now() >= d {
            return Err(RheemError::BudgetExceeded(
                "job exceeded its wall-clock budget".into(),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waves_linearize_chains_and_overlap_fanouts() {
        // 0 -> 1 -> 2 chain: three waves.
        let deps = vec![vec![], vec![0], vec![1]];
        assert_eq!(
            compute_waves(&deps).unwrap(),
            vec![vec![0], vec![1], vec![2]]
        );
        // Diamond: 0; {1, 2}; 3.
        let deps = vec![vec![], vec![0], vec![0], vec![1, 2]];
        assert_eq!(
            compute_waves(&deps).unwrap(),
            vec![vec![0], vec![1, 2], vec![3]]
        );
        // Fully independent: one wave.
        let deps = vec![vec![], vec![], vec![]];
        assert_eq!(compute_waves(&deps).unwrap(), vec![vec![0, 1, 2]]);
        // Empty plan: no waves.
        assert!(compute_waves(&[]).unwrap().is_empty());
    }

    #[test]
    fn waves_reject_cycles() {
        let deps = vec![vec![1], vec![0]];
        assert!(matches!(
            compute_waves(&deps),
            Err(RheemError::InvalidPlan(_))
        ));
        // Partial cycle behind a valid prefix.
        let deps = vec![vec![], vec![0, 2], vec![1]];
        assert!(compute_waves(&deps).is_err());
    }

    #[test]
    fn deadline_is_a_hard_gate() {
        assert!(check_deadline(None).is_ok());
        let past = Instant::now();
        assert!(matches!(
            check_deadline(Some(past)),
            Err(RheemError::BudgetExceeded(_))
        ));
        let far = Instant::now().checked_add(Duration::from_secs(3600));
        assert!(check_deadline(far).is_ok());
    }

    #[test]
    fn default_config_uses_available_parallelism() {
        let cfg = ExecutorConfig::default();
        assert!(cfg.max_parallel_atoms >= 1);
        assert_eq!(cfg.mode, ScheduleMode::Parallel);
    }
}
