//! The executor (§4.2): schedules task atoms on their platforms, monitors
//! progress, copes with failures, and aggregates results.
//!
//! Duties, verbatim from the paper: "(i) scheduling the resulting execution
//! plan on the selected data processing frameworks, (ii) monitoring the
//! progress of plan execution, (iii) coping with failures, and
//! (iv) aggregating and returning results to users."

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::cost::MovementCostModel;
use crate::data::Dataset;
use crate::error::{Result, RheemError};
use crate::plan::{ExecutionPlan, NodeId};
use crate::platform::{AtomInputs, ExecutionContext, PlatformRegistry};

/// Executor tuning.
#[derive(Clone, Debug)]
pub struct ExecutorConfig {
    /// How many times a failed atom is retried before the job fails.
    pub max_retries: usize,
    /// Wall-clock budget for the whole job (the paper's baselines were
    /// "stopped after 22 hours"; benchmarks use this to reproduce that).
    pub timeout: Option<Duration>,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            max_retries: 2,
            timeout: None,
        }
    }
}

/// Per-atom monitoring record.
#[derive(Clone, Debug)]
pub struct AtomStats {
    /// Atom id within the execution plan.
    pub atom_id: usize,
    /// Platform that executed it.
    pub platform: String,
    /// Attempts used (1 = no retry).
    pub attempts: usize,
    /// Wall-clock execution time of the successful attempt.
    pub wall: Duration,
    /// Records entering the atom across its boundary.
    pub records_in: u64,
    /// Records produced by operators inside the atom.
    pub records_out: u64,
    /// Deterministic simulated overhead reported by the platform.
    pub simulated_overhead_ms: f64,
    /// Simulated elapsed time reported by the platform (critical path).
    pub simulated_elapsed_ms: f64,
    /// Simulated cost of moving the atom's inputs across platforms.
    pub movement_cost_ms: f64,
}

/// Job-level monitoring summary.
#[derive(Clone, Debug, Default)]
pub struct ExecutionStats {
    /// One record per executed atom, in schedule order.
    pub atoms: Vec<AtomStats>,
    /// Total wall-clock time of the job.
    pub total_wall: Duration,
    /// Total simulated movement cost.
    pub total_movement_ms: f64,
    /// Total retries across all atoms.
    pub retries: usize,
}

impl ExecutionStats {
    /// Distinct platforms that participated in the job.
    pub fn platforms_used(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.atoms.iter().map(|a| a.platform.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Total simulated overhead charged by platforms.
    pub fn total_simulated_overhead_ms(&self) -> f64 {
        self.atoms.iter().map(|a| a.simulated_overhead_ms).sum()
    }

    /// Total simulated elapsed time of the job: the platforms' critical
    /// paths plus inter-platform movement. This is the figure-of-merit the
    /// benchmark harness reports (deterministic and host-independent).
    pub fn total_simulated_ms(&self) -> f64 {
        self.atoms.iter().map(|a| a.simulated_elapsed_ms).sum::<f64>() + self.total_movement_ms
    }

    /// A human-readable monitoring report (one line per atom).
    pub fn explain(&self) -> String {
        let mut s = String::from(
            "atom  platform     attempts  in→out records     simulated_ms  movement_ms
",
        );
        for a in &self.atoms {
            s.push_str(&format!(
                "{:<4}  {:<11}  {:<8}  {:>7} → {:<7}  {:>12.2}  {:>11.2}
",
                a.atom_id,
                a.platform,
                a.attempts,
                a.records_in,
                a.records_out,
                a.simulated_elapsed_ms,
                a.movement_cost_ms,
            ));
        }
        s.push_str(&format!(
            "total: {:.2} simulated ms ({:.2} movement), {:.2} ms wall, {} retries
",
            self.total_simulated_ms(),
            self.total_movement_ms,
            self.total_wall.as_secs_f64() * 1e3,
            self.retries,
        ));
        s
    }
}

/// Observer of job progress (§4.2 duty ii: "monitoring the progress of
/// plan execution"). All methods have empty defaults; implement only what
/// you need. Callbacks run synchronously on the executor's thread.
pub trait ProgressListener: Send + Sync {
    /// An atom is about to run (after its inputs were gathered).
    fn on_atom_start(&self, _atom_id: usize, _platform: &str) {}
    /// An attempt failed and will be retried.
    fn on_atom_retry(&self, _atom_id: usize, _attempt: usize, _error: &RheemError) {}
    /// An atom completed; its monitoring record is final.
    fn on_atom_complete(&self, _stats: &AtomStats) {}
    /// The whole job completed successfully.
    fn on_job_complete(&self, _stats: &ExecutionStats) {}
}

/// The result the executor aggregates for the user (§4.2 duty iv).
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Output dataset per sink node.
    pub outputs: HashMap<NodeId, Dataset>,
    /// Monitoring data (§4.2 duty ii).
    pub stats: ExecutionStats,
}

impl JobResult {
    /// The single output of a single-sink job.
    pub fn single(&self) -> Result<&Dataset> {
        if self.outputs.len() == 1 {
            Ok(self.outputs.values().next().expect("len checked"))
        } else {
            Err(RheemError::Execution {
                platform: "executor".into(),
                message: format!("expected exactly one sink, found {}", self.outputs.len()),
            })
        }
    }
}

/// Schedules execution plans across registered platforms.
#[derive(Clone)]
pub struct Executor {
    platforms: PlatformRegistry,
    movement: MovementCostModel,
    config: ExecutorConfig,
    listener: Option<std::sync::Arc<dyn ProgressListener>>,
}

impl Executor {
    /// Build an executor over the given platforms.
    pub fn new(platforms: PlatformRegistry) -> Self {
        Executor {
            platforms,
            movement: MovementCostModel::default(),
            config: ExecutorConfig::default(),
            listener: None,
        }
    }

    /// Attach a progress listener.
    pub fn with_listener(mut self, listener: std::sync::Arc<dyn ProgressListener>) -> Self {
        self.listener = Some(listener);
        self
    }

    /// Replace the movement cost model used for monitoring.
    pub fn with_movement(mut self, movement: MovementCostModel) -> Self {
        self.movement = movement;
        self
    }

    /// Replace the executor configuration.
    pub fn with_config(mut self, config: ExecutorConfig) -> Self {
        self.config = config;
        self
    }

    /// Run an execution plan to completion.
    pub fn execute(&self, plan: &ExecutionPlan, ctx: &ExecutionContext) -> Result<JobResult> {
        let started = Instant::now();
        let mut node_outputs: HashMap<NodeId, Dataset> = HashMap::new();
        let mut stats = ExecutionStats::default();

        for atom in &plan.atoms {
            self.check_timeout(started)?;
            let platform = self.platforms.get(&atom.platform)?;

            // Gather boundary inputs and account for data movement.
            let mut inputs: AtomInputs = HashMap::new();
            let mut records_in = 0u64;
            let mut movement_cost_ms = 0.0;
            for edge in &atom.inputs {
                let data = node_outputs.get(&edge.producer).ok_or_else(|| {
                    RheemError::InvalidPlan(format!(
                        "atom {} needs output of node {} before it was produced",
                        atom.id, edge.producer
                    ))
                })?;
                records_in += data.len() as u64;
                let from = &plan.assignments[edge.producer.0];
                movement_cost_ms += self.movement.cost(from, &atom.platform, data.len() as f64);
                inputs.insert((edge.consumer, edge.slot), data.clone());
            }

            if let Some(l) = &self.listener {
                l.on_atom_start(atom.id, &atom.platform);
            }

            // Execute with bounded retries (§4.2 duty iii).
            let atom_started = Instant::now();
            let mut attempts = 0usize;
            let result = loop {
                attempts += 1;
                self.check_timeout(started)?;
                let injected = ctx
                    .failure_injector
                    .as_ref()
                    .is_some_and(|inj| inj.should_fail(&atom.platform));
                let outcome = if injected {
                    Err(RheemError::Execution {
                        platform: atom.platform.clone(),
                        message: format!("injected failure on atom {}", atom.id),
                    })
                } else {
                    platform.execute_atom(&plan.physical, atom, &inputs, ctx)
                };
                match outcome {
                    Ok(r) => break r,
                    Err(e) if attempts <= self.config.max_retries => {
                        stats.retries += 1;
                        if let Some(l) = &self.listener {
                            l.on_atom_retry(atom.id, attempts, &e);
                        }
                    }
                    Err(e) => return Err(e),
                }
            };

            let wall = atom_started.elapsed();
            stats.atoms.push(AtomStats {
                atom_id: atom.id,
                platform: atom.platform.clone(),
                attempts,
                wall,
                records_in,
                records_out: result.records_processed,
                simulated_overhead_ms: result.simulated_overhead_ms,
                simulated_elapsed_ms: result.simulated_elapsed_ms,
                movement_cost_ms,
            });
            stats.total_movement_ms += movement_cost_ms;
            if let Some(l) = &self.listener {
                l.on_atom_complete(stats.atoms.last().expect("just pushed"));
            }

            for (node, data) in result.outputs {
                node_outputs.insert(node, data);
            }
        }

        stats.total_wall = started.elapsed();
        if let Some(l) = &self.listener {
            l.on_job_complete(&stats);
        }
        let outputs = plan
            .physical
            .sinks()
            .into_iter()
            .filter_map(|s| node_outputs.get(&s).map(|d| (s, d.clone())))
            .collect();
        Ok(JobResult { outputs, stats })
    }

    fn check_timeout(&self, started: Instant) -> Result<()> {
        if let Some(budget) = self.config.timeout {
            if started.elapsed() > budget {
                return Err(RheemError::BudgetExceeded(format!(
                    "job exceeded its {budget:?} budget"
                )));
            }
        }
        Ok(())
    }
}
