//! # rheem-core
//!
//! A Rust implementation of the RHEEM vision from *"Road to Freedom in Big
//! Data Analytics"* (EDBT 2016): a three-layer data processing abstraction
//! that frees applications from being tied to a single data processing
//! platform.
//!
//! The three layers (paper Figure 1):
//!
//! 1. **Application layer** — [`logical`] operators: application-specific
//!    UDF templates over *data quanta* ([`data::Record`]).
//! 2. **Core layer** — [`physical`] operators and [`plan::PhysicalPlan`]s;
//!    the [`optimizer`] translates logical plans via declarative
//!    [`mapping`]s, rewrites them, assigns a platform to every operator
//!    using pluggable [`cost`] models (including inter-platform movement
//!    costs), and splits the result into task atoms.
//! 3. **Platform layer** — [`platform::Platform`] implementations (see the
//!    `rheem-platforms` crate) run task atoms with their own execution
//!    operators; the [`executor`] schedules atoms, monitors progress,
//!    retries failures, and aggregates results.
//!
//! Start with [`context::RheemContext`] and [`plan::PlanBuilder`].

#![warn(missing_docs)]

pub mod context;
pub mod cost;
pub mod data;
pub mod error;
pub mod executor;
pub mod expr;
pub mod fault;
pub mod interpreter;
pub mod kernels;
pub mod logical;
pub mod mapping;
pub mod observe;
pub mod optimizer;
pub mod physical;
pub mod plan;
pub mod platform;
pub mod query;
pub mod streaming;
pub mod triples;
pub mod udf;

pub use context::RheemContext;
pub use cost::{ChannelConversionGraph, ChannelKind, ChannelRoute, ChannelSpec, MovementCostModel};
pub use data::{
    Bitmap, Chunk, Column, ColumnData, DataType, Dataset, Field, Record, Schema, Value,
};
pub use error::{CancelReason, ErrorKind, Result, RheemError};
pub use executor::{
    AtomStats, ExecutionStats, Executor, ExecutorConfig, FailoverEvent, JobResult,
    ProgressListener, ReplanEvent, ScheduleMode, WaveGate,
};
pub use expr::{BinOp, Expr};
pub use fault::{
    BackoffPolicy, BreakerPolicy, CancelToken, FaultPolicy, PlatformHealth, Sleeper, ThreadSleeper,
    VirtualSleeper,
};
pub use kernels::parallel::KernelParallelism;
pub use logical::{LogicalOperator, LogicalPayload, LogicalPlan, LogicalPlanBuilder};
#[cfg(feature = "observe-json")]
pub use observe::JsonLinesSink;
pub use observe::{
    canonical_tree, CostCalibration, MetricsRegistry, NodeObservation, Observability,
    RingBufferSink, SpanKind, SpanRecord, TraceSink,
};
pub use optimizer::{
    assignment_cost, enumerate_exhaustive, EnumerationConfig, EnumerationStrategy,
    MultiPlatformOptimizer, PlanCache, PlanCacheConfig, PlanCacheStats, ReplanPolicy, Replanner,
};
pub use physical::{CustomPhysicalOp, OpKind, PhysicalOp};
pub use plan::{
    ChannelConversion, EnumerationInfo, EnumerationPath, ExecutionPlan, NodeEstimate, NodeId,
    PhysicalPlan, PlanBuilder, PlanFingerprint, TaskAtom,
};
pub use platform::{
    AtomInputs, AtomResult, ExecutionContext, FailureInjector, InjectedKind, Platform,
    PlatformRegistry, ProcessingProfile, StorageService,
};
