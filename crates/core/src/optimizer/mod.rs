//! Multi-layer optimization (§4).
//!
//! * [`application`] — logical → physical translation via declarative
//!   mappings (§4.1);
//! * [`rewrites`] — sound UDF-algebra rewrites (§4.1/§4.2 "traditional
//!   physical optimizations");
//! * [`enumerate`] — platform assignment by DP with pluggable cost models
//!   and inter-platform movement costs, plus task-atom splitting (§4.2);
//! * [`replan`] — adaptive mid-job re-optimization: the executor's hook
//!   for re-enumerating the unexecuted suffix of a running job when
//!   observed cardinalities drift from the estimates.
//!
//! [`MultiPlatformOptimizer`] wires them together: it is the component in
//! the middle of the paper's Figure 1.

pub mod application;
pub mod cache;
pub mod enumerate;
pub mod enumerate_v2;
pub mod fuse;
pub mod replan;
pub mod rewrites;

use std::sync::Arc;

use crate::cost::{CardinalityEstimator, MovementCostModel};
use crate::error::Result;
use crate::logical::LogicalPlan;
use crate::mapping::MappingRegistry;
use crate::observe::{CostCalibration, MetricsRegistry};
use crate::plan::{ExecutionPlan, PhysicalPlan};
use crate::platform::PlatformRegistry;

pub use cache::{PlanCache, PlanCacheConfig, PlanCacheStats};
pub use enumerate::{EnumerationConfig, EnumerationStrategy};
pub use enumerate_v2::{
    assignment_cost, enumerate_exhaustive, enumerate_v2, enumerate_with_config,
};
pub use replan::{ReplanPolicy, Replanner};

/// The multi-platform task optimizer (core layer, §4.2).
#[derive(Clone, Default)]
pub struct MultiPlatformOptimizer {
    /// Cardinality estimation used for costing.
    pub estimator: CardinalityEstimator,
    /// Inter-platform data movement prices.
    pub movement: MovementCostModel,
    /// Logical-to-physical mappings for the application layer.
    pub mappings: MappingRegistry,
    /// Enumeration knobs.
    pub config: OptimizerConfig,
    /// Runtime feedback: EMA correction factors per (operator, platform),
    /// consulted on every enumeration pass and fed by
    /// [`crate::RheemContext`] after each observed job. Shared via `Arc`
    /// so cloning the optimizer keeps one table.
    pub calibration: Arc<CostCalibration>,
    /// Optional metrics registry the optimizer reports into.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Optional plan cache: reuse enumeration results for plans with equal
    /// canonical fingerprints (see [`cache`] for keying and invalidation).
    pub plan_cache: Option<Arc<PlanCache>>,
    /// Scope for cache entries whose fingerprint is opaque (closure
    /// identity). The server assigns one scope per session so opaque
    /// fingerprints are never shared across sessions; `0` (the default)
    /// is the embedded single-tenant scope.
    pub cache_scope: u64,
}

/// Configuration of the whole optimization pipeline.
#[derive(Clone, Debug)]
pub struct OptimizerConfig {
    /// Apply the algebraic rewrite rules before enumeration.
    pub apply_rewrites: bool,
    /// Platform enumeration knobs.
    pub enumeration: EnumerationConfig,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            apply_rewrites: true,
            enumeration: EnumerationConfig::default(),
        }
    }
}

impl MultiPlatformOptimizer {
    /// An optimizer with default cost models, mappings, and configuration.
    pub fn new() -> Self {
        MultiPlatformOptimizer::default()
    }

    /// Pin every operator to one platform (disables platform selection).
    pub fn force_platform(mut self, platform: impl Into<String>) -> Self {
        self.config.enumeration.forced_platform = Some(platform.into());
        self
    }

    /// Ignore data movement costs during enumeration (ablation B).
    pub fn ignore_movement_costs(mut self) -> Self {
        self.config.enumeration.consider_movement_costs = false;
        self
    }

    /// Disable algebraic rewrites.
    pub fn without_rewrites(mut self) -> Self {
        self.config.apply_rewrites = false;
        self
    }

    /// Opt into the subplan-lattice enumerator (`enumerate_v2`): chain
    /// contraction, channel-aware movement pricing, lossless frontier
    /// pruning, and a budget that degrades to the greedy DP.
    pub fn with_enumeration_v2(mut self) -> Self {
        self.config.enumeration.strategy = enumerate::EnumerationStrategy::LatticeV2;
        self
    }

    /// Attach a plan cache; share the same `Arc` across optimizers (or
    /// context clones) to share enumeration results.
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    /// Set the cache scope confining opaque (closure-identity) plan
    /// fingerprints; see [`MultiPlatformOptimizer::cache_scope`].
    pub fn with_cache_scope(mut self, scope: u64) -> Self {
        self.cache_scope = scope;
        self
    }

    /// Optimize a physical plan into an execution plan.
    ///
    /// When a [`PlanCache`] is attached, the incoming plan is fingerprinted
    /// *before* rewrites (rewrites mint fresh closure `Arc`s, so post-
    /// rewrite fingerprints of equal plans would not be stable), probed
    /// against the cache, and on a validated hit the cached assignments,
    /// atoms, and estimates are re-targeted at the freshly rewritten plan —
    /// skipping enumeration entirely. Misses enumerate as usual and
    /// populate the cache.
    pub fn optimize(
        &self,
        plan: PhysicalPlan,
        platforms: &PlatformRegistry,
    ) -> Result<ExecutionPlan> {
        plan.validate()?;
        let probe = self.plan_cache.as_ref().map(|cache| {
            let fp = plan.fingerprint();
            let key = crate::fault::splitmix64(
                fp.hash ^ cache::config_fingerprint(&self.config, platforms),
            );
            let scope = if fp.opaque { self.cache_scope } else { 0 };
            (cache, key, scope)
        });
        let plan = if self.config.apply_rewrites {
            rewrites::apply_rewrites(plan)?
        } else {
            plan
        };
        let mut rewritten_hash = 0u64;
        if let Some((cache, key, scope)) = &probe {
            rewritten_hash = plan.fingerprint().hash;
            match cache.lookup(*key, *scope, &self.calibration) {
                cache::CacheLookup::Hit(parts) => {
                    // Structural guards: a hash collision (or a rewrite
                    // divergence) is demoted to a plain miss rather than
                    // executing a mis-targeted schedule.
                    if parts.rewritten_hash == rewritten_hash
                        && parts.assignments.len() == plan.len()
                    {
                        cache.record_hit();
                        let exec = ExecutionPlan {
                            physical: Arc::new(plan),
                            assignments: parts.assignments,
                            atoms: parts.atoms,
                            estimated_cost: parts.estimated_cost,
                            estimates: parts.estimates,
                            enumeration: parts.enumeration,
                        };
                        self.report_metrics(&exec, true, false);
                        return Ok(exec);
                    }
                    cache.record_miss();
                    self.report_cache_counters(false, false);
                }
                cache::CacheLookup::Miss { invalidated } => {
                    cache.record_miss();
                    self.report_cache_counters(false, invalidated);
                }
            }
        }
        // Declare every registered platform's channel specs on the movement
        // model so cross-platform edges are priced through the conversion
        // graph (a model with no declared channels keeps legacy flat pricing).
        let movement = self.movement.channelized(platforms);
        let result = enumerate_v2::enumerate_with_config(
            Arc::new(plan),
            platforms,
            &self.estimator,
            &movement,
            &self.config.enumeration,
            &self.calibration,
        );
        if let Ok(exec) = &result {
            if let Some((cache, key, scope)) = &probe {
                cache.insert(*key, *scope, rewritten_hash, exec, &self.calibration);
            }
            self.report_metrics(exec, false, false);
        }
        result
    }

    /// Report per-optimization counters (and, on cache-enabled runs, the
    /// hit counter — misses were already reported at probe time).
    fn report_metrics(&self, exec: &ExecutionPlan, cache_hit: bool, invalidated: bool) {
        let Some(metrics) = &self.metrics else {
            return;
        };
        metrics.counter("optimizer.runs").inc();
        metrics
            .counter("optimizer.nodes_assigned")
            .add(exec.assignments.len() as u64);
        metrics
            .gauge("optimizer.calibration_pairs")
            .set(self.calibration.len() as u64);
        if self.plan_cache.is_some() && cache_hit {
            metrics.counter("optimizer.plan_cache.hits").inc();
        }
        if invalidated {
            metrics.counter("optimizer.plan_cache.invalidations").inc();
        }
    }

    /// Report a cache miss (and optional drift invalidation) into metrics.
    fn report_cache_counters(&self, hit: bool, invalidated: bool) {
        let Some(metrics) = &self.metrics else {
            return;
        };
        if hit {
            metrics.counter("optimizer.plan_cache.hits").inc();
        } else {
            metrics.counter("optimizer.plan_cache.misses").inc();
        }
        if invalidated {
            metrics.counter("optimizer.plan_cache.invalidations").inc();
        }
    }

    /// A [`Replanner`] sharing this optimizer's models, so mid-job
    /// re-enumeration prices platforms exactly as the original pass did
    /// (same estimator, movement prices, enumeration knobs, and — live —
    /// the same calibration table).
    pub fn replanner(&self, policy: ReplanPolicy) -> Replanner {
        Replanner {
            estimator: self.estimator.clone(),
            movement: self.movement.clone(),
            enumeration: self.config.enumeration.clone(),
            calibration: self.calibration.clone(),
            policy,
        }
    }

    /// Lower a logical plan and optimize it in one step.
    pub fn optimize_logical(
        &self,
        plan: &LogicalPlan,
        platforms: &PlatformRegistry,
    ) -> Result<ExecutionPlan> {
        let physical = application::lower(plan, &self.mappings)?;
        self.optimize(physical, platforms)
    }
}
