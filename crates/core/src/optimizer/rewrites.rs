//! Traditional plan rewrites, restricted to what is *sound* in a UDF-only
//! algebra (§4.2, fifth aspect: "apply traditional physical optimizations,
//! whenever possible ... general in order to be efficient on any processing
//! platform").
//!
//! Because operator logic is opaque UDFs, classic rewrites that need
//! predicate introspection (e.g. pushing a filter through a join) are not
//! available. The rules here rely only on algebraic identities of the
//! operator *shapes*:
//!
//! * **Map fusion** — `Map(g) ∘ Map(f) = Map(g ∘ f)` when the intermediate
//!   result has a single consumer;
//! * **Filter fusion** — consecutive filters become one conjunctive filter;
//! * **Filter–union push-down** — `σ(A ∪ B) = σ(A) ∪ σ(B)`;
//! * **Cross-product elimination** — `σ_p(A × B)` becomes a theta join
//!   evaluating `p` pairwise, sparing the materialized cross product. This
//!   is the physical analogue of the paper's §4.1 enhancer example (avoiding
//!   "a costly cross product over the entire input dataset").

use std::sync::Arc;

use crate::data::Record;
use crate::error::Result;
use crate::physical::PhysicalOp;
use crate::plan::{NodeId, PhysicalNode, PhysicalPlan};
use crate::udf::{FilterUdf, MapUdf};

/// Apply all rewrite rules to a fixpoint (bounded by plan size).
pub fn apply_rewrites(plan: PhysicalPlan) -> Result<PhysicalPlan> {
    let mut plan = shared_scans(plan)?;
    // Each pass strictly reduces node count or leaves the plan unchanged,
    // so plan.len() passes suffice for a fixpoint.
    for _ in 0..plan.len().max(1) {
        let before = plan.len();
        plan = fuse_maps(plan)?;
        plan = fuse_filters(plan)?;
        plan = push_filter_through_union(plan)?;
        plan = cross_filter_to_theta(plan)?;
        // Compile adjacent expression-bearing operators into chunk
        // pipelines last, so the algebraic rules above see the plain
        // operator shapes first.
        plan = super::fuse::fuse_pipelines(plan)?;
        if plan.len() == before {
            break;
        }
    }
    Ok(plan)
}

/// **Shared scans** (§4.2's "traditional physical optimizations. Examples
/// are shared scans"): duplicate source nodes collapse into one, so a
/// dataset referenced several times in a plan is read once.
///
/// Two sources are *provably* identical when they are `StorageSource`s of
/// the same dataset id, or `CollectionSource`s sharing the same underlying
/// `Arc` allocation (pointer equality — contents are opaque UDF-world data,
/// so structural comparison would be both costly and fragile).
fn shared_scans(plan: PhysicalPlan) -> Result<PhysicalPlan> {
    use std::collections::HashMap;
    // Map each source node to its canonical representative.
    let mut canon: HashMap<NodeId, NodeId> = HashMap::new();
    let mut storage_seen: HashMap<String, NodeId> = HashMap::new();
    let mut collection_seen: Vec<(*const (), NodeId)> = Vec::new();
    for n in plan.nodes() {
        match &n.op {
            PhysicalOp::StorageSource { dataset_id } => match storage_seen.get(dataset_id) {
                Some(&rep) => {
                    canon.insert(n.id, rep);
                }
                None => {
                    storage_seen.insert(dataset_id.clone(), n.id);
                }
            },
            PhysicalOp::CollectionSource { data, .. } => {
                let ptr = data.records().as_ptr() as *const ();
                match collection_seen.iter().find(|(p, _)| *p == ptr) {
                    Some((_, rep)) => {
                        canon.insert(n.id, *rep);
                    }
                    None => collection_seen.push((ptr, n.id)),
                }
            }
            _ => {}
        }
    }
    if canon.is_empty() {
        return Ok(plan);
    }
    rebuild(
        &plan,
        |id| !canon.contains_key(&id),
        |_| None,
        |id| canon.get(&id).copied().unwrap_or(id),
    )
}

/// Number of consumers per node.
pub(super) fn consumer_counts(plan: &PhysicalPlan) -> Vec<usize> {
    let mut counts = vec![0usize; plan.len()];
    for n in plan.nodes() {
        for &i in &n.inputs {
            counts[i.0] += 1;
        }
    }
    counts
}

/// Rebuild a plan, replacing each node's op/inputs via `transform` and
/// dropping nodes for which `transform` returns `None` (their consumers must
/// have been redirected first). `redirect` maps old producer ids to their
/// replacement.
pub(super) fn rebuild(
    plan: &PhysicalPlan,
    mut keep: impl FnMut(NodeId) -> bool,
    mut replace_op: impl FnMut(NodeId) -> Option<PhysicalOp>,
    redirect: impl Fn(NodeId) -> NodeId,
) -> Result<PhysicalPlan> {
    let mut new_ids: Vec<Option<NodeId>> = vec![None; plan.len()];
    let mut nodes: Vec<PhysicalNode> = Vec::with_capacity(plan.len());
    for n in plan.nodes() {
        if !keep(n.id) {
            continue;
        }
        let id = NodeId(nodes.len());
        let inputs: Vec<NodeId> = n
            .inputs
            .iter()
            .map(|&i| {
                let target = redirect(i);
                new_ids[target.0].expect("redirect target must be kept and earlier")
            })
            .collect();
        let op = replace_op(n.id).unwrap_or_else(|| n.op.clone());
        new_ids[n.id.0] = Some(id);
        nodes.push(PhysicalNode { id, op, inputs });
    }
    let plan = PhysicalPlan::from_nodes(nodes);
    plan.validate()?;
    Ok(plan)
}

/// Fuse `Map(g)` over `Map(f)` into `Map(g ∘ f)` (single-consumer f only).
fn fuse_maps(plan: PhysicalPlan) -> Result<PhysicalPlan> {
    let counts = consumer_counts(&plan);
    // Find one fusable pair per pass; the fixpoint loop does the rest.
    for n in plan.nodes() {
        if let PhysicalOp::Map(g) = &n.op {
            let producer = plan.node(n.inputs[0]);
            if counts[producer.id.0] != 1 {
                continue;
            }
            if let PhysicalOp::Map(f) = &producer.op {
                let name = format!("{}∘{}", g.name, f.name);
                // When both maps are transparent, compose declaratively so
                // the fused map stays fusable into chunk pipelines.
                let fused = match (&f.exprs, &g.exprs) {
                    (Some(fe), Some(ge)) => {
                        MapUdf::from_exprs(name, ge.iter().map(|e| e.substitute(fe)).collect())
                    }
                    _ => {
                        let f = f.clone();
                        let g = g.clone();
                        MapUdf {
                            name,
                            f: Arc::new(move |r: &Record| (g.f)(&(f.f)(r))),
                            exprs: None,
                        }
                    }
                };
                let (dead, fused_at) = (producer.id, n.id);
                let dead_input = producer.inputs[0];
                return rebuild(
                    &plan,
                    |id| id != dead,
                    |id| (id == fused_at).then(|| PhysicalOp::Map(fused.clone())),
                    |id| if id == dead { dead_input } else { id },
                );
            }
        }
    }
    Ok(plan)
}

/// Fuse consecutive filters into a conjunction.
fn fuse_filters(plan: PhysicalPlan) -> Result<PhysicalPlan> {
    let counts = consumer_counts(&plan);
    for n in plan.nodes() {
        if let PhysicalOp::Filter(q) = &n.op {
            let producer = plan.node(n.inputs[0]);
            if counts[producer.id.0] != 1 {
                continue;
            }
            if let PhysicalOp::Filter(p) = &producer.op {
                let name = format!("{}&{}", p.name, q.name);
                let selectivity = (p.selectivity * q.selectivity).clamp(0.0, 1.0);
                // A record passes an expression filter iff it evaluates to
                // Bool(true), so the Kleene conjunction of two transparent
                // predicates keeps exactly the records both filters keep.
                let fused = match (&p.expr, &q.expr) {
                    (Some(pe), Some(qe)) => {
                        FilterUdf::from_expr(name, pe.as_ref().clone().and(qe.as_ref().clone()))
                            .with_selectivity(selectivity)
                    }
                    _ => {
                        let p = p.clone();
                        let q = q.clone();
                        FilterUdf {
                            name,
                            selectivity,
                            f: Arc::new(move |r: &Record| (p.f)(r) && (q.f)(r)),
                            expr: None,
                        }
                    }
                };
                let (dead, fused_at) = (producer.id, n.id);
                let dead_input = producer.inputs[0];
                return rebuild(
                    &plan,
                    |id| id != dead,
                    |id| (id == fused_at).then(|| PhysicalOp::Filter(fused.clone())),
                    |id| if id == dead { dead_input } else { id },
                );
            }
        }
    }
    Ok(plan)
}

/// `σ(A ∪ B)` → `σ(A) ∪ σ(B)`.
///
/// This does not shrink the node count, so to keep the fixpoint bounded it
/// only fires when the union result feeds exactly one consumer (the filter),
/// and it rewrites in place: the union node becomes the final operator.
fn push_filter_through_union(plan: PhysicalPlan) -> Result<PhysicalPlan> {
    let counts = consumer_counts(&plan);
    for n in plan.nodes() {
        if let PhysicalOp::Filter(p) = &n.op {
            let producer = plan.node(n.inputs[0]);
            if counts[producer.id.0] != 1 || !matches!(producer.op, PhysicalOp::Union) {
                continue;
            }
            // New shape: filter each union input, then union replaces the
            // old filter node position. We rebuild manually because two new
            // nodes are inserted.
            let union_id = producer.id;
            let filter_id = n.id;
            let (left, right) = (producer.inputs[0], producer.inputs[1]);
            let p = p.clone();

            let mut new_ids: Vec<Option<NodeId>> = vec![None; plan.len()];
            let mut nodes: Vec<PhysicalNode> = Vec::new();
            for m in plan.nodes() {
                if m.id == union_id {
                    continue; // re-inserted at the filter position
                }
                if m.id == filter_id {
                    // Insert σ(A), σ(B), then A∪B at the filter's slot.
                    let l = new_ids[left.0].expect("left exists");
                    let r = new_ids[right.0].expect("right exists");
                    let fl = NodeId(nodes.len());
                    nodes.push(PhysicalNode {
                        id: fl,
                        op: PhysicalOp::Filter(p.clone()),
                        inputs: vec![l],
                    });
                    let fr = NodeId(nodes.len());
                    nodes.push(PhysicalNode {
                        id: fr,
                        op: PhysicalOp::Filter(p.clone()),
                        inputs: vec![r],
                    });
                    let u = NodeId(nodes.len());
                    nodes.push(PhysicalNode {
                        id: u,
                        op: PhysicalOp::Union,
                        inputs: vec![fl, fr],
                    });
                    new_ids[m.id.0] = Some(u);
                    continue;
                }
                let id = NodeId(nodes.len());
                let inputs = m
                    .inputs
                    .iter()
                    .map(|&i| new_ids[i.0].expect("producer kept"))
                    .collect();
                new_ids[m.id.0] = Some(id);
                nodes.push(PhysicalNode {
                    id,
                    op: m.op.clone(),
                    inputs,
                });
            }
            let plan = PhysicalPlan::from_nodes(nodes);
            plan.validate()?;
            return Ok(plan);
        }
    }
    Ok(plan)
}

/// `σ_p(A × B)` → `A ⋈_p B` (nested-loop theta join evaluating `p` on the
/// concatenated pair), when the cross product has a single consumer.
fn cross_filter_to_theta(plan: PhysicalPlan) -> Result<PhysicalPlan> {
    let counts = consumer_counts(&plan);
    for n in plan.nodes() {
        if let PhysicalOp::Filter(p) = &n.op {
            let producer = plan.node(n.inputs[0]);
            if counts[producer.id.0] != 1 || !matches!(producer.op, PhysicalOp::CrossProduct) {
                continue;
            }
            let theta = {
                let p = p.clone();
                PhysicalOp::NestedLoopJoin {
                    name: format!("θ({})", p.name),
                    selectivity: p.selectivity,
                    predicate: Arc::new(move |l: &Record, r: &Record| (p.f)(&l.concat(r))),
                }
            };
            let (dead, theta_at) = (producer.id, n.id);
            let (left, right) = (producer.inputs[0], producer.inputs[1]);
            // The filter node becomes the theta join, consuming the cross
            // product's former inputs.
            let mut new_ids: Vec<Option<NodeId>> = vec![None; plan.len()];
            let mut nodes: Vec<PhysicalNode> = Vec::new();
            for m in plan.nodes() {
                if m.id == dead {
                    continue;
                }
                let id = NodeId(nodes.len());
                let inputs: Vec<NodeId> = if m.id == theta_at {
                    vec![
                        new_ids[left.0].expect("left exists"),
                        new_ids[right.0].expect("right exists"),
                    ]
                } else {
                    m.inputs
                        .iter()
                        .map(|&i| new_ids[i.0].expect("producer kept"))
                        .collect()
                };
                let op = if m.id == theta_at {
                    theta.clone()
                } else {
                    m.op.clone()
                };
                new_ids[m.id.0] = Some(id);
                nodes.push(PhysicalNode { id, op, inputs });
            }
            let plan = PhysicalPlan::from_nodes(nodes);
            plan.validate()?;
            return Ok(plan);
        }
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpreter::run_plan;
    use crate::plan::PlanBuilder;
    use crate::platform::ExecutionContext;
    use crate::rec;

    fn nums(n: i64) -> Vec<Record> {
        (0..n).map(|i| rec![i]).collect()
    }

    #[test]
    fn maps_fuse_and_preserve_semantics() {
        let mut b = PlanBuilder::new();
        let src = b.collection("s", nums(5));
        let m1 = b.map(src, MapUdf::new("inc", |r| rec![r.int(0).unwrap() + 1]));
        let m2 = b.map(m1, MapUdf::new("dbl", |r| rec![r.int(0).unwrap() * 2]));
        let sink = b.collect(m2);
        let plan = b.build().unwrap();
        let before = run_plan(&plan, &ExecutionContext::new()).unwrap();

        let rewritten = apply_rewrites(plan).unwrap();
        assert_eq!(rewritten.len(), 3); // src, fused map, sink
        let node = &rewritten.nodes()[1];
        assert!(node.op.name().contains("dbl∘inc"));
        let after = run_plan(&rewritten, &ExecutionContext::new()).unwrap();
        // Sink ids shift after rewriting; compare the single output values.
        assert_eq!(
            before.values().next().unwrap(),
            after.values().next().unwrap()
        );
        assert_eq!(after.len(), 1);
        let _ = sink;
    }

    #[test]
    fn shared_map_is_not_fused() {
        let mut b = PlanBuilder::new();
        let src = b.collection("s", nums(5));
        let m1 = b.map(src, MapUdf::new("inc", |r| rec![r.int(0).unwrap() + 1]));
        let m2 = b.map(m1, MapUdf::new("dbl", |r| rec![r.int(0).unwrap() * 2]));
        b.collect(m2);
        b.collect(m1); // second consumer of m1
        let plan = b.build().unwrap();
        let rewritten = apply_rewrites(plan).unwrap();
        assert_eq!(rewritten.len(), 5); // nothing fused
    }

    #[test]
    fn filters_fuse_with_multiplied_selectivity() {
        let mut b = PlanBuilder::new();
        let src = b.collection("s", nums(100));
        let f1 = b.filter(
            src,
            FilterUdf::new("even", |r| r.int(0).unwrap() % 2 == 0).with_selectivity(0.5),
        );
        let f2 = b.filter(
            f1,
            FilterUdf::new("small", |r| r.int(0).unwrap() < 10).with_selectivity(0.1),
        );
        b.collect(f2);
        let plan = b.build().unwrap();
        let rewritten = apply_rewrites(plan).unwrap();
        assert_eq!(rewritten.len(), 3);
        if let PhysicalOp::Filter(f) = &rewritten.nodes()[1].op {
            assert!((f.selectivity - 0.05).abs() < 1e-9);
        } else {
            panic!("expected fused filter");
        }
        let out = run_plan(&rewritten, &ExecutionContext::new()).unwrap();
        assert_eq!(out.values().next().unwrap().len(), 5); // 0,2,4,6,8
    }

    #[test]
    fn filter_pushes_through_union() {
        let mut b = PlanBuilder::new();
        let a = b.collection("a", nums(4));
        let c = b.collection("c", nums(4));
        let u = b.union(a, c);
        let f = b.filter(u, FilterUdf::new("odd", |r| r.int(0).unwrap() % 2 == 1));
        b.collect(f);
        let plan = b.build().unwrap();
        let before = run_plan(&plan, &ExecutionContext::new()).unwrap();
        let rewritten = apply_rewrites(plan).unwrap();
        // Expect: a, c, σ(a), σ(c), union, sink = 6 nodes; union is last
        // non-sink op.
        assert_eq!(rewritten.len(), 6);
        let after = run_plan(&rewritten, &ExecutionContext::new()).unwrap();
        assert_eq!(
            before.values().next().unwrap(),
            after.values().next().unwrap()
        );
    }

    #[test]
    fn cross_filter_becomes_theta_join() {
        let mut b = PlanBuilder::new();
        let l = b.collection("l", nums(10));
        let r = b.collection("r", nums(10));
        let cp = b.cross_product(l, r);
        let f = b.filter(
            cp,
            FilterUdf::new("lt", |row| row.int(0).unwrap() < row.int(1).unwrap())
                .with_selectivity(0.45),
        );
        b.collect(f);
        let plan = b.build().unwrap();
        let before = run_plan(&plan, &ExecutionContext::new()).unwrap();
        let rewritten = apply_rewrites(plan).unwrap();
        assert_eq!(rewritten.len(), 4);
        assert!(rewritten
            .nodes()
            .iter()
            .any(|n| matches!(n.op, PhysicalOp::NestedLoopJoin { .. })));
        assert!(!rewritten
            .nodes()
            .iter()
            .any(|n| matches!(n.op, PhysicalOp::CrossProduct)));
        let after = run_plan(&rewritten, &ExecutionContext::new()).unwrap();
        assert_eq!(
            before.values().next().unwrap(),
            after.values().next().unwrap()
        );
    }

    #[test]
    fn duplicate_storage_scans_are_shared() {
        let mut b = PlanBuilder::new();
        let s1 = b.storage_source("events");
        let s2 = b.storage_source("events");
        let other = b.storage_source("users");
        let u = b.union(s1, s2);
        let j = b.cross_product(u, other);
        b.collect(j);
        let plan = b.build().unwrap();
        let rewritten = apply_rewrites(plan).unwrap();
        let scans = rewritten
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, PhysicalOp::StorageSource { .. }))
            .count();
        assert_eq!(
            scans,
            2,
            "events scan shared, users scan kept:\n{}",
            rewritten.explain()
        );
        // The union now reads the same node twice.
        let union = rewritten
            .nodes()
            .iter()
            .find(|n| matches!(n.op, PhysicalOp::Union))
            .unwrap();
        assert_eq!(union.inputs[0], union.inputs[1]);
    }

    #[test]
    fn identical_collection_sources_share_only_when_same_allocation() {
        use crate::data::Dataset;
        let shared = Dataset::new(nums(5));
        let mut b = PlanBuilder::new();
        let s1 = b.dataset("a", shared.clone());
        let s2 = b.dataset("b", shared); // same Arc
        let s3 = b.collection("c", nums(5)); // equal contents, new allocation
        let u1 = b.union(s1, s2);
        let u2 = b.union(u1, s3);
        b.collect(u2);
        let plan = b.build().unwrap();
        let rewritten = apply_rewrites(plan).unwrap();
        let scans = rewritten
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, PhysicalOp::CollectionSource { .. }))
            .count();
        assert_eq!(scans, 2);
        // Semantics preserved: 15 records either way.
        let out = run_plan(&rewritten, &ExecutionContext::new()).unwrap();
        assert_eq!(out.values().next().unwrap().len(), 15);
    }

    #[test]
    fn chains_of_rules_reach_fixpoint() {
        // map; map; filter; filter over a cross product — several rules fire.
        let mut b = PlanBuilder::new();
        let l = b.collection("l", nums(5));
        let r = b.collection("r", nums(5));
        let cp = b.cross_product(l, r);
        let f1 = b.filter(cp, FilterUdf::new("p1", |row| row.int(0).unwrap() > 0));
        let f2 = b.filter(f1, FilterUdf::new("p2", |row| row.int(1).unwrap() > 0));
        let m1 = b.map(
            f2,
            MapUdf::new("a", |row| rec![row.int(0).unwrap() + row.int(1).unwrap()]),
        );
        let m2 = b.map(m1, MapUdf::new("b", |row| rec![row.int(0).unwrap() * 10]));
        b.collect(m2);
        let plan = b.build().unwrap();
        let before = run_plan(&plan, &ExecutionContext::new()).unwrap();
        let rewritten = apply_rewrites(plan).unwrap();
        // l, r, θ-join, fused map, sink.
        assert_eq!(rewritten.len(), 5);
        let after = run_plan(&rewritten, &ExecutionContext::new()).unwrap();
        assert_eq!(
            before.values().next().unwrap(),
            after.values().next().unwrap()
        );
    }
}
