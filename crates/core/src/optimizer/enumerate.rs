//! Platform assignment and task-atom splitting — the heart of the
//! multi-platform task optimizer (§4.2).
//!
//! Given a physical plan and the registered platforms, the enumerator
//! chooses a platform per node by dynamic programming over the DAG in
//! topological order:
//!
//! ```text
//! best(n, p) = opCost(n, p)
//!            + switch(p) ⋅ startup(p)                    (approximation of per-atom startup)
//!            + Σ_inputs min_{p'} ( best(in, p') + move(p' → p, |in|) )
//! ```
//!
//! The recurrence is exact on trees and a documented approximation on
//! shared sub-DAGs (a shared producer's cost is counted once per consumer;
//! the backtracking step keeps a single consistent assignment). Loops are
//! costed as `expected_iterations × body-cost-on-p`, with the whole body
//! pinned to one platform — matching how the paper's Figure 2 runs an
//! entire SVM loop either "as a Spark job" or "as a plain Java program".

use std::collections::HashSet;

use crate::cost::{calibrated_op_cost, CardinalityEstimator, MovementCostModel};
use crate::error::{Result, RheemError};
use crate::observe::CostCalibration;
use crate::physical::PhysicalOp;
use crate::plan::{AtomInput, ExecutionPlan, NodeEstimate, NodeId, PhysicalPlan, TaskAtom};
use crate::platform::PlatformRegistry;
use std::sync::Arc;

/// Which enumeration algorithm the optimizer runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EnumerationStrategy {
    /// The original greedy DP (`enumerate`): exact on trees, documented
    /// double-count approximation on shared sub-DAGs.
    #[default]
    Greedy,
    /// The subplan-lattice enumerator (`enumerate_v2`): chain contraction,
    /// channel-aware movement, lossless frontier pruning; falls back to
    /// Greedy when the expansion/time budget is exhausted.
    LatticeV2,
}

/// Tuning knobs for the enumerator (several exist purely so the paper's
/// ablation benchmarks can switch behaviours off).
#[derive(Clone, Debug)]
pub struct EnumerationConfig {
    /// Restrict the search to one platform (platform-independence ablation;
    /// also how an end user pins a job to an engine).
    pub forced_platform: Option<String>,
    /// When `false`, data movement is priced at zero during enumeration —
    /// the optimizer becomes movement-oblivious (ablation B).
    pub consider_movement_costs: bool,
    /// Platforms removed from the search entirely. Failover re-planning
    /// excludes failed platforms this way; an exclusion that leaves some
    /// operator unmappable surfaces as [`RheemError::NoPlatformFor`].
    pub excluded_platforms: Vec<String>,
    /// Algorithm selection; defaults to the greedy DP so existing plans
    /// (and golden explains) are byte-identical unless v2 is opted into.
    pub strategy: EnumerationStrategy,
    /// Lattice-state expansion budget for `LatticeV2`. Exhausting it
    /// degrades deterministically to the greedy DP, recorded as
    /// [`crate::plan::EnumerationPath::GreedyFallback`].
    pub max_expansions: usize,
    /// Optional wall-clock budget (milliseconds) for `LatticeV2`; `None`
    /// leaves only the deterministic expansion budget in force.
    pub max_enumeration_ms: Option<u64>,
}

impl Default for EnumerationConfig {
    fn default() -> Self {
        EnumerationConfig {
            forced_platform: None,
            consider_movement_costs: true,
            excluded_platforms: Vec::new(),
            strategy: EnumerationStrategy::Greedy,
            max_expansions: 200_000,
            max_enumeration_ms: None,
        }
    }
}

/// Assign platforms to every node and split the plan into task atoms.
///
/// `calibration` scales each platform's static operator cost by the EMA of
/// previously observed/estimated ratios (1.0 when nothing was observed),
/// closing the feedback loop described in `observe::calibrate`.
pub fn enumerate(
    plan: Arc<PhysicalPlan>,
    registry: &PlatformRegistry,
    estimator: &CardinalityEstimator,
    movement: &MovementCostModel,
    config: &EnumerationConfig,
    calibration: &CostCalibration,
) -> Result<ExecutionPlan> {
    if registry.is_empty() {
        return Err(RheemError::Optimizer("no platforms registered".into()));
    }
    let mut platforms: Vec<_> = match &config.forced_platform {
        Some(name) => vec![registry.get(name)?],
        None => registry.all().to_vec(),
    };
    platforms.retain(|p| !config.excluded_platforms.iter().any(|x| x == p.name()));
    if platforms.is_empty() {
        return Err(RheemError::Optimizer(
            "every registered platform is excluded from enumeration".into(),
        ));
    }
    let free_movement = MovementCostModel::free();
    let movement = if config.consider_movement_costs {
        movement
    } else {
        &free_movement
    };

    let cards = estimator.estimate(&plan)?;
    let n_nodes = plan.len();
    let n_plats = platforms.len();
    const INF: f64 = f64::INFINITY;

    // best[node][platform], choice[node][platform][slot] = platform index of input.
    let mut best = vec![vec![INF; n_plats]; n_nodes];
    let mut choice: Vec<Vec<Vec<usize>>> = vec![Vec::new(); n_nodes];

    for node in plan.nodes() {
        let ins: Vec<f64> = node.inputs.iter().map(|i| cards[i.0]).collect();
        let out = cards[node.id.0];
        choice[node.id.0] = vec![vec![0; node.inputs.len()]; n_plats];
        for (pi, platform) in platforms.iter().enumerate() {
            if !supports_deep(platform.as_ref(), &node.op) {
                continue;
            }
            let model = platform.cost_model();
            let mut cost = node_cost(
                &node.op,
                &ins,
                out,
                platform.as_ref(),
                estimator,
                calibration,
            )?;
            // Approximate the per-atom startup: a source node or an incoming
            // platform switch opens a (new) atom on this platform.
            if node.inputs.is_empty() {
                cost += model.atom_startup_cost();
            }
            let mut feasible = true;
            for (slot, input) in node.inputs.iter().enumerate() {
                let mut best_in = INF;
                let mut best_pi = 0;
                for (qi, q) in platforms.iter().enumerate() {
                    let upstream = best[input.0][qi];
                    if !upstream.is_finite() {
                        continue;
                    }
                    let mut edge = movement.cost(q.name(), platform.name(), cards[input.0]);
                    if qi != pi {
                        edge += model.atom_startup_cost();
                    }
                    let total = upstream + edge;
                    if total < best_in {
                        best_in = total;
                        best_pi = qi;
                    }
                }
                if !best_in.is_finite() {
                    feasible = false;
                    break;
                }
                cost += best_in;
                choice[node.id.0][pi][slot] = best_pi;
            }
            if feasible {
                best[node.id.0][pi] = cost;
            }
        }
        if best[node.id.0].iter().all(|c| !c.is_finite()) {
            return Err(RheemError::NoPlatformFor {
                op: node.op.name(),
                node: node.id,
            });
        }
    }

    // Backtrack from the terminals, fixing one platform per node. Nodes
    // reached through several consumers keep their first assignment.
    let mut assignment: Vec<Option<usize>> = vec![None; n_nodes];
    let mut total_cost = 0.0;
    let mut stack: Vec<(NodeId, usize)> = Vec::new();
    for t in plan.terminals() {
        let (pi, cost) = argmin(&best[t.0]);
        total_cost += cost;
        stack.push((t, pi));
    }
    while let Some((node, pi)) = stack.pop() {
        if assignment[node.0].is_some() {
            continue;
        }
        assignment[node.0] = Some(pi);
        for (slot, input) in plan.node(node).inputs.iter().enumerate() {
            let qi = choice[node.0][pi][slot];
            stack.push((*input, qi));
        }
    }

    let assignments: Vec<String> = assignment
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let pi = a.unwrap_or_else(|| argmin(&best[i]).0);
            platforms[pi].name().to_string()
        })
        .collect();

    // Record the per-node predictions (cost on the assigned platform and
    // cardinality) so the observability layer can compare them against
    // reality after the run.
    let mut estimates = Vec::with_capacity(n_nodes);
    for node in plan.nodes() {
        let ins: Vec<f64> = node.inputs.iter().map(|i| cards[i.0]).collect();
        let assigned = &assignments[node.id.0];
        let platform = platforms
            .iter()
            .find(|p| p.name() == assigned.as_str())
            .expect("assignment names a considered platform");
        let cost_ms = node_cost(
            &node.op,
            &ins,
            cards[node.id.0],
            platform.as_ref(),
            estimator,
            calibration,
        )?;
        estimates.push(NodeEstimate {
            cost_ms,
            card: cards[node.id.0],
        });
    }

    let atoms = split_into_atoms(&plan, &assignments);
    Ok(ExecutionPlan {
        physical: plan,
        assignments,
        atoms,
        estimated_cost: total_cost,
        estimates,
        enumeration: crate::plan::EnumerationInfo::default(),
    })
}

/// Cost of one operator on one platform; loops recurse into the body.
/// Static model costs are scaled by the calibration factor learned for
/// the `(operator, platform)` pair.
pub(crate) fn node_cost(
    op: &PhysicalOp,
    ins: &[f64],
    out: f64,
    platform: &dyn crate::platform::Platform,
    estimator: &CardinalityEstimator,
    calibration: &CostCalibration,
) -> Result<f64> {
    let model = platform.cost_model();
    match op {
        PhysicalOp::Loop {
            body,
            expected_iterations,
            ..
        } => {
            let loop_card = ins.first().copied().unwrap_or(0.0);
            let body_cards = estimator.estimate_with_loop_input(body, loop_card)?;
            let mut body_cost = 0.0;
            for bn in body.nodes() {
                let bins: Vec<f64> = bn.inputs.iter().map(|i| body_cards[i.0]).collect();
                body_cost += node_cost(
                    &bn.op,
                    &bins,
                    body_cards[bn.id.0],
                    platform,
                    estimator,
                    calibration,
                )?;
            }
            // Each iteration re-dispatches the body: platforms with high
            // scheduling overhead pay it per iteration. This is precisely
            // the mechanism behind Figure 2's "gap gets bigger with the
            // number of iterations".
            let per_iter = body_cost + model.atom_startup_cost() * 0.1;
            let raw = *expected_iterations * per_iter;
            // The Loop node itself is also a calibratable kernel: its
            // observation covers all iterations.
            Ok(raw * calibration.cost_factor(&op.name(), platform.name()))
        }
        _ => Ok(calibrated_op_cost(
            model.as_ref(),
            op,
            ins,
            out,
            platform.name(),
            calibration,
        )),
    }
}

/// `supports` extended through loop bodies.
pub(crate) fn supports_deep(platform: &dyn crate::platform::Platform, op: &PhysicalOp) -> bool {
    match op {
        PhysicalOp::Loop { body, .. } => {
            platform.supports(op) && body.nodes().iter().all(|n| supports_deep(platform, &n.op))
        }
        _ => platform.supports(op),
    }
}

fn argmin(costs: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, &c) in costs.iter().enumerate() {
        if c < best.1 {
            best = (i, c);
        }
    }
    best
}

/// Group same-platform nodes into maximal acyclic task atoms.
///
/// Nodes are visited in topological order; a node joins the atom of one of
/// its same-platform producers unless doing so would create a cycle in the
/// atom dependency graph, in which case a fresh atom is opened.
pub fn split_into_atoms(plan: &PhysicalPlan, assignments: &[String]) -> Vec<TaskAtom> {
    struct ProtoAtom {
        platform: String,
        nodes: Vec<NodeId>,
        deps: HashSet<usize>, // direct upstream atoms
    }

    let mut atoms: Vec<ProtoAtom> = Vec::new();
    let mut atom_of: Vec<usize> = vec![usize::MAX; plan.len()];

    // Does atom `from` transitively depend on atom `target`?
    fn depends_on(atoms: &[ProtoAtom], from: usize, target: usize) -> bool {
        if from == target {
            return true;
        }
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(a) = stack.pop() {
            if !seen.insert(a) {
                continue;
            }
            for &d in &atoms[a].deps {
                if d == target {
                    return true;
                }
                stack.push(d);
            }
        }
        false
    }

    for node in plan.nodes() {
        let platform = &assignments[node.id.0];
        let producer_atoms: Vec<usize> = node.inputs.iter().map(|i| atom_of[i.0]).collect();

        // Candidate atoms: atoms of same-platform producers.
        let mut chosen: Option<usize> = None;
        for (&input_atom, input) in producer_atoms.iter().zip(&node.inputs) {
            if assignments[input.0] != *platform {
                continue;
            }
            // Joining `input_atom` is safe iff no *other* producer atom
            // transitively depends on it.
            let safe = producer_atoms
                .iter()
                .filter(|&&a| a != input_atom)
                .all(|&a| !depends_on(&atoms, a, input_atom));
            if safe {
                chosen = Some(input_atom);
                break;
            }
        }

        let atom_id = match chosen {
            Some(a) => a,
            None => {
                atoms.push(ProtoAtom {
                    platform: platform.clone(),
                    nodes: Vec::new(),
                    deps: HashSet::new(),
                });
                atoms.len() - 1
            }
        };
        atoms[atom_id].nodes.push(node.id);
        atom_of[node.id.0] = atom_id;
        for &pa in &producer_atoms {
            if pa != atom_id {
                atoms[atom_id].deps.insert(pa);
            }
        }
    }

    // Topologically order the atoms.
    let mut order: Vec<usize> = Vec::with_capacity(atoms.len());
    let mut placed = vec![false; atoms.len()];
    while order.len() < atoms.len() {
        let before = order.len();
        for i in 0..atoms.len() {
            if placed[i] {
                continue;
            }
            if atoms[i].deps.iter().all(|&d| placed[d]) {
                placed[i] = true;
                order.push(i);
            }
        }
        assert!(order.len() > before, "atom graph must be acyclic");
    }

    // Materialize TaskAtoms with boundary inputs/outputs.
    let consumers = plan.consumers();
    let mut out = Vec::with_capacity(atoms.len());
    for (new_id, &old_id) in order.iter().enumerate() {
        let proto = &atoms[old_id];
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        for &n in &proto.nodes {
            for (slot, producer) in plan.node(n).inputs.iter().enumerate() {
                if atom_of[producer.0] != old_id {
                    inputs.push(AtomInput {
                        consumer: n,
                        slot,
                        producer: *producer,
                        channel: Default::default(),
                    });
                }
            }
            let crosses = consumers[n.0].iter().any(|c| atom_of[c.0] != old_id);
            if crosses || plan.node(n).op.is_sink() {
                outputs.push(n);
            }
        }
        out.push(TaskAtom {
            id: new_id,
            platform: proto.platform.clone(),
            nodes: proto.nodes.clone(),
            inputs,
            outputs,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanBuilder;
    use crate::rec;

    fn assignments(plan: &PhysicalPlan, names: &[&str]) -> Vec<String> {
        assert_eq!(plan.len(), names.len());
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn single_platform_yields_single_atom() {
        let mut b = PlanBuilder::new();
        let src = b.collection("s", vec![rec![1i64]]);
        let m = b.map(src, crate::udf::MapUdf::new("id", |r| r.clone()));
        b.collect(m);
        let plan = b.build().unwrap();
        let atoms = split_into_atoms(&plan, &assignments(&plan, &["java", "java", "java"]));
        assert_eq!(atoms.len(), 1);
        assert_eq!(atoms[0].nodes.len(), 3);
        assert!(atoms[0].inputs.is_empty());
        assert_eq!(atoms[0].outputs.len(), 1); // the sink
    }

    #[test]
    fn platform_switch_creates_boundary() {
        let mut b = PlanBuilder::new();
        let src = b.collection("s", vec![rec![1i64]]);
        let m = b.map(src, crate::udf::MapUdf::new("id", |r| r.clone()));
        b.collect(m);
        let plan = b.build().unwrap();
        let atoms = split_into_atoms(&plan, &assignments(&plan, &["java", "spark", "spark"]));
        assert_eq!(atoms.len(), 2);
        assert_eq!(atoms[0].platform, "java");
        assert_eq!(atoms[1].platform, "spark");
        assert_eq!(atoms[1].inputs.len(), 1);
        assert_eq!(atoms[0].outputs.len(), 1); // crossed edge
    }

    #[test]
    fn sandwich_pattern_does_not_create_cyclic_atoms() {
        // n0(java) -> n1(spark) -> n2(java), plus n0 -> n2 directly.
        let mut b = PlanBuilder::new();
        let src = b.collection("s", vec![rec![1i64]]);
        let m = b.map(src, crate::udf::MapUdf::new("a", |r| r.clone()));
        let u = b.union(src, m);
        b.collect(u);
        let plan = b.build().unwrap();
        let atoms = split_into_atoms(
            &plan,
            &assignments(&plan, &["java", "spark", "java", "java"]),
        );
        // The union cannot join the source's atom (would make java-atom
        // depend on spark-atom depend on java-atom)... unless checked; we
        // verify the atom graph is acyclic by construction (no panic) and
        // the schedule order respects dependencies.
        for atom in &atoms {
            for input in &atom.inputs {
                let producer_atom = atoms
                    .iter()
                    .find(|a| a.nodes.contains(&input.producer))
                    .unwrap();
                assert!(
                    producer_atom.id < atom.id,
                    "producer atom must be scheduled earlier"
                );
            }
        }
    }

    #[test]
    fn diamond_same_platform_is_one_atom() {
        let mut b = PlanBuilder::new();
        let src = b.collection("s", vec![rec![1i64]]);
        let f1 = b.filter(src, crate::udf::FilterUdf::new("a", |_| true));
        let f2 = b.filter(src, crate::udf::FilterUdf::new("b", |_| true));
        let u = b.union(f1, f2);
        b.collect(u);
        let plan = b.build().unwrap();
        let atoms = split_into_atoms(
            &plan,
            &assignments(&plan, &["java", "java", "java", "java", "java"]),
        );
        assert_eq!(atoms.len(), 1);
    }
}
