//! Plan cache: reuse enumeration results across jobs that submit the same
//! plan (RHEEMix-style; see `DESIGN.md` §13).
//!
//! With the lattice enumerator, producing an [`ExecutionPlan`] is expensive
//! but the result is a reusable artifact: the assignments, atoms, and
//! estimates depend only on the plan's canonical shape
//! ([`crate::plan::PlanFingerprint`]), the platform set, the enumeration
//! configuration, and the calibration table. The cache keys on the first
//! three and *validates* against the fourth: an entry remembers the
//! calibration cost factors it was enumerated under, and is invalidated
//! when any factor has since drifted past
//! [`PlanCacheConfig::drift_threshold`] — the cached platform choices were
//! made under cost assumptions that no longer hold, so the plan must be
//! re-enumerated.
//!
//! A cache hit never reuses the cached *physical plan* (it embeds the old
//! job's source data and closures); only the scheduling artifacts are
//! reused, re-targeted at the freshly rewritten incoming plan. Entries
//! whose fingerprint is opaque (closure identity) are additionally confined
//! to one cache scope — the server gives every session its own scope, so
//! opaque fingerprints are never shared across sessions.
//!
//! Sharing caveat: the key does not cover the optimizer's cost models
//! (estimator, movement prices). One cache must only be shared by
//! optimizers with identical models — which is the intended deployment: a
//! server's sessions all clone one base context.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::fault::{fnv1a, splitmix64};
use crate::observe::CostCalibration;
use crate::plan::{EnumerationInfo, ExecutionPlan, NodeEstimate, TaskAtom};
use crate::platform::PlatformRegistry;

use super::OptimizerConfig;

/// Tuning knobs for a [`PlanCache`].
#[derive(Clone, Copy, Debug)]
pub struct PlanCacheConfig {
    /// Maximum number of cached plans; least-recently-used entries are
    /// evicted past this.
    pub capacity: usize,
    /// Maximum relative change of any calibration cost factor (missing
    /// factors count as 1.0) before a cached entry is invalidated. E.g.
    /// `0.5` invalidates when some factor grew or shrank by more than 50%.
    pub drift_threshold: f64,
}

impl Default for PlanCacheConfig {
    fn default() -> Self {
        PlanCacheConfig {
            capacity: 256,
            drift_threshold: 0.5,
        }
    }
}

/// Monotonic counters describing a cache's lifetime behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups that reused a cached enumeration.
    pub hits: u64,
    /// Lookups that fell through to a fresh enumeration.
    pub misses: u64,
    /// Entries dropped because calibration drifted past the threshold.
    pub invalidations: u64,
    /// Entries currently cached.
    pub entries: usize,
}

/// Full cache key: canonical plan hash mixed with the optimizer/platform
/// configuration hash, plus the session scope for opaque fingerprints.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct CacheKey {
    hash: u64,
    scope: u64,
}

/// The reusable part of an [`ExecutionPlan`] (everything except the
/// physical plan itself, which embeds job-specific data).
#[derive(Clone)]
pub(crate) struct CachedPlanParts {
    pub(crate) assignments: Vec<String>,
    pub(crate) atoms: Vec<TaskAtom>,
    pub(crate) estimated_cost: f64,
    pub(crate) estimates: Vec<NodeEstimate>,
    pub(crate) enumeration: EnumerationInfo,
    /// Fingerprint hash of the *rewritten* plan the entry was built from;
    /// the optimizer double-checks it against the rewritten incoming plan
    /// before re-targeting, demoting hash collisions to plain misses.
    pub(crate) rewritten_hash: u64,
}

struct CachedEntry {
    parts: CachedPlanParts,
    /// [`CostCalibration::version`] at the last drift validation — when
    /// unchanged, the drift check is skipped entirely.
    calib_version: u64,
    /// Cost factors the entry was enumerated under (full-table snapshot).
    calib_costs: Vec<((String, String), f64)>,
    /// LRU tick of the last hit (or the insert).
    last_used: u64,
}

/// Outcome of a cache probe.
pub(crate) enum CacheLookup {
    /// Reusable parts found (guards still pending in the optimizer).
    Hit(CachedPlanParts),
    /// Nothing reusable; `invalidated` reports whether an entry existed
    /// but was dropped for calibration drift.
    Miss {
        /// The miss was caused by drift invalidation.
        invalidated: bool,
    },
}

/// A concurrent cache of enumeration results keyed by canonical plan
/// fingerprints. See the module docs for the invalidation rules.
pub struct PlanCache {
    config: PlanCacheConfig,
    entries: Mutex<HashMap<CacheKey, CachedEntry>>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new(PlanCacheConfig::default())
    }
}

impl PlanCache {
    /// An empty cache under `config`.
    pub fn new(config: PlanCacheConfig) -> Self {
        PlanCache {
            config: PlanCacheConfig {
                capacity: config.capacity.max(1),
                drift_threshold: if config.drift_threshold.is_finite() {
                    config.drift_threshold.max(0.0)
                } else {
                    PlanCacheConfig::default().drift_threshold
                },
            },
            entries: Mutex::new(HashMap::new()),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// The cache's configuration (after sanitization).
    pub fn config(&self) -> PlanCacheConfig {
        self.config
    }

    /// Lifetime counters and current size.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self.entries.lock().len(),
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Drop every cached plan (counters are kept).
    pub fn clear(&self) {
        self.entries.lock().clear();
    }

    /// Record that a probe ended in a (guard-confirmed) hit.
    pub(crate) fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record that a probe ended in a miss (including demoted hits).
    pub(crate) fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Probe for `key`, validating calibration drift. Does not touch the
    /// hit/miss counters — the optimizer records the outcome after its
    /// structural guards, so a demoted hit counts as a miss.
    pub(crate) fn lookup(
        &self,
        hash: u64,
        scope: u64,
        calibration: &CostCalibration,
    ) -> CacheLookup {
        let key = CacheKey { hash, scope };
        let mut entries = self.entries.lock();
        let Some(entry) = entries.get_mut(&key) else {
            return CacheLookup::Miss { invalidated: false };
        };
        let version = calibration.version();
        if entry.calib_version != version {
            let drift = max_cost_drift(&entry.calib_costs, calibration);
            if drift > self.config.drift_threshold {
                entries.remove(&key);
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                return CacheLookup::Miss { invalidated: true };
            }
            // Within tolerance: remember the version so the drift scan is
            // skipped until the table moves again. The reference factors
            // stay pinned at enumeration time — drift accumulates against
            // what the cached plan was actually costed with.
            entry.calib_version = version;
        }
        entry.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
        CacheLookup::Hit(entry.parts.clone())
    }

    /// Insert the reusable parts of a freshly enumerated plan.
    pub(crate) fn insert(
        &self,
        hash: u64,
        scope: u64,
        rewritten_hash: u64,
        exec: &ExecutionPlan,
        calibration: &CostCalibration,
    ) {
        let parts = CachedPlanParts {
            assignments: exec.assignments.clone(),
            atoms: exec.atoms.clone(),
            estimated_cost: exec.estimated_cost,
            estimates: exec.estimates.clone(),
            enumeration: exec.enumeration.clone(),
            rewritten_hash,
        };
        let entry = CachedEntry {
            parts,
            calib_version: calibration.version(),
            calib_costs: calibration
                .snapshot()
                .into_iter()
                .map(|(k, e)| (k, e.cost_factor))
                .collect(),
            last_used: self.tick.fetch_add(1, Ordering::Relaxed),
        };
        let mut entries = self.entries.lock();
        if entries.len() >= self.config.capacity && !entries.contains_key(&CacheKey { hash, scope })
        {
            // Evict the least-recently-used entry.
            if let Some(victim) = entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                entries.remove(&victim);
            }
        }
        entries.insert(CacheKey { hash, scope }, entry);
    }
}

/// Largest relative change between the cost factors an entry was
/// enumerated under and the current table (factors missing on either side
/// count as the neutral 1.0).
fn max_cost_drift(reference: &[((String, String), f64)], calibration: &CostCalibration) -> f64 {
    let current = calibration.snapshot();
    let mut max_drift = 0.0f64;
    let mut seen: HashMap<&(String, String), f64> = HashMap::new();
    for (k, old) in reference {
        seen.insert(k, *old);
    }
    for (k, entry) in &current {
        let old = seen.remove(k).unwrap_or(1.0);
        max_drift = max_drift.max(relative_change(old, entry.cost_factor));
    }
    for old in seen.into_values() {
        // Pairs that vanished (e.g. a `clear()`): drift back toward 1.0.
        max_drift = max_drift.max(relative_change(old, 1.0));
    }
    max_drift
}

/// `max(new/old, old/new) - 1`, i.e. 0.0 for no change, 0.5 for a 50%
/// grow *or* shrink; saturates for non-positive or non-finite factors.
fn relative_change(old: f64, new: f64) -> f64 {
    if !(old.is_finite() && new.is_finite()) || old <= 0.0 || new <= 0.0 {
        return f64::INFINITY;
    }
    (new / old).max(old / new) - 1.0
}

/// Hash of everything besides the plan that determines an enumeration
/// result: the registered platform set, the enumeration configuration, and
/// whether rewrites run. Mixed into the plan fingerprint to form the cache
/// key, so e.g. adding a platform or switching enumeration strategy can
/// never serve stale assignments.
pub(crate) fn config_fingerprint(config: &OptimizerConfig, platforms: &PlatformRegistry) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut names: Vec<&str> = platforms.names();
    names.sort_unstable();
    for n in names {
        h = splitmix64(h ^ fnv1a(n));
    }
    h = splitmix64(h ^ config.apply_rewrites as u64);
    let e = &config.enumeration;
    if let Some(p) = &e.forced_platform {
        h = splitmix64(h ^ fnv1a(p));
    }
    h = splitmix64(h ^ e.consider_movement_costs as u64);
    let mut excluded: Vec<&str> = e.excluded_platforms.iter().map(|s| s.as_str()).collect();
    excluded.sort_unstable();
    for x in excluded {
        h = splitmix64(h ^ fnv1a(x).wrapping_add(1));
    }
    h = splitmix64(h ^ matches!(e.strategy, super::EnumerationStrategy::LatticeV2) as u64);
    h = splitmix64(h ^ e.max_expansions as u64);
    h = splitmix64(h ^ e.max_enumeration_ms.map_or(0, |ms| ms.wrapping_add(1)));
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::EnumerationInfo;
    use std::sync::Arc;

    fn dummy_exec(cost: f64) -> ExecutionPlan {
        ExecutionPlan {
            physical: Arc::new(crate::plan::PhysicalPlan::default()),
            assignments: vec!["java".into()],
            atoms: vec![],
            estimated_cost: cost,
            estimates: vec![],
            enumeration: EnumerationInfo::default(),
        }
    }

    #[test]
    fn hit_after_insert_and_scope_isolation() {
        let cache = PlanCache::default();
        let cal = CostCalibration::new();
        cache.insert(7, 1, 99, &dummy_exec(5.0), &cal);
        assert!(matches!(cache.lookup(7, 1, &cal), CacheLookup::Hit(_)));
        // Same hash in another scope is invisible.
        assert!(matches!(
            cache.lookup(7, 2, &cal),
            CacheLookup::Miss { invalidated: false }
        ));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn drift_past_threshold_invalidates() {
        let cache = PlanCache::new(PlanCacheConfig {
            capacity: 8,
            drift_threshold: 0.5,
        });
        let cal = CostCalibration::with_alpha(1.0);
        cal.observe("Map(f)", "java", 10.0, 10.0, 1.0, 1.0); // factor 1.0
        cache.insert(7, 0, 99, &dummy_exec(5.0), &cal);
        // Small drift: 1.0 -> 1.2 (20% < 50%), still a hit.
        cal.observe("Map(f)", "java", 10.0, 12.0, 1.0, 1.0);
        assert!(matches!(cache.lookup(7, 0, &cal), CacheLookup::Hit(_)));
        // Large drift: 1.2 -> 4.0 vs reference 1.0 => 300% > 50%.
        cal.observe("Map(f)", "java", 10.0, 40.0, 1.0, 1.0);
        assert!(matches!(
            cache.lookup(7, 0, &cal),
            CacheLookup::Miss { invalidated: true }
        ));
        assert_eq!(cache.stats().invalidations, 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn drift_counts_pairs_unknown_at_insert() {
        let cache = PlanCache::new(PlanCacheConfig {
            capacity: 8,
            drift_threshold: 0.5,
        });
        let cal = CostCalibration::with_alpha(1.0);
        cache.insert(7, 0, 99, &dummy_exec(5.0), &cal);
        // A pair first observed after the insert drifts from the implicit 1.0.
        cal.observe("Map(f)", "java", 10.0, 40.0, 1.0, 1.0);
        assert!(matches!(
            cache.lookup(7, 0, &cal),
            CacheLookup::Miss { invalidated: true }
        ));
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let cache = PlanCache::new(PlanCacheConfig {
            capacity: 2,
            drift_threshold: 0.5,
        });
        let cal = CostCalibration::new();
        cache.insert(1, 0, 0, &dummy_exec(1.0), &cal);
        cache.insert(2, 0, 0, &dummy_exec(2.0), &cal);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(matches!(cache.lookup(1, 0, &cal), CacheLookup::Hit(_)));
        cache.insert(3, 0, 0, &dummy_exec(3.0), &cal);
        assert_eq!(cache.len(), 2);
        assert!(matches!(cache.lookup(1, 0, &cal), CacheLookup::Hit(_)));
        assert!(matches!(
            cache.lookup(2, 0, &cal),
            CacheLookup::Miss { invalidated: false }
        ));
        assert!(matches!(cache.lookup(3, 0, &cal), CacheLookup::Hit(_)));
    }
}
