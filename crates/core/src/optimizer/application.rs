//! The application optimizer (§4.1): translates logical plans into physical
//! plans, guided by the declarative mapping registry, and applies the
//! application-level rewrites.
//!
//! Each logical operator's [`crate::logical::LogicalPayload`] is wrapped in
//! the physical operator chosen by [`MappingRegistry::choose`] — the
//! "wrapper operator" of §3.2. Applications insert "enhancer operators"
//! (like the K-means `GroupBy` example) directly in their logical plans;
//! the sound algebraic rewrites live in
//! [`crate::optimizer::rewrites::apply_rewrites`].

use crate::error::{Result, RheemError};
use crate::logical::{LogicalPayload, LogicalPlan};
use crate::mapping::{variants, MappingRegistry};
use crate::physical::PhysicalOp;
use crate::plan::{NodeId, PhysicalPlan, PlanBuilder};

/// Translate a logical plan into a physical plan.
pub fn lower(plan: &LogicalPlan, registry: &MappingRegistry) -> Result<PhysicalPlan> {
    plan.validate()?;
    let mut b = PlanBuilder::new();
    let mut physical_ids: Vec<NodeId> = Vec::with_capacity(plan.len());
    for node in plan.nodes() {
        let inputs: Vec<NodeId> = node.inputs.iter().map(|i| physical_ids[i.0]).collect();
        let op = lower_payload(node.op.name(), node.op.payload(), registry)?;
        physical_ids.push(b.add(op, inputs));
    }
    // `build_fragment` skips the sink requirement: loop bodies are also
    // lowered through this path.
    b.build_fragment()
}

fn lower_payload(
    name: &str,
    payload: LogicalPayload,
    registry: &MappingRegistry,
) -> Result<PhysicalOp> {
    let kind = payload.kind_key();
    let choice = registry.choose(name, kind);
    let op = match payload {
        LogicalPayload::Source { name, data } => PhysicalOp::CollectionSource { data, name },
        LogicalPayload::StorageSource { dataset_id } => PhysicalOp::StorageSource { dataset_id },
        LogicalPayload::LoopInput => PhysicalOp::LoopInput,
        LogicalPayload::Map(u) => PhysicalOp::Map(u),
        LogicalPayload::FlatMap(u) => PhysicalOp::FlatMap(u),
        LogicalPayload::Filter(u) => PhysicalOp::Filter(u),
        LogicalPayload::Project { indices } => PhysicalOp::Project { indices },
        LogicalPayload::Group { key, group } => match choice.as_deref() {
            Some(variants::SORT_GROUP_BY) => PhysicalOp::SortGroupBy { key, group },
            Some(variants::HASH_GROUP_BY) | None => PhysicalOp::HashGroupBy { key, group },
            Some(other) => {
                return Err(RheemError::Optimizer(format!(
                    "mapping for {name} names unknown grouping variant {other}"
                )))
            }
        },
        LogicalPayload::Reduce { key, reduce } => PhysicalOp::ReduceByKey { key, reduce },
        LogicalPayload::GlobalReduce { reduce } => PhysicalOp::GlobalReduce { reduce },
        LogicalPayload::Join {
            left_key,
            right_key,
        } => match choice.as_deref() {
            Some(variants::SORT_MERGE_JOIN) => PhysicalOp::SortMergeJoin {
                left_key,
                right_key,
            },
            Some(variants::HASH_JOIN) | None => PhysicalOp::HashJoin {
                left_key,
                right_key,
            },
            Some(other) => {
                return Err(RheemError::Optimizer(format!(
                    "mapping for {name} names unknown join variant {other}"
                )))
            }
        },
        LogicalPayload::ThetaJoin {
            name,
            predicate,
            selectivity,
        } => PhysicalOp::NestedLoopJoin {
            predicate,
            name,
            selectivity,
        },
        LogicalPayload::CrossProduct => PhysicalOp::CrossProduct,
        LogicalPayload::Union => PhysicalOp::Union,
        LogicalPayload::Sort { key, descending } => PhysicalOp::Sort { key, descending },
        LogicalPayload::Distinct => PhysicalOp::Distinct,
        LogicalPayload::Limit { n } => PhysicalOp::Limit { n },
        LogicalPayload::Loop {
            body,
            condition,
            max_iterations,
        } => {
            let body = lower(&body, registry)?;
            PhysicalOp::Loop {
                body: std::sync::Arc::new(body),
                condition,
                max_iterations,
                expected_iterations: max_iterations as f64,
            }
        }
        LogicalPayload::Custom(op) => PhysicalOp::Custom(op),
        LogicalPayload::Collect => PhysicalOp::CollectSink,
        LogicalPayload::Count => PhysicalOp::CountSink,
        LogicalPayload::StorageSink { dataset_id } => PhysicalOp::StorageSink { dataset_id },
    };
    Ok(op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::LogicalPlanBuilder;
    use crate::rec;
    use crate::udf::{GroupMapUdf, KeyUdf};

    fn group_plan() -> LogicalPlan {
        let mut b = LogicalPlanBuilder::new();
        let src = b.source("s", vec![rec![1i64], rec![1i64], rec![2i64]]);
        let g = b.add_simple(
            "Process",
            LogicalPayload::Group {
                key: KeyUdf::field(0),
                group: GroupMapUdf::identity(),
            },
            vec![src],
        );
        b.collect(g);
        b.build().unwrap()
    }

    #[test]
    fn default_mapping_picks_hash_group_by() {
        let physical = lower(&group_plan(), &MappingRegistry::with_defaults()).unwrap();
        assert!(matches!(
            physical.nodes()[1].op,
            PhysicalOp::HashGroupBy { .. }
        ));
    }

    #[test]
    fn preference_hint_switches_to_sort_group_by() {
        let mut registry = MappingRegistry::with_defaults();
        registry.prefer("Process", variants::SORT_GROUP_BY);
        let physical = lower(&group_plan(), &registry).unwrap();
        assert!(matches!(
            physical.nodes()[1].op,
            PhysicalOp::SortGroupBy { .. }
        ));
    }

    #[test]
    fn unknown_variant_in_mapping_is_an_error() {
        let mut registry = MappingRegistry::with_defaults();
        registry.prefer("Process", "QuantumGroupBy");
        assert!(matches!(
            lower(&group_plan(), &registry),
            Err(RheemError::Optimizer(_))
        ));
    }

    #[test]
    fn logical_loop_lowers_recursively() {
        let mut body = LogicalPlanBuilder::new();
        let li = body.add_simple("state", LogicalPayload::LoopInput, vec![]);
        body.add_simple(
            "step",
            LogicalPayload::Map(crate::udf::MapUdf::new("inc", |r| {
                rec![r.int(0).unwrap() + 1]
            })),
            vec![li],
        );
        let body = body.build().unwrap();

        let mut b = LogicalPlanBuilder::new();
        let src = b.source("s", vec![rec![0i64]]);
        let l = b.add_simple(
            "train",
            LogicalPayload::Loop {
                body,
                condition: crate::udf::LoopCondUdf::fixed_iterations(2),
                max_iterations: 2,
            },
            vec![src],
        );
        b.collect(l);
        let logical = b.build().unwrap();
        let physical = lower(&logical, &MappingRegistry::with_defaults()).unwrap();
        physical.validate().unwrap();
        assert!(matches!(physical.nodes()[1].op, PhysicalOp::Loop { .. }));

        // And it runs end to end on the reference interpreter.
        let out =
            crate::interpreter::run_plan(&physical, &crate::platform::ExecutionContext::new())
                .unwrap();
        assert_eq!(out.values().next().unwrap().records(), &[rec![2i64]]);
    }
}
