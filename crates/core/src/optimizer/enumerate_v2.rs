//! Subplan-lattice enumeration with lossless pruning (v2).
//!
//! The classic DP in [`super::enumerate`] is exact on trees but counts a
//! shared producer once per consumer on DAGs. This module implements the
//! RHEEMix-style enumerator that is exact on arbitrary DAGs while staying
//! polynomial on the plans we care about:
//!
//! 1. **Chain contraction** — maximal linear operator chains (single
//!    consumer feeding a single-input node) are contracted into
//!    super-nodes before the search ([`super::fuse::contract_chains`]).
//!    Each chain gets an exact `T[q][p]` cost table (cheapest way to run
//!    the whole chain with the upstream producer on `q` and the chain's
//!    exit on `p`, platform switches inside the chain allowed) computed by
//!    an `O(len · P²)` inner DP.
//! 2. **Frontier lattice** — super-nodes are processed in topological
//!    order; a search state maps the currently *open* super-nodes (those
//!    with unpriced consumer edges) to their exit platforms. Two states
//!    with the same open-node→platform map are interchangeable for every
//!    possible completion, so keeping only the cheaper one is **lossless**
//!    pruning: the reachable frontier is the set of non-dominated
//!    assignments per boundary-platform combination.
//! 3. **Channel-aware movement** — every cross-platform edge is priced by
//!    [`MovementCostModel::cost`], which routes through the channel
//!    conversion graph when platform channel specs are declared (see
//!    [`MovementCostModel::channelized`]); the chosen conversion routes
//!    are recorded on the resulting plan's
//!    [`EnumerationInfo::conversions`].
//! 4. **Budget** — every `(state, platform)` evaluation counts as one
//!    expansion; exhausting [`EnumerationConfig::max_expansions`] (or the
//!    optional wall-clock budget) abandons the lattice deterministically
//!    and re-runs the greedy DP, recording
//!    [`EnumerationPath::GreedyFallback`].
//!
//! The objective both this enumerator and the exhaustive oracle minimize
//! is [`assignment_cost`]:
//!
//! ```text
//! Σ_nodes [ opCost(n, pₙ) + (n is source ? startup(pₙ) : 0) ]
//! + Σ_edges(u→v) [ move(pᵤ → pᵥ, |u|) + (pᵤ ≠ pᵥ ? startup(pᵥ) : 0) ]
//! ```
//!
//! which prices each node once and each edge once — the greedy DP reports
//! the same figure on trees and over-reports it on shared sub-DAGs (see
//! `tests/optimizer_invariants.rs`).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use crate::cost::{CardinalityEstimator, MovementCostModel};
use crate::error::{Result, RheemError};
use crate::observe::CostCalibration;
use crate::plan::{
    ChannelConversion, EnumerationInfo, EnumerationPath, ExecutionPlan, NodeEstimate, NodeId,
    PhysicalPlan,
};
use crate::platform::{Platform, PlatformRegistry};

use super::enumerate::{
    enumerate, node_cost, split_into_atoms, supports_deep, EnumerationConfig, EnumerationStrategy,
};
use super::fuse::contract_chains;

const INF: f64 = f64::INFINITY;

/// Route an enumeration request to the strategy the config selects.
///
/// This is the single entry point the optimizer and the re-planner call:
/// `Greedy` runs the classic DP unchanged (existing plans and golden
/// explains stay byte-identical), `LatticeV2` runs [`enumerate_v2`] with
/// its built-in greedy fallback on budget exhaustion.
pub fn enumerate_with_config(
    plan: Arc<PhysicalPlan>,
    registry: &PlatformRegistry,
    estimator: &CardinalityEstimator,
    movement: &MovementCostModel,
    config: &EnumerationConfig,
    calibration: &CostCalibration,
) -> Result<ExecutionPlan> {
    match config.strategy {
        EnumerationStrategy::Greedy => {
            enumerate(plan, registry, estimator, movement, config, calibration)
        }
        EnumerationStrategy::LatticeV2 => {
            enumerate_v2(plan, registry, estimator, movement, config, calibration)
        }
    }
}

/// The subplan-lattice enumerator. See the module docs for the algorithm;
/// on budget exhaustion this degrades to the greedy DP deterministically
/// (same output as [`enumerate`]) and marks the plan
/// [`EnumerationPath::GreedyFallback`].
pub fn enumerate_v2(
    plan: Arc<PhysicalPlan>,
    registry: &PlatformRegistry,
    estimator: &CardinalityEstimator,
    movement: &MovementCostModel,
    config: &EnumerationConfig,
    calibration: &CostCalibration,
) -> Result<ExecutionPlan> {
    let platforms = considered_platforms(registry, config)?;
    let free_movement = MovementCostModel::free();
    let priced_movement = if config.consider_movement_costs {
        movement
    } else {
        &free_movement
    };
    let cards = estimator.estimate(&plan)?;

    // Surface stranded operators as NoPlatformFor before searching: an
    // exclusion set that leaves some operator unmappable must be a clean
    // error, not a panic deep in the lattice.
    for node in plan.nodes() {
        if !platforms
            .iter()
            .any(|p| supports_deep(p.as_ref(), &node.op))
        {
            return Err(RheemError::NoPlatformFor {
                op: node.op.name(),
                node: node.id,
            });
        }
    }

    let mut expansions = 0usize;
    match lattice_search(
        &plan,
        &platforms,
        &cards,
        estimator,
        priced_movement,
        config,
        calibration,
        &mut expansions,
    )? {
        Some(outcome) => finish_v2(
            plan,
            &platforms,
            &cards,
            outcome,
            priced_movement,
            estimator,
            calibration,
            expansions,
        ),
        None => {
            // Budget exhausted: degrade to the greedy DP. `enumerate`
            // re-applies the forced/excluded/movement knobs itself, so pass
            // the original model through.
            let mut exec = enumerate(plan, registry, estimator, movement, config, calibration)?;
            exec.enumeration.path = EnumerationPath::GreedyFallback;
            exec.enumeration.expansions = expansions;
            Ok(exec)
        }
    }
}

/// The platform list the enumerator searches over, after the
/// forced/excluded knobs — shared with the greedy DP's semantics (and
/// error messages) so both strategies agree on configuration handling.
fn considered_platforms(
    registry: &PlatformRegistry,
    config: &EnumerationConfig,
) -> Result<Vec<Arc<dyn Platform>>> {
    if registry.is_empty() {
        return Err(RheemError::Optimizer("no platforms registered".into()));
    }
    let mut platforms: Vec<_> = match &config.forced_platform {
        Some(name) => vec![registry.get(name)?],
        None => registry.all().to_vec(),
    };
    platforms.retain(|p| !config.excluded_platforms.iter().any(|x| x == p.name()));
    if platforms.is_empty() {
        return Err(RheemError::Optimizer(
            "every registered platform is excluded from enumeration".into(),
        ));
    }
    Ok(platforms)
}

/// One contracted super-node of the search graph.
struct SuperNode {
    /// Member nodes in dataflow order (a single element unless contracted).
    nodes: Vec<NodeId>,
    /// Inputs of the head node (original node ids).
    head_inputs: Vec<NodeId>,
    /// Super-node index feeding each head input slot.
    producers: Vec<usize>,
    /// Chains (≤ 1 head input) carry the exact `T[q][p]` table;
    /// multi-input heads are priced per slot in the frontier loop.
    table: Option<ChainTable>,
    /// `opCost[p]` of the head for multi-input supers (INF when
    /// unsupported).
    op_cost: Vec<f64>,
    /// For multi-input heads dragging a linear tail (`nodes.len() > 1`):
    /// the exact table over `nodes[1..]`, rows keyed by the *head*
    /// platform. The head platform is minimized out inside each frontier
    /// step (it only touches the producer edges and the tail entry, both
    /// priced there), so the boundary key still needs only the exit
    /// platform — pruning stays lossless.
    tail: Option<ChainTable>,
}

/// `cost[q][p]`: cheapest full-chain cost with the upstream producer on
/// platform `q` (index `P` = "no producer", source chains) and the tail on
/// `p`. `back[q][j][p]` is the platform of node `j-1` on that cheapest
/// path when node `j` runs on `p`.
struct ChainTable {
    cost: Vec<Vec<f64>>,
    back: Vec<Vec<Vec<usize>>>,
}

/// What the lattice search hands to plan construction.
struct LatticeOutcome {
    supers: Vec<SuperNode>,
    /// Platform index per original node.
    assignment: Vec<usize>,
    total_cost: f64,
}

/// Run the frontier DP. Returns `Ok(None)` when the expansion or
/// wall-clock budget was exhausted (callers fall back to the greedy DP);
/// errors are real failures that would also affect the fallback.
#[allow(clippy::too_many_arguments)]
fn lattice_search(
    plan: &PhysicalPlan,
    platforms: &[Arc<dyn Platform>],
    cards: &[f64],
    estimator: &CardinalityEstimator,
    movement: &MovementCostModel,
    config: &EnumerationConfig,
    calibration: &CostCalibration,
    expansions: &mut usize,
) -> Result<Option<LatticeOutcome>> {
    let started = Instant::now();
    let n_plats = platforms.len();
    let startup: Vec<f64> = platforms
        .iter()
        .map(|p| p.cost_model().atom_startup_cost())
        .collect();
    let names: Vec<&str> = platforms.iter().map(|p| p.name()).collect();

    // Contract chains and build the super-node graph.
    let chains = contract_chains(plan);
    let mut super_of = vec![usize::MAX; plan.len()];
    for (si, chain) in chains.iter().enumerate() {
        for n in chain {
            super_of[n.0] = si;
        }
    }
    let mut supers: Vec<SuperNode> = Vec::with_capacity(chains.len());
    for chain in &chains {
        let head = plan.node(chain[0]);
        let head_inputs = head.inputs.clone();
        let producers: Vec<usize> = head_inputs.iter().map(|i| super_of[i.0]).collect();
        let is_chain = head_inputs.len() <= 1;
        let table = if is_chain {
            Some(chain_table(
                plan,
                chain,
                platforms,
                cards,
                estimator,
                calibration,
                &startup,
                movement,
            )?)
        } else {
            None
        };
        let (op_cost, tail) = if is_chain {
            (Vec::new(), None)
        } else {
            let node = plan.node(chain[0]);
            let ins: Vec<f64> = node.inputs.iter().map(|i| cards[i.0]).collect();
            let out = cards[node.id.0];
            let mut costs = vec![INF; n_plats];
            for (pi, p) in platforms.iter().enumerate() {
                if supports_deep(p.as_ref(), &node.op) {
                    costs[pi] = node_cost(&node.op, &ins, out, p.as_ref(), estimator, calibration)?;
                }
            }
            let tail = if chain.len() > 1 {
                Some(chain_table(
                    plan,
                    &chain[1..],
                    platforms,
                    cards,
                    estimator,
                    calibration,
                    &startup,
                    movement,
                )?)
            } else {
                None
            };
            (costs, tail)
        };
        supers.push(SuperNode {
            nodes: chain.clone(),
            head_inputs,
            producers,
            table,
            op_cost,
            tail,
        });
    }

    // Unpriced consumer-edge count per super-node: a super-node closes
    // (leaves the frontier key) once every outgoing edge has been priced.
    let m = supers.len();
    let mut remaining = vec![0usize; m];
    for node in plan.nodes() {
        for input in &node.inputs {
            if super_of[input.0] != super_of[node.id.0] {
                remaining[super_of[input.0]] += 1;
            }
        }
    }

    // Visit order. Any topological order of the contracted DAG is valid —
    // producer edges are priced at the consumer's step, so producers just
    // have to come first — but the order decides the frontier width: the
    // key holds one platform per *open* super-node, so states multiply by
    // `n_plats` per open node. Index order is pathological for bushy plans
    // (every branch's chain opens before the first combiner closes any),
    // so schedule greedily: among ready super-nodes take the one closing
    // the most producers, tie-break fewest newly-opened, then smallest
    // index — deterministic, and keeps wide union/join trees near-linear.
    let order = schedule_supers(&supers, &remaining);

    // Frontier: platforms of the open super-nodes (in `open` order) → the
    // cheapest cost reaching that boundary, plus a backpointer into the
    // arena for plan extraction. The open set evolves identically across
    // states, so the key is just the platform vector. A BTreeMap keeps
    // iteration — and therefore equal-cost tie-breaking — deterministic.
    let mut open: Vec<usize> = Vec::new();
    let mut frontier: BTreeMap<Vec<u8>, (f64, u32)> = BTreeMap::new();
    frontier.insert(Vec::new(), (0.0, u32::MAX));
    let mut arena: Vec<(u32, u8)> = Vec::new();

    for &si in &order {
        let s = &supers[si];
        let producer_pos: Vec<usize> = s
            .producers
            .iter()
            .map(|prod| {
                open.iter()
                    .position(|&o| o == *prod)
                    .expect("producer super-node is open until its edges are priced")
            })
            .collect();

        // The open set after this step: drop producers whose last consumer
        // edge we just priced, append `si` when it has outgoing edges.
        for prod in &s.producers {
            remaining[*prod] -= 1;
        }
        let mut next_open = Vec::with_capacity(open.len() + 1);
        let mut keep_pos = Vec::with_capacity(open.len());
        for (pos, &o) in open.iter().enumerate() {
            if remaining[o] > 0 {
                keep_pos.push(pos);
                next_open.push(o);
            }
        }
        let self_open = remaining[si] > 0;
        if self_open {
            next_open.push(si);
        }

        let mut next: BTreeMap<Vec<u8>, (f64, u32)> = BTreeMap::new();
        for (key, &(cost, bp)) in &frontier {
            for p in 0..n_plats {
                *expansions += 1;
                if *expansions > config.max_expansions {
                    return Ok(None);
                }
                if let Some(limit) = config.max_enumeration_ms {
                    if (*expansions).is_multiple_of(256)
                        && started.elapsed().as_millis() as u64 > limit
                    {
                        return Ok(None);
                    }
                }
                let added = match &s.table {
                    Some(t) => {
                        let q = match producer_pos.first() {
                            Some(&pos) => key[pos] as usize,
                            None => n_plats, // source chain
                        };
                        t.cost[q][p]
                    }
                    None => {
                        let plats: Vec<usize> =
                            producer_pos.iter().map(|&pos| key[pos] as usize).collect();
                        multi_head_cost(s, &plats, p, &names, cards, &startup, movement).0
                    }
                };
                if !added.is_finite() {
                    continue;
                }
                let total = cost + added;
                let mut new_key = Vec::with_capacity(next_open.len());
                for &pos in &keep_pos {
                    new_key.push(key[pos]);
                }
                if self_open {
                    new_key.push(p as u8);
                }
                // Lossless pruning: identical boundary keys are
                // interchangeable for every completion, keep only the
                // cheapest (first wins on exact ties — deterministic
                // because states are visited in key order).
                let improves = match next.get(&new_key) {
                    Some(&(existing, _)) => total < existing,
                    None => true,
                };
                if improves {
                    arena.push((bp, p as u8));
                    next.insert(new_key, (total, (arena.len() - 1) as u32));
                }
            }
        }
        if next.is_empty() {
            return Err(RheemError::Optimizer(
                "lattice enumeration found no feasible assignment".into(),
            ));
        }
        frontier = next;
        open = next_open;
    }

    debug_assert!(open.is_empty(), "all super-nodes close at the end");
    let (total_cost, mut bp) = *frontier
        .values()
        .next()
        .expect("frontier is non-empty after every step");

    // Walk the backpointer arena: one entry per processed super-node,
    // newest last — i.e. in reverse *visit* order.
    let mut super_platform = vec![0usize; m];
    for &si in order.iter().rev() {
        let (prev, p) = arena[bp as usize];
        super_platform[si] = p as usize;
        bp = prev;
    }

    // Expand chains to per-node platforms through the chain back tables.
    let mut assignment = vec![0usize; plan.len()];
    for (si, s) in supers.iter().enumerate() {
        let exit = super_platform[si];
        match &s.table {
            Some(t) => {
                let q = match s.producers.first() {
                    Some(&prod) => super_platform[prod],
                    None => n_plats,
                };
                let k = s.nodes.len();
                let mut cur = exit;
                assignment[s.nodes[k - 1].0] = cur;
                for j in (1..k).rev() {
                    cur = t.back[q][j][cur];
                    assignment[s.nodes[j - 1].0] = cur;
                }
            }
            None => {
                // Recompute the head-platform argmin with the producers'
                // chosen platforms — same iteration order and strict `<`
                // as the search, so the reconstruction is exact.
                let plats: Vec<usize> = s.producers.iter().map(|&pr| super_platform[pr]).collect();
                let (_, h) = multi_head_cost(s, &plats, exit, &names, cards, &startup, movement);
                assignment[s.nodes[0].0] = h;
                if let Some(t) = &s.tail {
                    let kt = s.nodes.len() - 1;
                    let mut cur = exit;
                    assignment[s.nodes[kt].0] = cur;
                    for j in (1..kt).rev() {
                        cur = t.back[h][j][cur];
                        assignment[s.nodes[j].0] = cur;
                    }
                }
            }
        }
    }

    Ok(Some(LatticeOutcome {
        supers,
        assignment,
        total_cost,
    }))
}

/// Pick a topological visit order over the contracted DAG that keeps the
/// set of simultaneously-open super-nodes small (see the call site for
/// why width matters). Greedy: among ready nodes, maximize producers
/// closed by this step, then minimize whether the node itself opens,
/// then smallest index. `remaining` is the initial unpriced consumer-edge
/// count per super-node (not mutated — a local copy is simulated).
fn schedule_supers(supers: &[SuperNode], remaining: &[usize]) -> Vec<usize> {
    let m = supers.len();
    let mut remaining = remaining.to_vec();
    // Unprocessed-producer count per super (slots, duplicates included).
    let mut deps: Vec<usize> = supers.iter().map(|s| s.producers.len()).collect();
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (si, s) in supers.iter().enumerate() {
        for &prod in &s.producers {
            consumers[prod].push(si);
        }
    }
    let mut done = vec![false; m];
    let mut order = Vec::with_capacity(m);
    for _ in 0..m {
        let mut best: Option<(i64, usize)> = None;
        for si in 0..m {
            if done[si] || deps[si] > 0 {
                continue;
            }
            let closes = {
                // A producer closes here iff all its still-unpriced edges
                // point at this very step.
                let s = &supers[si];
                let mut c = 0i64;
                for (slot, &prod) in s.producers.iter().enumerate() {
                    let dups = s.producers.iter().filter(|&&x| x == prod).count();
                    let first = s.producers.iter().position(|&x| x == prod) == Some(slot);
                    if first && remaining[prod] == dups {
                        c += 1;
                    }
                }
                c
            };
            let opens = (remaining[si] > 0) as i64;
            let score = closes - opens;
            if best.is_none_or(|(bs, _)| score > bs) {
                best = Some((score, si));
            }
        }
        let (_, si) = best.expect("contracted DAG is acyclic, a ready node exists");
        done[si] = true;
        order.push(si);
        for &prod in &supers[si].producers {
            remaining[prod] -= 1;
        }
        for &c in &consumers[si] {
            deps[c] -= 1;
        }
    }
    order
}

/// Price a multi-input super-node exiting on platform `p`, given its
/// producers' platforms: minimize over the head platform `h` the head's
/// operator cost, the producer edges into `h`, and (when the super-node
/// drags a linear tail) the tail table entry `tail[h][p]`. Without a tail
/// the head *is* the exit, so `h` must equal `p`. Returns `(cost, h)`;
/// cost is `INF` when no feasible head platform exists. First-wins on
/// exact ties keeps search and reconstruction in lockstep.
fn multi_head_cost(
    s: &SuperNode,
    producer_plats: &[usize],
    p: usize,
    names: &[&str],
    cards: &[f64],
    startup: &[f64],
    movement: &MovementCostModel,
) -> (f64, usize) {
    let mut best = INF;
    let mut best_h = p;
    for (h, &head_cost) in s.op_cost.iter().enumerate() {
        if !head_cost.is_finite() {
            continue;
        }
        let mut c = head_cost;
        for (slot, &q) in producer_plats.iter().enumerate() {
            c += movement.cost(names[q], names[h], cards[s.head_inputs[slot].0]);
            if q != h {
                c += startup[h];
            }
        }
        match &s.tail {
            Some(t) => c += t.cost[h][p],
            None if h != p => continue,
            None => {}
        }
        if c < best {
            best = c;
            best_h = h;
        }
    }
    (best, best_h)
}

/// Exact DP over one contracted chain: `cost[q][p]` = cheapest way to run
/// the whole chain when the upstream producer sits on `q` (row `P` means
/// "no producer" — source chains pay startup instead of an entry edge) and
/// the chain exits on `p`. Platform switches inside the chain pay movement
/// plus the consumer-side startup, exactly like boundary edges.
#[allow(clippy::too_many_arguments)]
fn chain_table(
    plan: &PhysicalPlan,
    chain: &[NodeId],
    platforms: &[Arc<dyn Platform>],
    cards: &[f64],
    estimator: &CardinalityEstimator,
    calibration: &CostCalibration,
    startup: &[f64],
    movement: &MovementCostModel,
) -> Result<ChainTable> {
    let n_plats = platforms.len();
    let names: Vec<&str> = platforms.iter().map(|p| p.name()).collect();
    let k = chain.len();

    // Per-node operator costs (INF when the platform lacks support).
    let mut op_costs = vec![vec![INF; n_plats]; k];
    for (j, nid) in chain.iter().enumerate() {
        let node = plan.node(*nid);
        let ins: Vec<f64> = node.inputs.iter().map(|i| cards[i.0]).collect();
        let out = cards[node.id.0];
        for (pi, p) in platforms.iter().enumerate() {
            if supports_deep(p.as_ref(), &node.op) {
                op_costs[j][pi] =
                    node_cost(&node.op, &ins, out, p.as_ref(), estimator, calibration)?;
            }
        }
    }

    let head = plan.node(chain[0]);
    let entry_card = head.inputs.first().map(|i| cards[i.0]);
    let mut cost = vec![vec![INF; n_plats]; n_plats + 1];
    let mut back = vec![vec![vec![0usize; n_plats]; k]; n_plats + 1];
    for q in 0..=n_plats {
        // Row P without a source head (or a producer row for a source
        // head) is never queried; skip the waste.
        match entry_card {
            Some(_) if q == n_plats => continue,
            None if q < n_plats => continue,
            _ => {}
        }
        let mut dp = vec![INF; n_plats];
        for (r, slot) in dp.iter_mut().enumerate() {
            if !op_costs[0][r].is_finite() {
                continue;
            }
            let mut c = op_costs[0][r];
            match entry_card {
                Some(card_in) => {
                    c += movement.cost(names[q], names[r], card_in);
                    if q != r {
                        c += startup[r];
                    }
                }
                None => c += startup[r], // a source opens an atom
            }
            *slot = c;
        }
        for j in 1..k {
            let card_prev = cards[chain[j - 1].0];
            let mut nxt = vec![INF; n_plats];
            for (r, slot) in nxt.iter_mut().enumerate() {
                if !op_costs[j][r].is_finite() {
                    continue;
                }
                let mut best = INF;
                let mut best_t = 0;
                for (t, &prev) in dp.iter().enumerate() {
                    if !prev.is_finite() {
                        continue;
                    }
                    let mut edge = movement.cost(names[t], names[r], card_prev);
                    if t != r {
                        edge += startup[r];
                    }
                    if prev + edge < best {
                        best = prev + edge;
                        best_t = t;
                    }
                }
                if best.is_finite() {
                    *slot = op_costs[j][r] + best;
                    back[q][j][r] = best_t;
                }
            }
            dp = nxt;
        }
        cost[q] = dp;
    }
    Ok(ChainTable { cost, back })
}

/// Turn a lattice outcome into an [`ExecutionPlan`]: string assignments,
/// per-node estimates, task atoms with channel-annotated boundaries, and
/// the [`EnumerationInfo`] record (contraction groups + conversion routes).
#[allow(clippy::too_many_arguments)]
fn finish_v2(
    plan: Arc<PhysicalPlan>,
    platforms: &[Arc<dyn Platform>],
    cards: &[f64],
    outcome: LatticeOutcome,
    movement: &MovementCostModel,
    estimator: &CardinalityEstimator,
    calibration: &CostCalibration,
    expansions: usize,
) -> Result<ExecutionPlan> {
    let assignments: Vec<String> = outcome
        .assignment
        .iter()
        .map(|&pi| platforms[pi].name().to_string())
        .collect();

    let mut estimates = Vec::with_capacity(plan.len());
    for node in plan.nodes() {
        let p = &platforms[outcome.assignment[node.id.0]];
        let ins: Vec<f64> = node.inputs.iter().map(|i| cards[i.0]).collect();
        let cost_ms = node_cost(
            &node.op,
            &ins,
            cards[node.id.0],
            p.as_ref(),
            estimator,
            calibration,
        )?;
        estimates.push(NodeEstimate {
            cost_ms,
            card: cards[node.id.0],
        });
    }

    // Record every cross-platform edge's conversion route.
    let mut conversions = Vec::new();
    for node in plan.nodes() {
        for (slot, input) in node.inputs.iter().enumerate() {
            let from = &assignments[input.0];
            let to = &assignments[node.id.0];
            if from != to {
                let route = movement.route(from, to, cards[input.0]);
                conversions.push(ChannelConversion {
                    producer: *input,
                    consumer: node.id,
                    slot,
                    from: from.clone(),
                    to: to.clone(),
                    path: route.path.clone(),
                    cost_ms: route.total_ms(),
                });
            }
        }
    }

    let mut atoms = split_into_atoms(&plan, &assignments);
    for atom in &mut atoms {
        for input in &mut atom.inputs {
            if let Some(conv) = conversions.iter().find(|c| {
                c.producer == input.producer && c.consumer == input.consumer && c.slot == input.slot
            }) {
                input.channel = conv.path.last().copied().unwrap_or_default();
            }
        }
    }

    let groups: Vec<Vec<NodeId>> = outcome
        .supers
        .iter()
        .filter(|s| s.nodes.len() > 1)
        .map(|s| s.nodes.clone())
        .collect();

    Ok(ExecutionPlan {
        physical: plan,
        assignments,
        atoms,
        estimated_cost: outcome.total_cost,
        estimates,
        enumeration: EnumerationInfo {
            path: EnumerationPath::LatticeV2,
            expansions,
            groups,
            conversions,
        },
    })
}

/// The canonical objective every exact enumerator minimizes: each node
/// priced once on its assigned platform (sources pay startup), each edge
/// priced once (movement plus the consumer-side startup on a platform
/// switch). The greedy DP's reported total equals this on trees and
/// exceeds it on shared sub-DAGs.
pub fn assignment_cost(
    plan: &PhysicalPlan,
    assignments: &[String],
    registry: &PlatformRegistry,
    estimator: &CardinalityEstimator,
    movement: &MovementCostModel,
    calibration: &CostCalibration,
) -> Result<f64> {
    if assignments.len() != plan.len() {
        return Err(RheemError::Optimizer(format!(
            "assignment vector has {} entries for a {}-node plan",
            assignments.len(),
            plan.len()
        )));
    }
    let cards = estimator.estimate(plan)?;
    let mut total = 0.0;
    for node in plan.nodes() {
        let p = registry.get(&assignments[node.id.0])?;
        let ins: Vec<f64> = node.inputs.iter().map(|i| cards[i.0]).collect();
        total += node_cost(
            &node.op,
            &ins,
            cards[node.id.0],
            p.as_ref(),
            estimator,
            calibration,
        )?;
        if node.inputs.is_empty() {
            total += p.cost_model().atom_startup_cost();
        }
        for input in &node.inputs {
            let q = &assignments[input.0];
            total += movement.cost(q, p.name(), cards[input.0]);
            if q != p.name() {
                total += p.cost_model().atom_startup_cost();
            }
        }
    }
    Ok(total)
}

/// Exhaustive reference enumerator: tries **every** feasible platform
/// assignment and returns the cheapest one under [`assignment_cost`]
/// (lexicographically-first on ties — deterministic). Exponential by
/// construction, so plans are capped at 12 nodes; this is the oracle the
/// v2 proptests and the `ablation_enumeration` sweep compare against.
pub fn enumerate_exhaustive(
    plan: &PhysicalPlan,
    registry: &PlatformRegistry,
    estimator: &CardinalityEstimator,
    movement: &MovementCostModel,
    config: &EnumerationConfig,
    calibration: &CostCalibration,
) -> Result<(Vec<String>, f64)> {
    let n = plan.len();
    if n > 12 {
        return Err(RheemError::Optimizer(format!(
            "exhaustive oracle is capped at 12 nodes (got {n})"
        )));
    }
    let platforms = considered_platforms(registry, config)?;
    let free_movement = MovementCostModel::free();
    let movement = if config.consider_movement_costs {
        movement
    } else {
        &free_movement
    };
    let n_plats = platforms.len();
    let cards = estimator.estimate(plan)?;
    let startup: Vec<f64> = platforms
        .iter()
        .map(|p| p.cost_model().atom_startup_cost())
        .collect();
    let names: Vec<&str> = platforms.iter().map(|p| p.name()).collect();

    // Per-node supported platform lists (and their operator costs).
    let mut supported: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut op_costs = vec![vec![INF; n_plats]; n];
    for node in plan.nodes() {
        let ins: Vec<f64> = node.inputs.iter().map(|i| cards[i.0]).collect();
        let mut s = Vec::new();
        for (pi, p) in platforms.iter().enumerate() {
            if supports_deep(p.as_ref(), &node.op) {
                op_costs[node.id.0][pi] = node_cost(
                    &node.op,
                    &ins,
                    cards[node.id.0],
                    p.as_ref(),
                    estimator,
                    calibration,
                )?;
                s.push(pi);
            }
        }
        if s.is_empty() {
            return Err(RheemError::NoPlatformFor {
                op: node.op.name(),
                node: node.id,
            });
        }
        supported.push(s);
    }

    // Odometer over per-node supported lists, node 0 most significant, so
    // the first assignment visited (and kept on ties) is lexicographically
    // smallest in platform-index order.
    let mut idx = vec![0usize; n];
    let mut best_cost = INF;
    let mut best: Vec<usize> = Vec::new();
    loop {
        let mut total = 0.0;
        for node in plan.nodes() {
            let pi = supported[node.id.0][idx[node.id.0]];
            total += op_costs[node.id.0][pi];
            if node.inputs.is_empty() {
                total += startup[pi];
            }
            for input in &node.inputs {
                let qi = supported[input.0][idx[input.0]];
                total += movement.cost(names[qi], names[pi], cards[input.0]);
                if qi != pi {
                    total += startup[pi];
                }
            }
        }
        if total < best_cost {
            best_cost = total;
            best = (0..n).map(|i| supported[i][idx[i]]).collect();
        }
        // Advance the odometer (least significant digit = last node).
        let mut d = n;
        loop {
            if d == 0 {
                let assignments = best
                    .iter()
                    .map(|&pi| names[pi].to_string())
                    .collect::<Vec<_>>();
                return Ok((assignments, best_cost));
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < supported[d].len() {
                break;
            }
            idx[d] = 0;
        }
    }
}
