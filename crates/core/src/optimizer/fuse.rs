//! Plan-time compilation of transparent operator chains into
//! [`PhysicalOp::ChunkPipeline`]s.
//!
//! UDFs built from the expression IR ([`crate::expr::Expr`]) carry their
//! declarative form next to the opaque closure (see
//! [`crate::udf::MapUdf::from_exprs`] / [`crate::udf::FilterUdf::from_expr`]).
//! For those operators the optimizer can do what a row-at-a-time
//! interpreter cannot: fuse an adjacent `Filter → Map → Project` chain into
//! **one** physical operator that evaluates the whole chain per columnar
//! chunk — no intermediate record materialization, no per-row dynamic
//! dispatch, one pass over the data.
//!
//! Fusion is deliberately conservative:
//!
//! * only single-consumer producers are folded into their consumer (a
//!   shared intermediate result must stay materialized);
//! * a pipeline must contain at least one *expression-bearing* stage
//!   (filter predicate or map expressions) — a bare `Project` chain gains
//!   nothing from chunk evaluation and is left for the per-operator kernel;
//! * opaque (closure-only) UDFs never fuse, so plans written before the
//!   expression IR existed — and their golden explains — are untouched.
//!
//! Cost-wise the fused operator is priced by the same
//! [`crate::cost::LinearCostModel`] as everything else: its cardinality is
//! the product-fold of the stage selectivities and its work units are
//! `input + output` (a single pass), which is exactly the saving the
//! rewrite claims.

use std::sync::Arc;

use crate::error::Result;
use crate::physical::{PhysicalOp, PipelineStage, StageKind};
use crate::plan::{NodeId, PhysicalPlan};

use super::rewrites::{consumer_counts, rebuild};

/// Partition the plan into maximal linear chains, the graph contraction
/// the lattice enumerator (`optimizer::enumerate_v2`) searches over.
///
/// Every node lands in exactly one chain (a singleton when it cannot
/// extend); a node joins its producer's chain iff it has exactly one input
/// and that producer has exactly one consumer — the same "transparent
/// straight line" shape pipeline fusion exploits, but independent of
/// whether the UDFs are expression-bearing: chain contraction only groups
/// nodes for *enumeration*, it never changes the plan.
///
/// Chains are returned with nodes in dataflow order, sorted by head node
/// id — a valid topological order of the contracted DAG (a chain's head
/// always has a larger id than every node of any chain it depends on).
pub fn contract_chains(plan: &PhysicalPlan) -> Vec<Vec<NodeId>> {
    let counts = consumer_counts(plan);
    let mut chain_of: Vec<usize> = vec![usize::MAX; plan.len()];
    let mut chains: Vec<Vec<NodeId>> = Vec::new();
    for node in plan.nodes() {
        let extend = match node.inputs.as_slice() {
            [only] if counts[only.0] == 1 => Some(chain_of[only.0]),
            _ => None,
        };
        let c = match extend {
            Some(c) => c,
            None => {
                chains.push(Vec::new());
                chains.len() - 1
            }
        };
        chains[c].push(node.id);
        chain_of[node.id.0] = c;
    }
    chains.sort_by_key(|c| c[0]);
    chains
}

/// Stages `op` contributes to a chunk pipeline, or `None` when `op` cannot
/// be fused (opaque UDF or non-pipeline operator).
fn stages_of(op: &PhysicalOp) -> Option<Vec<PipelineStage>> {
    match op {
        PhysicalOp::Filter(u) => u.expr.as_ref().map(|expr| {
            vec![PipelineStage {
                name: u.name.clone(),
                kind: StageKind::Filter {
                    expr: expr.clone(),
                    selectivity: u.selectivity,
                },
            }]
        }),
        PhysicalOp::Map(u) => u.exprs.as_ref().map(|exprs| {
            vec![PipelineStage {
                name: u.name.clone(),
                kind: StageKind::Map {
                    exprs: exprs.clone(),
                },
            }]
        }),
        PhysicalOp::Project { indices } => Some(vec![PipelineStage {
            name: format!(
                "π[{}]",
                indices
                    .iter()
                    .map(|i| i.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            kind: StageKind::Project {
                indices: indices.clone().into(),
            },
        }]),
        PhysicalOp::ChunkPipeline { stages } => Some(stages.to_vec()),
        _ => None,
    }
}

/// Whether any stage actually evaluates expressions (the requirement for a
/// pipeline to exist at all).
fn has_expr_stage(stages: &[PipelineStage]) -> bool {
    stages
        .iter()
        .any(|s| matches!(s.kind, StageKind::Filter { .. } | StageKind::Map { .. }))
}

/// Fuse one adjacent pair of pipeline-able operators into a
/// [`PhysicalOp::ChunkPipeline`], producer first. One pair per pass — the
/// rewrite fixpoint loop grows maximal chains (each firing strictly reduces
/// the node count, so the loop's bound holds).
pub fn fuse_pipelines(plan: PhysicalPlan) -> Result<PhysicalPlan> {
    let counts = consumer_counts(&plan);
    for n in plan.nodes() {
        let Some(consumer_stages) = stages_of(&n.op) else {
            continue;
        };
        let producer = plan.node(n.inputs[0]);
        if counts[producer.id.0] != 1 {
            continue;
        }
        let Some(mut stages) = stages_of(&producer.op) else {
            continue;
        };
        stages.extend(consumer_stages);
        if !has_expr_stage(&stages) {
            continue; // e.g. Project over Project: nothing to compile
        }
        let fused = PhysicalOp::ChunkPipeline {
            stages: Arc::from(stages),
        };
        let (dead, fused_at) = (producer.id, n.id);
        let dead_input = producer.inputs[0];
        return rebuild(
            &plan,
            |id| id != dead,
            |id| (id == fused_at).then(|| fused.clone()),
            |id| if id == dead { dead_input } else { id },
        );
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::interpreter::run_plan;
    use crate::optimizer::rewrites::apply_rewrites;
    use crate::plan::PlanBuilder;
    use crate::platform::ExecutionContext;
    use crate::rec;
    use crate::udf::{FilterUdf, MapUdf};

    fn nums(n: i64) -> Vec<crate::data::Record> {
        (0..n).map(|i| rec![i, i * 2]).collect()
    }

    #[test]
    fn expression_chain_fuses_into_one_pipeline() {
        let mut b = PlanBuilder::new();
        let src = b.collection("s", nums(100));
        let f = b.filter(
            src,
            FilterUdf::from_expr("keep", Expr::field(0).lt(Expr::lit(50i64))).with_selectivity(0.5),
        );
        let m = b.map(
            f,
            MapUdf::from_exprs(
                "sum",
                vec![Expr::field(0).add(Expr::field(1)), Expr::field(0)],
            ),
        );
        let p = b.project(m, vec![0]);
        b.collect(p);
        let plan = b.build().unwrap();
        let before = run_plan(&plan, &ExecutionContext::new()).unwrap();

        let rewritten = apply_rewrites(plan).unwrap();
        // src, fused pipeline, sink.
        assert_eq!(rewritten.len(), 3, "{}", rewritten.explain());
        let node = &rewritten.nodes()[1];
        assert!(
            node.op.name().starts_with("ChunkPipeline[keep→sum→π"),
            "{}",
            node.op.name()
        );
        if let PhysicalOp::ChunkPipeline { stages } = &node.op {
            assert_eq!(stages.len(), 3);
        } else {
            panic!("expected a fused pipeline");
        }
        let after = run_plan(&rewritten, &ExecutionContext::new()).unwrap();
        assert_eq!(
            before.values().next().unwrap(),
            after.values().next().unwrap()
        );
    }

    #[test]
    fn opaque_udfs_do_not_fuse() {
        let mut b = PlanBuilder::new();
        let src = b.collection("s", nums(10));
        let f = b.filter(src, FilterUdf::new("keep", |r| r.int(0).unwrap() < 5));
        let p = b.project(f, vec![0]);
        b.collect(p);
        let plan = b.build().unwrap();
        let rewritten = apply_rewrites(plan).unwrap();
        assert_eq!(rewritten.len(), 4, "{}", rewritten.explain());
        assert!(!rewritten
            .nodes()
            .iter()
            .any(|n| matches!(n.op, PhysicalOp::ChunkPipeline { .. })));
    }

    #[test]
    fn shared_intermediate_results_stay_materialized() {
        let mut b = PlanBuilder::new();
        let src = b.collection("s", nums(10));
        let f = b.filter(
            src,
            FilterUdf::from_expr("keep", Expr::field(0).lt(Expr::lit(5i64))),
        );
        let p = b.project(f, vec![0]);
        b.collect(p);
        b.collect(f); // second consumer: f must not be folded into p
        let plan = b.build().unwrap();
        let rewritten = apply_rewrites(plan).unwrap();
        assert!(
            rewritten
                .nodes()
                .iter()
                .any(|n| matches!(n.op, PhysicalOp::Filter(_))),
            "{}",
            rewritten.explain()
        );
    }

    #[test]
    fn bare_project_chains_are_left_alone() {
        let mut b = PlanBuilder::new();
        let src = b.collection("s", nums(10));
        let p1 = b.project(src, vec![0, 1]);
        let p2 = b.project(p1, vec![0]);
        b.collect(p2);
        let plan = b.build().unwrap();
        let rewritten = apply_rewrites(plan).unwrap();
        assert!(!rewritten
            .nodes()
            .iter()
            .any(|n| matches!(n.op, PhysicalOp::ChunkPipeline { .. })));
    }

    #[test]
    fn fused_pipeline_matches_row_semantics_on_dirty_data() {
        use crate::data::Value;
        let mut b = PlanBuilder::new();
        let data = vec![
            rec![1i64, 2i64],
            vec![Value::Null, Value::Float(f64::NAN)].into(),
            rec![-0.0f64, 7i64],
            vec![Value::Int(i64::MAX), Value::Int(1)].into(),
        ];
        let src = b.collection("s", data);
        let f = b.filter(
            src,
            FilterUdf::from_expr("notnull", Expr::field(0).is_null().not()),
        );
        let m = b.map(
            f,
            MapUdf::from_exprs("calc", vec![Expr::field(0).add(Expr::field(1))]),
        );
        b.collect(m);
        let plan = b.build().unwrap();
        let before = run_plan(&plan, &ExecutionContext::new()).unwrap();
        let rewritten = apply_rewrites(plan).unwrap();
        assert!(rewritten
            .nodes()
            .iter()
            .any(|n| matches!(n.op, PhysicalOp::ChunkPipeline { .. })));
        let after = run_plan(&rewritten, &ExecutionContext::new()).unwrap();
        assert_eq!(
            before.values().next().unwrap(),
            after.values().next().unwrap()
        );
    }
}
