//! Adaptive mid-job re-optimization: re-enumerate the unexecuted suffix
//! of a plan when observed cardinalities drift from the estimates.
//!
//! RHEEMix-style progressive optimization: the optimizer's platform
//! choices are only as good as its cardinality estimates, so the executor
//! revisits them *while the job runs*. After each committed wave it
//! compares the observed sizes of live boundary datasets against the
//! plan's [`NodeEstimate`](crate::plan::NodeEstimate)s; when the error
//! ratio on any of them exceeds
//! [`ReplanPolicy::threshold`], the [`Replanner`] rebuilds the remaining
//! work:
//!
//! 1. every materialized boundary dataset a pending atom consumes becomes
//!    a fixed-cardinality `CollectionSource` *pseudo-node* (named
//!    `replan:nX`), so the enumerator sees its true size;
//! 2. the pending nodes are copied into a temporary suffix plan wired to
//!    those pseudo-sources, and [`enumerate`](super::enumerate)
//!    re-runs over it with the live [`CostCalibration`] factors;
//! 3. the result is translated back into the original node-id space: the
//!    physical plan and the assignments/estimates of executed nodes are
//!    kept, pseudo-nodes are dropped, and their in-atom edges become
//!    ordinary cross-atom boundary inputs fed from the materialized
//!    outputs.
//!
//! The spliced plan's atoms keep their original id when their node set is
//! unchanged and get fresh (globally unique, non-dense) ids otherwise —
//! which is why the executor schedules re-planned suffixes through
//! [`ExecutionPlan::pending_dependencies`] instead of
//! [`ExecutionPlan::atom_dependencies`].

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::cost::{drift_ratio, CardinalityEstimator, MovementCostModel};
use crate::data::Dataset;
use crate::error::{Result, RheemError};
use crate::observe::CostCalibration;
use crate::physical::PhysicalOp;
use crate::plan::{AtomInput, ExecutionPlan, NodeId, PhysicalNode, PhysicalPlan, TaskAtom};
use crate::platform::PlatformRegistry;

use super::enumerate::EnumerationConfig;
use super::enumerate_v2::enumerate_with_config;

/// When and how often the executor may re-optimize a running job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplanPolicy {
    /// Smallest estimated-vs-observed cardinality error ratio (symmetric,
    /// see [`drift_ratio`]) on a live boundary dataset that triggers a
    /// re-plan. Must be `> 1.0`; `1.0` would re-plan on any deviation.
    pub threshold: f64,
    /// Upper bound on re-plans per job, so a badly calibrated model
    /// cannot oscillate forever.
    pub max_replans: usize,
}

impl Default for ReplanPolicy {
    fn default() -> Self {
        ReplanPolicy {
            threshold: 2.0,
            max_replans: 2,
        }
    }
}

/// Re-enumerates the unexecuted suffix of a job mid-flight.
///
/// Built from the optimizer's own models (see
/// [`MultiPlatformOptimizer::replanner`](super::MultiPlatformOptimizer::replanner))
/// so a re-plan prices platforms exactly as the original enumeration did —
/// except with true cardinalities and the latest calibration factors.
#[derive(Clone)]
pub struct Replanner {
    /// Cardinality estimation for the suffix (pseudo-sources carry exact
    /// sizes, so estimates downstream of them start from the truth).
    pub estimator: CardinalityEstimator,
    /// Inter-platform movement prices.
    pub movement: MovementCostModel,
    /// Enumeration knobs (forced platform, movement-blindness ablations).
    pub enumeration: EnumerationConfig,
    /// Shared calibration table; re-plans see factors learned earlier in
    /// the same process.
    pub calibration: Arc<CostCalibration>,
    /// Trigger threshold and re-plan budget.
    pub policy: ReplanPolicy,
}

/// The live boundary dataset whose cardinality drifted the most beyond
/// the policy threshold, or `None` when every estimate is close enough.
///
/// `live` are the executor's materialized node outputs; only datasets
/// still awaiting consumers (`remaining[node] > 0`) are considered —
/// fully consumed data cannot influence any pending decision.
pub fn worst_drift(
    plan: &ExecutionPlan,
    live: &HashMap<NodeId, Dataset>,
    remaining: &HashMap<NodeId, usize>,
    threshold: f64,
) -> Option<(NodeId, f64)> {
    if plan.estimates.len() != plan.physical.len() {
        return None; // hand-built plan without estimates: nothing to compare
    }
    let mut worst: Option<(NodeId, f64)> = None;
    let mut nodes: Vec<&NodeId> = live.keys().collect();
    nodes.sort_unstable(); // deterministic tie-breaking
    for &node in nodes {
        if remaining.get(&node).copied().unwrap_or(0) == 0 {
            continue;
        }
        let data = &live[&node];
        let ratio = drift_ratio(plan.estimates[node.0].card, data.len() as f64);
        if ratio > threshold && worst.is_none_or(|(_, w)| ratio > w) {
            worst = Some((node, ratio));
        }
    }
    worst
}

impl Replanner {
    /// A copy of this replanner whose enumeration excludes `platforms`
    /// (on top of any exclusions already configured). Failover hands the
    /// executor such a copy so a re-plan cannot route the suffix back
    /// onto a platform that just failed.
    pub fn excluding(&self, platforms: &[String]) -> Replanner {
        let mut out = self.clone();
        for p in platforms {
            if !out.enumeration.excluded_platforms.contains(p) {
                out.enumeration.excluded_platforms.push(p.clone());
            }
        }
        out
    }

    /// Re-enumerate the pending suffix of `plan`.
    ///
    /// `executed` holds the *positions* (indices into `plan.atoms`) of
    /// atoms that already committed; `live` maps materialized boundary
    /// nodes to their actual outputs; `next_atom_id` is the executor's
    /// id fountain for atoms whose node set changed.
    ///
    /// Returns a plan over the same physical DAG whose `atoms` are only
    /// the (re-partitioned) pending atoms, whose `assignments` and
    /// `estimates` are full-length (executed nodes keep their original
    /// platform so movement from them is priced correctly; materialized
    /// boundary nodes get their *observed* cardinality so the same drift
    /// cannot re-trigger), and whose `estimated_cost` is the cost of the
    /// remaining work.
    pub fn replan(
        &self,
        plan: &ExecutionPlan,
        executed: &HashSet<usize>,
        live: &HashMap<NodeId, Dataset>,
        registry: &PlatformRegistry,
        next_atom_id: &mut usize,
    ) -> Result<ExecutionPlan> {
        let pending: Vec<&TaskAtom> = plan
            .atoms
            .iter()
            .enumerate()
            .filter(|(pos, _)| !executed.contains(pos))
            .map(|(_, a)| a)
            .collect();
        if pending.is_empty() {
            return Err(RheemError::Optimizer(
                "replan requested but no atoms are pending".into(),
            ));
        }
        let mut pending_nodes: Vec<NodeId> = pending.iter().flat_map(|a| a.nodes.clone()).collect();
        pending_nodes.sort_unstable();
        let pending_set: HashSet<NodeId> = pending_nodes.iter().copied().collect();

        // Materialized producers feeding the suffix, ascending by node id.
        let mut sources: Vec<NodeId> = pending
            .iter()
            .flat_map(|a| a.inputs.iter().map(|i| i.producer))
            .filter(|p| !pending_set.contains(p))
            .collect();
        sources.sort_unstable();
        sources.dedup();

        // 1+2: the temporary suffix plan — pseudo-sources first, then the
        // pending nodes with inputs remapped into the temp id space.
        let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
        let mut temp_nodes: Vec<PhysicalNode> = Vec::new();
        for &p in &sources {
            let data = live.get(&p).cloned().ok_or_else(|| {
                RheemError::Optimizer(format!(
                    "replan needs the materialized output of node {p}, but it is gone"
                ))
            })?;
            let id = NodeId(temp_nodes.len());
            temp_nodes.push(PhysicalNode {
                id,
                op: PhysicalOp::CollectionSource {
                    data,
                    name: format!("replan:{p}"),
                },
                inputs: vec![],
            });
            remap.insert(p, id);
        }
        let pseudo_count = temp_nodes.len();
        for &n in &pending_nodes {
            let orig = plan.physical.node(n);
            let inputs = orig
                .inputs
                .iter()
                .map(|i| {
                    remap.get(i).copied().ok_or_else(|| {
                        RheemError::Optimizer(format!(
                            "replan suffix node {n} consumes node {i} that is neither \
                             pending nor materialized"
                        ))
                    })
                })
                .collect::<Result<Vec<_>>>()?;
            let id = NodeId(temp_nodes.len());
            temp_nodes.push(PhysicalNode {
                id,
                op: orig.op.clone(),
                inputs,
            });
            remap.insert(n, id);
        }
        let temp = PhysicalPlan::from_nodes(temp_nodes);
        temp.validate()?;
        // Same strategy dispatch (and channel-aware movement pricing) as
        // the original optimization pass, so a re-plan explores the suffix
        // exactly the way the first enumeration explored the whole plan.
        let movement = self.movement.channelized(registry);
        let suffix = enumerate_with_config(
            Arc::new(temp),
            registry,
            &self.estimator,
            &movement,
            &self.enumeration,
            &self.calibration,
        )?;

        // 3: translate back to the original node-id space.
        let back: HashMap<NodeId, NodeId> = remap.iter().map(|(o, t)| (*t, *o)).collect();
        let mut assignments = plan.assignments.clone();
        let mut estimates = plan.estimates.clone();
        for (&orig, &tmp) in &remap {
            if tmp.0 < pseudo_count {
                // Materialized boundary node: pin the estimate to the
                // truth so the executed drift cannot re-trigger.
                if let Some(e) = estimates.get_mut(orig.0) {
                    e.card = live[&orig].len() as f64;
                }
            } else {
                assignments[orig.0] = suffix.assignments[tmp.0].clone();
                if let Some(e) = estimates.get_mut(orig.0) {
                    *e = suffix.estimates[tmp.0];
                }
            }
        }

        let mut atoms = Vec::new();
        for satom in &suffix.atoms {
            let nodes: Vec<NodeId> = satom
                .nodes
                .iter()
                .filter(|t| t.0 >= pseudo_count)
                .map(|t| back[t])
                .collect();
            if nodes.is_empty() {
                continue; // a pure pseudo-source atom: its data already exists
            }
            let in_atom: HashSet<NodeId> = satom.nodes.iter().copied().collect();
            let mut inputs: Vec<AtomInput> = satom
                .inputs
                .iter()
                .map(|i| AtomInput {
                    consumer: back[&i.consumer],
                    slot: i.slot,
                    producer: back[&i.producer],
                    channel: i.channel,
                })
                .collect();
            // Pseudo-sources merged *into* this atom vanish in the
            // translated plan; their edges become boundary inputs fed
            // from the materialized outputs.
            for &t in &satom.nodes {
                if t.0 < pseudo_count {
                    continue;
                }
                for (slot, tin) in suffix.physical.node(t).inputs.iter().enumerate() {
                    if tin.0 < pseudo_count && in_atom.contains(tin) {
                        inputs.push(AtomInput {
                            consumer: back[&t],
                            slot,
                            producer: back[tin],
                            channel: Default::default(),
                        });
                    }
                }
            }
            inputs.sort_unstable_by_key(|i| (i.consumer, i.slot));
            let outputs: Vec<NodeId> = satom
                .outputs
                .iter()
                .filter(|t| t.0 >= pseudo_count)
                .map(|t| back[t])
                .collect();
            // Keep the old id when the atom survived unchanged (same node
            // set); otherwise draw a fresh, globally unique id.
            let id = pending
                .iter()
                .find(|a| a.nodes == nodes)
                .map(|a| a.id)
                .unwrap_or_else(|| {
                    let id = *next_atom_id;
                    *next_atom_id += 1;
                    id
                });
            atoms.push(TaskAtom {
                id,
                platform: satom.platform.clone(),
                nodes,
                inputs,
                outputs,
            });
        }

        Ok(ExecutionPlan {
            physical: plan.physical.clone(),
            assignments,
            atoms,
            estimated_cost: suffix.estimated_cost,
            estimates,
            enumeration: suffix.enumeration.clone(),
        })
    }
}
