//! Error types for the RHEEM core.
//!
//! All fallible public APIs in this workspace return [`RheemError`] (or a
//! crate-local error that converts into it). The variants mirror the stages
//! of the paper's pipeline: plan construction, optimization, and execution.

use std::fmt;

use crate::plan::NodeId;

/// The unified error type of the RHEEM core.
#[derive(Debug)]
pub enum RheemError {
    /// A plan failed structural validation (bad arity, cycle, dangling edge).
    InvalidPlan(String),
    /// A record did not have the shape an operator expected.
    Type {
        /// What the operator expected, e.g. `"Int at field 2"`.
        expected: String,
        /// What was actually found.
        found: String,
    },
    /// A field index was out of bounds for a record.
    FieldOutOfBounds {
        /// The requested field index.
        index: usize,
        /// The record's width.
        width: usize,
    },
    /// The optimizer could not produce an execution plan.
    Optimizer(String),
    /// No registered platform can execute the given operator.
    NoPlatformFor {
        /// Display name of the unsupported operator.
        op: String,
        /// Node carrying the operator.
        node: NodeId,
    },
    /// A platform was referenced by name but is not registered.
    UnknownPlatform(String),
    /// A task atom failed on its platform (possibly after retries).
    Execution {
        /// Platform that ran the atom.
        platform: String,
        /// Human-readable cause.
        message: String,
    },
    /// The storage layer reported a failure.
    Storage(String),
    /// A dataset id was not found in any registered store.
    DatasetNotFound(String),
    /// A requested operation exceeded its configured budget (e.g. timeout).
    BudgetExceeded(String),
    /// A declarative query failed to parse or plan.
    Query(String),
    /// Wrapper for I/O failures (local files, simulated HDFS spill, ...).
    Io(std::io::Error),
}

impl fmt::Display for RheemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RheemError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            RheemError::Type { expected, found } => {
                write!(f, "type error: expected {expected}, found {found}")
            }
            RheemError::FieldOutOfBounds { index, width } => {
                write!(
                    f,
                    "field index {index} out of bounds for record of width {width}"
                )
            }
            RheemError::Optimizer(msg) => write!(f, "optimizer error: {msg}"),
            RheemError::NoPlatformFor { op, node } => {
                write!(
                    f,
                    "no registered platform supports operator {op} (node {node})"
                )
            }
            RheemError::UnknownPlatform(name) => write!(f, "unknown platform: {name}"),
            RheemError::Execution { platform, message } => {
                write!(f, "execution failed on platform {platform}: {message}")
            }
            RheemError::Storage(msg) => write!(f, "storage error: {msg}"),
            RheemError::DatasetNotFound(id) => write!(f, "dataset not found: {id}"),
            RheemError::BudgetExceeded(msg) => write!(f, "budget exceeded: {msg}"),
            RheemError::Query(msg) => write!(f, "query error: {msg}"),
            RheemError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for RheemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RheemError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RheemError {
    fn from(e: std::io::Error) -> Self {
        RheemError::Io(e)
    }
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, RheemError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RheemError::Type {
            expected: "Int at field 2".into(),
            found: "Str(\"x\")".into(),
        };
        let s = e.to_string();
        assert!(s.contains("expected Int at field 2"));
        assert!(s.contains("Str"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: RheemError = io.into();
        assert!(matches!(e, RheemError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn field_out_of_bounds_message() {
        let e = RheemError::FieldOutOfBounds { index: 5, width: 3 };
        assert_eq!(
            e.to_string(),
            "field index 5 out of bounds for record of width 3"
        );
    }
}
