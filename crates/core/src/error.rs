//! Error types for the RHEEM core.
//!
//! All fallible public APIs in this workspace return [`RheemError`] (or a
//! crate-local error that converts into it). The variants mirror the stages
//! of the paper's pipeline: plan construction, optimization, and execution.
//!
//! Every error also carries a *taxonomy* ([`ErrorKind`], via
//! [`RheemError::classify`]): the executor's fault-tolerance machinery
//! retries only [`ErrorKind::Transient`] failures, fails fast on
//! [`ErrorKind::Permanent`] ones, and treats
//! [`ErrorKind::ResourceExhausted`] as "this resource won't recover by
//! retrying here" (an open circuit breaker, an expired budget).

use std::fmt;

use crate::plan::NodeId;

/// Coarse failure taxonomy driving the executor's retry policy (§4.2 duty
/// iii — see `DESIGN.md` §9).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// The operation may succeed if simply retried on the same platform
    /// (engine hiccup, I/O glitch, injected chaos). The only kind the
    /// executor spends retry budget on.
    Transient,
    /// Retrying cannot help: the plan, data, or configuration is wrong
    /// (type errors, invalid plans, unknown platforms). The executor fails
    /// fast after exactly one attempt. `panic: true` marks the subclass
    /// caught by the executor's unwind barrier — a UDF or kernel panicked
    /// rather than returning an error (see `DESIGN.md` §14).
    Permanent {
        /// The failure was a caught panic, not a returned error.
        panic: bool,
    },
    /// A bounded resource is gone — the job deadline expired or a
    /// platform's circuit breaker is open. Retrying *here* is pointless;
    /// an open breaker instead makes the atom a failover candidate.
    ResourceExhausted,
    /// The job was cooperatively cancelled ([`crate::fault::CancelToken`]):
    /// the client disconnected, the deadline expired at a checkpoint, the
    /// server is shutting down, or an explicit `CANCEL` arrived. Never
    /// retried, never a failover candidate — the work is unwanted, not
    /// broken.
    Cancelled,
}

/// Why a [`crate::fault::CancelToken`] fired. Carried by
/// [`RheemError::Cancelled`] so the edge can report *who* abandoned the
/// job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CancelReason {
    /// The session owning the job hung up mid-flight.
    ClientDisconnect,
    /// The request's deadline budget ran out.
    DeadlineExceeded,
    /// The service is shutting down and draining in-flight work.
    Shutdown,
    /// An explicit cancel request (wire `CANCEL` or a direct API call).
    Explicit,
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CancelReason::ClientDisconnect => "client disconnect",
            CancelReason::DeadlineExceeded => "deadline exceeded",
            CancelReason::Shutdown => "shutdown",
            CancelReason::Explicit => "explicit cancel",
        })
    }
}

/// The unified error type of the RHEEM core.
#[derive(Debug)]
pub enum RheemError {
    /// A plan failed structural validation (bad arity, cycle, dangling edge).
    InvalidPlan(String),
    /// A record did not have the shape an operator expected.
    Type {
        /// What the operator expected, e.g. `"Int at field 2"`.
        expected: String,
        /// What was actually found.
        found: String,
    },
    /// A field index was out of bounds for a record.
    FieldOutOfBounds {
        /// The requested field index.
        index: usize,
        /// The record's width.
        width: usize,
    },
    /// The optimizer could not produce an execution plan.
    Optimizer(String),
    /// No registered platform can execute the given operator.
    NoPlatformFor {
        /// Display name of the unsupported operator.
        op: String,
        /// Node carrying the operator.
        node: NodeId,
    },
    /// A platform was referenced by name but is not registered.
    UnknownPlatform(String),
    /// A platform is registered but currently unavailable: its circuit
    /// breaker is open after repeated failures (see
    /// [`crate::fault::PlatformHealth`]). Atoms hitting this error skip
    /// their retry budget and become failover candidates.
    PlatformUnavailable {
        /// The unhealthy platform.
        platform: String,
        /// Why the breaker considers it down.
        message: String,
    },
    /// A task atom failed on its platform (possibly after retries).
    Execution {
        /// Platform that ran the atom.
        platform: String,
        /// Human-readable cause.
        message: String,
    },
    /// The storage layer reported a failure.
    Storage(String),
    /// A dataset id was not found in any registered store.
    DatasetNotFound(String),
    /// A requested operation exceeded its configured budget (e.g. timeout).
    BudgetExceeded(String),
    /// A declarative query failed to parse or plan.
    Query(String),
    /// The job was cooperatively cancelled at a checkpoint (wave boundary,
    /// retry loop, morsel pull). Carries the first cancellation reason
    /// recorded on the job's [`crate::fault::CancelToken`].
    Cancelled {
        /// Who abandoned the job.
        reason: CancelReason,
    },
    /// A panic caught at the executor's unwind barrier: a UDF or kernel
    /// panicked instead of returning an error. The panic is confined to
    /// the failing atom — worker threads and sibling jobs survive.
    Panic {
        /// Platform whose atom invocation panicked.
        platform: String,
        /// The panic payload, stringified when possible.
        message: String,
    },
    /// Wrapper for I/O failures (local files, simulated HDFS spill, ...).
    Io(std::io::Error),
}

impl fmt::Display for RheemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RheemError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            RheemError::Type { expected, found } => {
                write!(f, "type error: expected {expected}, found {found}")
            }
            RheemError::FieldOutOfBounds { index, width } => {
                write!(
                    f,
                    "field index {index} out of bounds for record of width {width}"
                )
            }
            RheemError::Optimizer(msg) => write!(f, "optimizer error: {msg}"),
            RheemError::NoPlatformFor { op, node } => {
                write!(
                    f,
                    "no registered platform supports operator {op} (node {node})"
                )
            }
            RheemError::UnknownPlatform(name) => write!(f, "unknown platform: {name}"),
            RheemError::PlatformUnavailable { platform, message } => {
                write!(f, "platform {platform} unavailable: {message}")
            }
            RheemError::Execution { platform, message } => {
                write!(f, "execution failed on platform {platform}: {message}")
            }
            RheemError::Storage(msg) => write!(f, "storage error: {msg}"),
            RheemError::DatasetNotFound(id) => write!(f, "dataset not found: {id}"),
            RheemError::BudgetExceeded(msg) => write!(f, "budget exceeded: {msg}"),
            RheemError::Query(msg) => write!(f, "query error: {msg}"),
            RheemError::Cancelled { reason } => write!(f, "job cancelled: {reason}"),
            RheemError::Panic { platform, message } => {
                write!(f, "panic on platform {platform}: {message}")
            }
            RheemError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl RheemError {
    /// Where this error sits in the failure taxonomy.
    ///
    /// - [`ErrorKind::Transient`]: platform execution failures, storage
    ///   failures, and I/O errors — the engine may simply have hiccuped.
    /// - [`ErrorKind::ResourceExhausted`]: expired budgets and open
    ///   circuit breakers — retrying on the same resource cannot help.
    /// - [`ErrorKind::Cancelled`]: the job was cooperatively abandoned —
    ///   no retry, no failover; the result is unwanted.
    /// - [`ErrorKind::Permanent`]: everything else (bad plans, type
    ///   errors, missing mappings/platforms/datasets, query errors) — a
    ///   retry would deterministically fail again. Caught panics are
    ///   `Permanent { panic: true }`.
    pub fn classify(&self) -> ErrorKind {
        match self {
            RheemError::Execution { .. } | RheemError::Storage(_) | RheemError::Io(_) => {
                ErrorKind::Transient
            }
            RheemError::BudgetExceeded(_) | RheemError::PlatformUnavailable { .. } => {
                ErrorKind::ResourceExhausted
            }
            RheemError::Cancelled { .. } => ErrorKind::Cancelled,
            RheemError::Panic { .. } => ErrorKind::Permanent { panic: true },
            RheemError::InvalidPlan(_)
            | RheemError::Type { .. }
            | RheemError::FieldOutOfBounds { .. }
            | RheemError::Optimizer(_)
            | RheemError::NoPlatformFor { .. }
            | RheemError::UnknownPlatform(_)
            | RheemError::DatasetNotFound(_)
            | RheemError::Query(_) => ErrorKind::Permanent { panic: false },
        }
    }

    /// Whether the executor should spend retry budget on this error
    /// (true exactly for [`ErrorKind::Transient`]).
    pub fn is_retryable(&self) -> bool {
        self.classify() == ErrorKind::Transient
    }

    /// The platform this error implicates, when it names one. Drives
    /// failover re-planning: the implicated platform is excluded from the
    /// re-enumeration of the unexecuted suffix.
    pub fn platform(&self) -> Option<&str> {
        match self {
            RheemError::Execution { platform, .. }
            | RheemError::PlatformUnavailable { platform, .. }
            | RheemError::Panic { platform, .. } => Some(platform),
            RheemError::UnknownPlatform(platform) => Some(platform),
            _ => None,
        }
    }
}

impl std::error::Error for RheemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RheemError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RheemError {
    fn from(e: std::io::Error) -> Self {
        RheemError::Io(e)
    }
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, RheemError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RheemError::Type {
            expected: "Int at field 2".into(),
            found: "Str(\"x\")".into(),
        };
        let s = e.to_string();
        assert!(s.contains("expected Int at field 2"));
        assert!(s.contains("Str"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: RheemError = io.into();
        assert!(matches!(e, RheemError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn taxonomy_partitions_the_variants() {
        let transient = [
            RheemError::Execution {
                platform: "java".into(),
                message: "boom".into(),
            },
            RheemError::Storage("disk glitch".into()),
            RheemError::Io(std::io::Error::other("net")),
        ];
        for e in &transient {
            assert_eq!(e.classify(), ErrorKind::Transient, "{e}");
            assert!(e.is_retryable(), "{e}");
        }
        let permanent = [
            RheemError::InvalidPlan("bad arity".into()),
            RheemError::Type {
                expected: "Int".into(),
                found: "Str".into(),
            },
            RheemError::FieldOutOfBounds { index: 1, width: 0 },
            RheemError::Optimizer("no".into()),
            RheemError::UnknownPlatform("flink".into()),
            RheemError::DatasetNotFound("x".into()),
            RheemError::Query("parse".into()),
        ];
        for e in &permanent {
            assert_eq!(e.classify(), ErrorKind::Permanent { panic: false }, "{e}");
            assert!(!e.is_retryable(), "{e}");
        }
        let exhausted = [
            RheemError::BudgetExceeded("deadline".into()),
            RheemError::PlatformUnavailable {
                platform: "spark".into(),
                message: "breaker open".into(),
            },
        ];
        for e in &exhausted {
            assert_eq!(e.classify(), ErrorKind::ResourceExhausted, "{e}");
            assert!(!e.is_retryable(), "{e}");
        }
        // A caught panic is permanent with the panic flag raised, and a
        // cancellation is its own non-retryable kind — neither ever
        // consumes retry budget.
        let panic = RheemError::Panic {
            platform: "java".into(),
            message: "index out of bounds".into(),
        };
        assert_eq!(panic.classify(), ErrorKind::Permanent { panic: true });
        assert!(!panic.is_retryable());
        for reason in [
            CancelReason::ClientDisconnect,
            CancelReason::DeadlineExceeded,
            CancelReason::Shutdown,
            CancelReason::Explicit,
        ] {
            let e = RheemError::Cancelled { reason };
            assert_eq!(e.classify(), ErrorKind::Cancelled, "{e}");
            assert!(!e.is_retryable(), "{e}");
        }
    }

    #[test]
    fn cancel_and_panic_messages_name_their_cause() {
        let e = RheemError::Cancelled {
            reason: CancelReason::ClientDisconnect,
        };
        assert_eq!(e.to_string(), "job cancelled: client disconnect");
        let e = RheemError::Panic {
            platform: "sparklike".into(),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "panic on platform sparklike: boom");
        assert_eq!(e.platform(), Some("sparklike"));
    }

    #[test]
    fn implicated_platform_is_surfaced() {
        let e = RheemError::PlatformUnavailable {
            platform: "spark".into(),
            message: "open".into(),
        };
        assert_eq!(e.platform(), Some("spark"));
        assert!(e.to_string().contains("spark unavailable"));
        assert_eq!(RheemError::Query("q".into()).platform(), None);
    }

    #[test]
    fn field_out_of_bounds_message() {
        let e = RheemError::FieldOutOfBounds { index: 5, width: 3 };
        assert_eq!(
            e.to_string(),
            "field index 5 out of bounds for record of width 3"
        );
    }
}
