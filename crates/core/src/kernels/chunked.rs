//! Vectorized execution kernels over columnar [`Chunk`]s.
//!
//! Each kernel here is the columnar twin of a row kernel in
//! [`crate::kernels`] and is **byte-identical** to it: for any input,
//! `chunk_kernel(Chunk::from_records(rows))` converted back with
//! [`Chunk::to_records`] equals `row_kernel(rows)` exactly — including
//! `Null` placement, `NaN` payload bits, `-0.0`, group ordering, and join
//! output order. The property-test suite (`tests/columnar_kernels.rs`)
//! enforces this over random data.
//!
//! Where the operator carries a declarative form (an [`Expr`] predicate, a
//! [`FieldReduce`] spec, a [`KeyUdf::field`] index), kernels run fully
//! columnar: typed key lanes hash as raw `i64`s, predicates evaluate
//! vectorized, and accumulators update in place without materializing a
//! [`Record`] per row. Opaque closures fall back to materializing rows —
//! correct, but without the columnar speedup.

use std::collections::HashMap;

use crate::data::{Chunk, Record, Value};
use crate::error::{Result, RheemError};
use crate::expr::Expr;
use crate::physical::{PipelineStage, StageKind};
use crate::udf::{FieldReduce, KeyUdf, ReduceUdf};

/// Keep rows whose predicate evaluates to `Bool(true)`.
pub fn filter(chunk: &Chunk, expr: &Expr) -> Chunk {
    chunk.gather(&filter_indices(chunk, expr))
}

/// Row indices kept by a predicate (the mask form of [`filter`]).
pub fn filter_indices(chunk: &Chunk, expr: &Expr) -> Vec<usize> {
    let mask = expr.eval_chunk(chunk);
    // Fast path: a clean Bool lane needs no per-row Value construction.
    if let (Some(lane), true) = (mask.bools(), mask.no_nulls()) {
        return (0..chunk.rows()).filter(|&i| lane[i]).collect();
    }
    (0..chunk.rows())
        .filter(|&i| matches!(mask.value(i), Value::Bool(true)))
        .collect()
}

/// Evaluate one output column per expression (the vectorized map).
pub fn map(chunk: &Chunk, exprs: &[Expr]) -> Chunk {
    let columns = exprs.iter().map(|e| e.eval_chunk(chunk)).collect();
    Chunk::new(columns, chunk.rows())
}

/// Keep the given columns, in order — zero-copy.
///
/// Mirrors the row kernel's contract: out-of-bounds indices are an error
/// (unless the chunk is empty, where the row kernel also succeeds).
pub fn project(chunk: &Chunk, indices: &[usize]) -> Result<Chunk> {
    if chunk.rows() == 0 {
        return Ok(Chunk::new(Vec::new(), 0));
    }
    chunk
        .project(indices)
        .ok_or_else(|| RheemError::FieldOutOfBounds {
            index: indices
                .iter()
                .copied()
                .find(|&i| i >= chunk.width())
                .unwrap_or(0),
            width: chunk.width(),
        })
}

/// Per-row keys extracted column-wise, avoiding record materialization when
/// the key is a plain field read.
enum Keys<'a> {
    /// Typed fast path: the key column is a clean `i64` lane.
    Ints(&'a [i64]),
    /// Generic path: one [`Value`] key per row.
    Values(Vec<Value>),
}

fn extract_keys<'a>(chunk: &'a Chunk, key: &KeyUdf) -> Keys<'a> {
    if let Some(idx) = key.field_index {
        match chunk.column(idx) {
            Some(col) => {
                if col.no_nulls() {
                    if let Some(lane) = col.ints() {
                        return Keys::Ints(lane);
                    }
                }
                Keys::Values((0..chunk.rows()).map(|i| col.value(i)).collect())
            }
            // Out-of-bounds field reads as Null for every row.
            None => Keys::Values(vec![Value::Null; chunk.rows()]),
        }
    } else {
        let records = chunk.to_records();
        Keys::Values(records.iter().map(|r| (key.f)(r)).collect())
    }
}

/// Group row indices by key; groups ordered by key ascending, members in
/// input order (the index-level core of `hash_group`/`reduce_by_key`).
fn group_indices(chunk: &Chunk, key: &KeyUdf) -> Vec<(Value, Vec<usize>)> {
    match extract_keys(chunk, key) {
        Keys::Ints(lane) => {
            let mut groups: HashMap<i64, Vec<usize>> = HashMap::new();
            for (i, &k) in lane.iter().enumerate() {
                groups.entry(k).or_default().push(i);
            }
            let mut out: Vec<(i64, Vec<usize>)> = groups.into_iter().collect();
            // i64 order equals Value::Int order, so this matches the row
            // kernel's key-sorted output contract.
            out.sort_by_key(|(k, _)| *k);
            out.into_iter().map(|(k, v)| (Value::Int(k), v)).collect()
        }
        Keys::Values(keys) => {
            let mut groups: HashMap<Value, Vec<usize>> = HashMap::new();
            for (i, k) in keys.into_iter().enumerate() {
                groups.entry(k).or_default().push(i);
            }
            let mut out: Vec<(Value, Vec<usize>)> = groups.into_iter().collect();
            out.sort_by(|a, b| a.0.cmp(&b.0));
            out
        }
    }
}

/// Group rows by key. Same output contract as the row kernel: groups sorted
/// by key, members in input order.
pub fn hash_group(chunk: &Chunk, key: &KeyUdf) -> Vec<(Value, Vec<Record>)> {
    group_indices(chunk, key)
        .into_iter()
        .map(|(k, idx)| (k, chunk.gather(&idx).to_records()))
        .collect()
}

/// Fully typed reduce: all columns are clean `i64` lanes, the key is a
/// field read, the chunk width equals the spec width, and every spec op is
/// defined on integers. Accumulators live in one flat `i64` array — no
/// `Value` is built until the final emission. Returns `None` when any
/// precondition fails (the caller falls back to the generic fold).
///
/// Byte-identity argument: on all-`Int` inputs `FieldReduce::combine` is
/// `wrapping_add` / `min` / `max` / keep-first on the payload, `i64`
/// ordering equals `Value::Int` ordering, and seeding a group's
/// accumulators with its first row's lane values is exactly the row
/// kernel's seed-with-first-record (the widths match by precondition).
fn reduce_ints(chunk: &Chunk, key: &KeyUdf, spec: &[FieldReduce]) -> Option<Vec<Record>> {
    let key_lane = match extract_keys(chunk, key) {
        Keys::Ints(lane) => lane,
        Keys::Values(_) => return None,
    };
    let width = chunk.width();
    if width != spec.len() {
        return None;
    }
    if spec.iter().any(|fr| matches!(fr, FieldReduce::SumFloat)) {
        return None;
    }
    let lanes: Vec<&[i64]> = chunk
        .columns()
        .iter()
        .map(|c| if c.no_nulls() { c.ints() } else { None })
        .collect::<Option<_>>()?;

    let mut slots: HashMap<i64, usize> = HashMap::new();
    let mut keys: Vec<i64> = Vec::new();
    let mut accs: Vec<i64> = Vec::new();
    for i in 0..chunk.rows() {
        match slots.entry(key_lane[i]) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(keys.len());
                keys.push(key_lane[i]);
                accs.extend(lanes.iter().map(|lane| lane[i]));
            }
            std::collections::hash_map::Entry::Occupied(o) => {
                let base = o.get() * width;
                for (f, fr) in spec.iter().enumerate() {
                    let x = lanes[f][i];
                    let a = &mut accs[base + f];
                    match fr {
                        FieldReduce::First => {}
                        FieldReduce::SumInt => *a = a.wrapping_add(x),
                        FieldReduce::Min => *a = (*a).min(x),
                        FieldReduce::Max => *a = (*a).max(x),
                        FieldReduce::SumFloat => unreachable!("filtered above"),
                    }
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by_key(|&s| keys[s]);
    Some(
        order
            .into_iter()
            .map(|s| {
                Record::new(
                    accs[s * width..(s + 1) * width]
                        .iter()
                        .map(|&v| Value::Int(v))
                        .collect(),
                )
            })
            .collect(),
    )
}

/// Keyed incremental reduction; one output record per key, ordered by key.
///
/// Matches the row kernel's fold exactly: the first record of each key
/// seeds the accumulator verbatim, subsequent records combine in input
/// order. With a declarative [`crate::udf::FieldReduce`] spec the fold runs
/// on column values directly; an opaque closure falls back to materialized
/// records.
pub fn reduce_by_key(chunk: &Chunk, key: &KeyUdf, reduce: &ReduceUdf) -> Vec<Record> {
    if let Some(spec) = &reduce.spec {
        if let Some(out) = reduce_ints(chunk, key, spec) {
            return out;
        }
    }
    let groups = group_indices(chunk, key);
    match &reduce.spec {
        Some(spec) => {
            let cols: Vec<Option<&crate::data::Column>> =
                (0..spec.len()).map(|f| chunk.column(f)).collect();
            let mut out = Vec::with_capacity(groups.len());
            for (_, idx) in groups {
                let mut rows = idx.into_iter();
                let first = rows.next().expect("groups are non-empty");
                // Seed with the full first row, exactly like the row
                // kernel's `or_insert_with(|| r.clone())`.
                let mut acc: Vec<Value> = chunk.columns().iter().map(|c| c.value(first)).collect();
                for i in rows {
                    // The row closure emits exactly `spec.len()` fields per
                    // fold, reading missing accumulator fields as Null.
                    acc.resize(spec.len(), Value::Null);
                    for (f, fr) in spec.iter().enumerate() {
                        let b = match cols[f] {
                            Some(col) => col.value(i),
                            None => Value::Null,
                        };
                        acc[f] = fr.combine(&acc[f], &b);
                    }
                }
                out.push(Record::new(acc));
            }
            out
        }
        None => {
            let records = chunk.to_records();
            let mut out = Vec::with_capacity(groups.len());
            for (_, idx) in groups {
                let mut rows = idx.into_iter();
                let first = rows.next().expect("groups are non-empty");
                let mut acc = records[first].clone();
                for i in rows {
                    acc = (reduce.f)(acc, &records[i]);
                }
                out.push(acc);
            }
            out
        }
    }
}

/// Stable sort by key (same direction semantics as the row kernel).
pub fn sort(chunk: &Chunk, key: &KeyUdf, descending: bool) -> Chunk {
    let mut indices: Vec<usize> = (0..chunk.rows()).collect();
    match extract_keys(chunk, key) {
        Keys::Ints(lane) => {
            if descending {
                indices.sort_by(|&a, &b| lane[b].cmp(&lane[a]));
            } else {
                indices.sort_by(|&a, &b| lane[a].cmp(&lane[b]));
            }
        }
        Keys::Values(keys) => {
            if descending {
                indices.sort_by(|&a, &b| keys[b].cmp(&keys[a]));
            } else {
                indices.sort_by(|&a, &b| keys[a].cmp(&keys[b]));
            }
        }
    }
    chunk.gather(&indices)
}

/// Matching `(left_row, right_row)` index pairs of a hash equi-join, in the
/// row kernel's output order (left-major, right input order within a key).
fn equi_join_pairs(
    left: &Chunk,
    right: &Chunk,
    left_key: &KeyUdf,
    right_key: &KeyUdf,
) -> Vec<(usize, usize)> {
    let lkeys = extract_keys(left, left_key);
    let rkeys = extract_keys(right, right_key);
    let mut pairs = Vec::new();
    match (&lkeys, &rkeys) {
        (Keys::Ints(ll), Keys::Ints(rl)) => {
            let mut table: HashMap<i64, Vec<usize>> = HashMap::new();
            for (j, &k) in rl.iter().enumerate() {
                table.entry(k).or_default().push(j);
            }
            for (i, k) in ll.iter().enumerate() {
                if let Some(matches) = table.get(k) {
                    for &j in matches {
                        pairs.push((i, j));
                    }
                }
            }
        }
        _ => {
            // Mixed or generic keys: compare as Values (Value::eq is
            // variant-exact, so Int(5) never matches Float(5.0), matching
            // the row kernel).
            let lv: Vec<Value> = match lkeys {
                Keys::Ints(l) => l.iter().map(|&k| Value::Int(k)).collect(),
                Keys::Values(v) => v,
            };
            let rv: Vec<Value> = match rkeys {
                Keys::Ints(l) => l.iter().map(|&k| Value::Int(k)).collect(),
                Keys::Values(v) => v,
            };
            let mut table: HashMap<&Value, Vec<usize>> = HashMap::new();
            for (j, k) in rv.iter().enumerate() {
                table.entry(k).or_default().push(j);
            }
            for (i, k) in lv.iter().enumerate() {
                if let Some(matches) = table.get(k) {
                    for &j in matches {
                        pairs.push((i, j));
                    }
                }
            }
        }
    }
    pairs
}

/// Build the `left ++ right` output chunk from matching index pairs.
fn join_output(left: &Chunk, right: &Chunk, pairs: &[(usize, usize)]) -> Chunk {
    let li: Vec<usize> = pairs.iter().map(|&(i, _)| i).collect();
    let ri: Vec<usize> = pairs.iter().map(|&(_, j)| j).collect();
    let l = left.gather(&li);
    let r = right.gather(&ri);
    let mut columns = l.columns().to_vec();
    columns.extend_from_slice(r.columns());
    Chunk::new(columns, pairs.len())
}

/// Hash equi-join; output rows are `left ++ right`, left-major.
pub fn hash_join(left: &Chunk, right: &Chunk, left_key: &KeyUdf, right_key: &KeyUdf) -> Chunk {
    let pairs = equi_join_pairs(left, right, left_key, right_key);
    join_output(left, right, &pairs)
}

/// Sort-merge equi-join; byte-identical to the row kernel (stable key sort
/// of both sides, full match rectangles per key).
pub fn sort_merge_join(
    left: &Chunk,
    right: &Chunk,
    left_key: &KeyUdf,
    right_key: &KeyUdf,
) -> Chunk {
    fn sorted_keyed(chunk: &Chunk, key: &KeyUdf) -> (Vec<Value>, Vec<usize>) {
        let keys: Vec<Value> = match extract_keys(chunk, key) {
            Keys::Ints(l) => l.iter().map(|&k| Value::Int(k)).collect(),
            Keys::Values(v) => v,
        };
        let mut idx: Vec<usize> = (0..chunk.rows()).collect();
        idx.sort_by(|&a, &b| keys[a].cmp(&keys[b]));
        let sorted: Vec<Value> = idx.iter().map(|&i| keys[i].clone()).collect();
        (sorted, idx)
    }
    let (lk, li) = sorted_keyed(left, left_key);
    let (rk, ri) = sorted_keyed(right, right_key);

    let mut pairs = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lk.len() && j < rk.len() {
        match lk[i].cmp(&rk[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let key = &lk[i];
                let i_end = lk[i..].iter().take_while(|k| *k == key).count() + i;
                let j_end = rk[j..].iter().take_while(|k| *k == key).count() + j;
                for &l in &li[i..i_end] {
                    for &r in &ri[j..j_end] {
                        pairs.push((l, r));
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    join_output(left, right, &pairs)
}

/// Apply one fused pipeline stage to a chunk.
pub fn apply_stage(chunk: Chunk, stage: &StageKind) -> Result<Chunk> {
    match stage {
        StageKind::Filter { expr, .. } => Ok(filter(&chunk, expr)),
        StageKind::Map { exprs } => Ok(map(&chunk, exprs)),
        StageKind::Project { indices } => project(&chunk, indices),
    }
}

/// Run a full stage chain over one chunk (one morsel of a `ChunkPipeline`).
pub fn run_stages(chunk: Chunk, stages: &[PipelineStage]) -> Result<Chunk> {
    let mut chunk = chunk;
    for stage in stages {
        chunk = apply_stage(chunk, &stage.kind)?;
    }
    Ok(chunk)
}

/// Row-at-a-time reference semantics of a stage chain.
///
/// This is the fallback for ragged record batches (no columnar layout
/// exists) and the oracle the determinism smoke test compares against.
pub fn run_stages_rows(records: &[Record], stages: &[PipelineStage]) -> Result<Vec<Record>> {
    let mut rows: Vec<Record> = records.to_vec();
    for stage in stages {
        rows = match &stage.kind {
            StageKind::Filter { expr, .. } => rows
                .into_iter()
                .filter(|r| matches!(expr.eval(r), Value::Bool(true)))
                .collect(),
            StageKind::Map { exprs } => rows
                .iter()
                .map(|r| Record::new(exprs.iter().map(|e| e.eval(r)).collect()))
                .collect(),
            StageKind::Project { indices } => rows
                .iter()
                .map(|r| r.project(indices))
                .collect::<Result<_>>()?,
        };
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;
    use crate::rec;
    use crate::udf::{FieldReduce, FilterUdf, MapUdf};
    use std::sync::Arc;

    fn mixed_rows() -> Vec<Record> {
        vec![
            rec![3i64, 1.5, "a"],
            Record::new(vec![Value::Null, Value::Float(f64::NAN), Value::str("b")]),
            rec![1i64, -0.0, "a"],
            rec![3i64, 2.5, "c"],
            rec![2i64, 0.0, "b"],
        ]
    }

    #[test]
    fn filter_matches_row_twin() {
        let rows = mixed_rows();
        let expr = Expr::field(0).ge(Expr::lit(2i64));
        let udf = FilterUdf::from_expr("ge2", expr.clone());
        let chunk = Chunk::from_records(&rows).unwrap();
        assert_eq!(
            filter(&chunk, &expr).to_records(),
            kernels::filter(&rows, &udf)
        );
    }

    #[test]
    fn map_matches_row_twin() {
        let rows = mixed_rows();
        let exprs = vec![Expr::field(2), Expr::field(0).add(Expr::field(1))];
        let udf = MapUdf::from_exprs("m", exprs.clone());
        let chunk = Chunk::from_records(&rows).unwrap();
        assert_eq!(map(&chunk, &exprs).to_records(), kernels::map(&rows, &udf));
    }

    #[test]
    fn project_matches_row_twin_including_errors() {
        let rows = mixed_rows();
        let chunk = Chunk::from_records(&rows).unwrap();
        assert_eq!(
            project(&chunk, &[2, 0]).unwrap().to_records(),
            kernels::project(&rows, &[2, 0]).unwrap()
        );
        assert!(project(&chunk, &[7]).is_err());
        assert!(kernels::project(&rows, &[7]).is_err());
        let empty = Chunk::from_records(&[]).unwrap();
        assert!(project(&empty, &[7]).unwrap().to_records().is_empty());
    }

    #[test]
    fn hash_group_matches_row_twin() {
        let rows = mixed_rows();
        let chunk = Chunk::from_records(&rows).unwrap();
        for key in [KeyUdf::field(0), KeyUdf::field(2), KeyUdf::field(9)] {
            assert_eq!(
                hash_group(&chunk, &key),
                kernels::hash_group(&rows, &key),
                "key {}",
                key.name
            );
        }
        // Opaque closure key.
        let key = KeyUdf::new("mod2", |r| Value::Int(r.int(0).unwrap_or(0) % 2));
        assert_eq!(hash_group(&chunk, &key), kernels::hash_group(&rows, &key));
    }

    #[test]
    fn reduce_by_key_matches_row_twin_with_spec_and_closure() {
        let rows: Vec<Record> = (0..100i64).map(|i| rec![i % 7, i, i as f64]).collect();
        let chunk = Chunk::from_records(&rows).unwrap();
        let key = KeyUdf::field(0);
        let spec = ReduceUdf::from_spec(
            "agg",
            vec![FieldReduce::First, FieldReduce::SumInt, FieldReduce::Max],
        );
        assert_eq!(
            reduce_by_key(&chunk, &key, &spec),
            kernels::reduce_by_key(&rows, &key, &spec)
        );
        let opaque = ReduceUdf::new("sum", |a, x| {
            rec![a.int(0).unwrap(), a.int(1).unwrap() + x.int(1).unwrap()]
        });
        assert_eq!(
            reduce_by_key(&chunk, &key, &opaque),
            kernels::reduce_by_key(&rows, &key, &opaque)
        );
    }

    #[test]
    fn singleton_groups_keep_original_width() {
        // The row kernel emits the untouched first record for keys seen
        // once, even when the spec would narrow the width.
        let rows = vec![rec![1i64, 10i64, "extra"], rec![2i64, 5i64, "extra"]];
        let chunk = Chunk::from_records(&rows).unwrap();
        let spec = ReduceUdf::from_spec("agg", vec![FieldReduce::First, FieldReduce::SumInt]);
        let key = KeyUdf::field(0);
        let out = reduce_by_key(&chunk, &key, &spec);
        assert_eq!(out, kernels::reduce_by_key(&rows, &key, &spec));
        assert_eq!(out[0].width(), 3);
    }

    #[test]
    fn sort_matches_row_twin_both_directions() {
        let rows = mixed_rows();
        let chunk = Chunk::from_records(&rows).unwrap();
        for key in [KeyUdf::field(0), KeyUdf::field(1)] {
            for desc in [false, true] {
                assert_eq!(
                    sort(&chunk, &key, desc).to_records(),
                    kernels::sort(&rows, &key, desc)
                );
            }
        }
    }

    #[test]
    fn joins_match_row_twins() {
        let left: Vec<Record> = (0..30i64).map(|i| rec![i % 5, i]).collect();
        let right: Vec<Record> = (0..20i64).map(|i| rec![i % 7, i * 10]).collect();
        let lc = Chunk::from_records(&left).unwrap();
        let rc = Chunk::from_records(&right).unwrap();
        let lk = KeyUdf::field(0);
        let rk = KeyUdf::field(0);
        assert_eq!(
            hash_join(&lc, &rc, &lk, &rk).to_records(),
            kernels::hash_join(&left, &right, &lk, &rk)
        );
        assert_eq!(
            sort_merge_join(&lc, &rc, &lk, &rk).to_records(),
            kernels::sort_merge_join(&left, &right, &lk, &rk)
        );
    }

    #[test]
    fn joins_with_mixed_key_types_match_row_twins() {
        let left = vec![rec![1i64, "l"], rec![1.0, "lf"]];
        let right = vec![rec![1i64, "r"], rec![1.0, "rf"]];
        let lc = Chunk::from_records(&left).unwrap();
        let rc = Chunk::from_records(&right).unwrap();
        let lk = KeyUdf::field(0);
        let rk = KeyUdf::field(0);
        // Int(1) joins Int(1) only, Float(1.0) joins Float(1.0) only.
        let out = hash_join(&lc, &rc, &lk, &rk).to_records();
        assert_eq!(out, kernels::hash_join(&left, &right, &lk, &rk));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn stage_chain_matches_row_reference() {
        let rows: Vec<Record> = (0..200i64).map(|i| rec![i, i * 3, "x"]).collect();
        let stages = vec![
            PipelineStage {
                name: "f".into(),
                kind: StageKind::Filter {
                    expr: Arc::new(Expr::field(0).rem(Expr::lit(3i64)).eq(Expr::lit(0i64))),
                    selectivity: 0.33,
                },
            },
            PipelineStage {
                name: "m".into(),
                kind: StageKind::Map {
                    exprs: vec![
                        Expr::field(1).add(Expr::lit(1i64)),
                        Expr::field(0),
                        Expr::field(2),
                    ]
                    .into(),
                },
            },
            PipelineStage {
                name: "p".into(),
                kind: StageKind::Project {
                    indices: vec![0usize, 2].into(),
                },
            },
        ];
        let chunk = Chunk::from_records(&rows).unwrap();
        let chunked = run_stages(chunk, &stages).unwrap().to_records();
        let by_rows = run_stages_rows(&rows, &stages).unwrap();
        assert_eq!(chunked, by_rows);
        assert!(chunked.iter().all(|r| r.width() == 2));
    }
}
