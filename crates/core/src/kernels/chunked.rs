//! Vectorized execution kernels over columnar [`Chunk`]s.
//!
//! Each kernel here is the columnar twin of a row kernel in
//! [`crate::kernels`] and is **byte-identical** to it: for any input,
//! `chunk_kernel(Chunk::from_records(rows))` converted back with
//! [`Chunk::to_records`] equals `row_kernel(rows)` exactly — including
//! `Null` placement, `NaN` payload bits, `-0.0`, group ordering, and join
//! output order. The property-test suite (`tests/columnar_kernels.rs`)
//! enforces this over random data.
//!
//! Where the operator carries a declarative form (an [`Expr`] predicate, a
//! [`FieldReduce`] spec, a [`KeyUdf::field`] index), kernels run fully
//! columnar: predicates evaluate vectorized and the keyed kernels run on
//! the vectorized hash engine ([`super::hash`]) — the key column hashes
//! once into a hash lane (`i64` fast lane, dict-code lane hashing each
//! distinct string a single time, generic [`Value`] fallback), an
//! open-addressing slot table assigns dense group slots, and aggregation
//! folds into typed accumulator lanes (or per-slot accumulators) without
//! gathering a `Vec<Record>` per group first. Joins drive the same engine:
//! a pre-sized partitioned build over the right side, a hash-memoized
//! probe, and selection-vector output gathered in one pass. Opaque
//! closures fall back to materializing rows — correct, but without the
//! columnar speedup.

use std::sync::Arc;

use crate::data::{Chunk, Column, Record, Value};
use crate::error::{Result, RheemError};
use crate::expr::Expr;
use crate::physical::{PipelineStage, StageKind};
use crate::udf::{FieldReduce, KeyUdf, ReduceUdf};

use super::hash;

/// Keep rows whose predicate evaluates to `Bool(true)`.
pub fn filter(chunk: &Chunk, expr: &Expr) -> Chunk {
    chunk.gather(&filter_indices(chunk, expr))
}

/// Row indices kept by a predicate (the mask form of [`filter`]).
pub fn filter_indices(chunk: &Chunk, expr: &Expr) -> Vec<usize> {
    let mask = expr.eval_chunk(chunk);
    // Fast path: a clean Bool lane needs no per-row Value construction.
    if let (Some(lane), true) = (mask.bools(), mask.no_nulls()) {
        return (0..chunk.rows()).filter(|&i| lane[i]).collect();
    }
    (0..chunk.rows())
        .filter(|&i| matches!(mask.value(i), Value::Bool(true)))
        .collect()
}

/// Evaluate one output column per expression (the vectorized map).
pub fn map(chunk: &Chunk, exprs: &[Expr]) -> Chunk {
    let columns = exprs.iter().map(|e| e.eval_chunk(chunk)).collect();
    Chunk::new(columns, chunk.rows())
}

/// Keep the given columns, in order — zero-copy.
///
/// Mirrors the row kernel's contract: out-of-bounds indices are an error
/// (unless the chunk is empty, where the row kernel also succeeds).
pub fn project(chunk: &Chunk, indices: &[usize]) -> Result<Chunk> {
    if chunk.rows() == 0 {
        return Ok(Chunk::new(Vec::new(), 0));
    }
    chunk
        .project(indices)
        .ok_or_else(|| RheemError::FieldOutOfBounds {
            index: indices
                .iter()
                .copied()
                .find(|&i| i >= chunk.width())
                .unwrap_or(0),
            width: chunk.width(),
        })
}

/// Per-row keys extracted column-wise, avoiding record materialization when
/// the key is a plain field read.
enum Keys<'a> {
    /// Typed fast path: the key column is a clean `i64` lane.
    Ints(&'a [i64]),
    /// Typed fast path: a clean dictionary-encoded string lane. Dictionary
    /// entries are distinct ([`Column::dict_codes`]), so code equality is
    /// string equality and each distinct string hashes once.
    Dict {
        /// Distinct dictionary strings.
        dict: &'a [Arc<str>],
        /// Per-row dictionary codes.
        codes: &'a [u32],
    },
    /// Generic path: one [`Value`] key per row.
    Values(Vec<Value>),
}

fn extract_keys<'a>(chunk: &'a Chunk, key: &KeyUdf) -> Keys<'a> {
    if let Some(idx) = key.field_index {
        match chunk.column(idx) {
            Some(col) => {
                if col.no_nulls() {
                    if let Some(lane) = col.ints() {
                        return Keys::Ints(lane);
                    }
                    if let Some((dict, codes)) = col.dict_codes() {
                        return Keys::Dict { dict, codes };
                    }
                }
                Keys::Values((0..chunk.rows()).map(|i| col.value(i)).collect())
            }
            // Out-of-bounds field reads as Null for every row.
            None => Keys::Values(vec![Value::Null; chunk.rows()]),
        }
    } else {
        let records = chunk.to_records();
        Keys::Values(records.iter().map(|r| (key.f)(r)).collect())
    }
}

/// Materialize a key lane as one [`Value`] per row (the generic join/sort
/// fallback when the two sides' lanes disagree).
fn into_values(keys: Keys<'_>) -> Vec<Value> {
    match keys {
        Keys::Ints(lane) => lane.iter().map(|&k| Value::Int(k)).collect(),
        Keys::Dict { dict, codes } => codes
            .iter()
            .map(|&c| Value::Str(dict[c as usize].clone()))
            .collect(),
        Keys::Values(v) => v,
    }
}

/// Per-chunk key-hash column: one engine hash per row, computed once. The
/// dict lane hashes each distinct dictionary string a single time and maps
/// codes through.
fn key_hashes(keys: &Keys<'_>) -> Vec<u64> {
    match keys {
        Keys::Ints(lane) => lane.iter().map(|&k| hash::hash_i64(k)).collect(),
        Keys::Dict { dict, codes } => {
            let dict_hashes: Vec<u64> = dict.iter().map(|s| hash::hash_str(s)).collect();
            codes.iter().map(|&c| dict_hashes[c as usize]).collect()
        }
        Keys::Values(vals) => vals.iter().map(hash::hash_value).collect(),
    }
}

/// Dense group slots for a chunk's key column plus each slot's
/// materialized key (the engine-level core of `hash_group` /
/// `reduce_by_key`).
struct GroupedKeys {
    groups: hash::DenseGroups,
    /// Slot-indexed group keys.
    keys: Vec<Value>,
}

fn group_slots(chunk: &Chunk, key: &KeyUdf) -> GroupedKeys {
    let keys = extract_keys(chunk, key);
    match keys {
        // Small-range `i64` lanes skip hashing entirely: the key is its
        // own perfect hash (direct-address slots). Wide ranges fall back
        // to the engine's hash tables. Both number slots in
        // first-encounter order, so the choice is invisible downstream.
        Keys::Ints(lane) => {
            let groups = hash::dense_groups_i64(lane).unwrap_or_else(|| {
                let hashes: Vec<u64> = lane.iter().map(|&k| hash::hash_i64(k)).collect();
                hash::build_index(&hashes, |a, b| lane[a as usize] == lane[b as usize])
                    .into_groups()
            });
            let keys = groups
                .first_row
                .iter()
                .map(|&r| Value::Int(lane[r as usize]))
                .collect();
            GroupedKeys { groups, keys }
        }
        // Dictionary codes are already dense (distinct code ⇔ distinct
        // string): the dictionary is the perfect hash.
        Keys::Dict { dict, codes } => {
            let groups = hash::dense_groups_codes(codes, dict.len());
            let keys = groups
                .first_row
                .iter()
                .map(|&r| Value::Str(dict[codes[r as usize] as usize].clone()))
                .collect();
            GroupedKeys { groups, keys }
        }
        Keys::Values(vals) => {
            let hashes: Vec<u64> = vals.iter().map(hash::hash_value).collect();
            let groups = hash::build_index(&hashes, |a, b| vals[a as usize] == vals[b as usize])
                .into_groups();
            let keys = groups
                .first_row
                .iter()
                .map(|&r| vals[r as usize].clone())
                .collect();
            GroupedKeys { groups, keys }
        }
    }
}

/// Group rows by key. Same output contract as the row kernel: groups sorted
/// by key, members in input order.
///
/// Engine slots feed a CSR member list, and each group's records are then
/// materialized group-major into an exactly-sized `Vec` — sequential
/// writes into one destination at a time, no per-push reload of a
/// scattered `Vec` header. Member rows sit in the CSR in input order, so
/// the contract holds; the final sort is over *groups* (by key), so hash
/// and radix choices never reach the output.
pub fn hash_group(chunk: &Chunk, key: &KeyUdf) -> Vec<(Value, Vec<Record>)> {
    let GroupedKeys { groups, keys } = group_slots(chunk, key);
    let (offsets, rows) = hash::member_lists(&groups.slot_of_row, groups.n_groups());
    let columns = chunk.columns();
    let mut out: Vec<(Value, Vec<Record>)> = keys
        .into_iter()
        .enumerate()
        .map(|(s, k)| {
            let members = &rows[offsets[s]..offsets[s + 1]];
            let recs: Vec<Record> = members
                .iter()
                .map(|&r| {
                    let r = r as usize;
                    Record::new(columns.iter().map(|c| c.value(r)).collect())
                })
                .collect();
            (k, recs)
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// One typed accumulator lane of the vectorized reduce: the input lane and
/// a flat slot-indexed accumulator array.
enum AccLane<'a> {
    /// `Int` lane folding to `i64` (`First`/`SumInt`/`Min`/`Max`).
    Int { lane: &'a [i64], acc: Vec<i64> },
    /// `Int` lane under `SumFloat`: the fold widens to `f64` on the first
    /// combine (`Value::as_float`), so the accumulator is typed `f64` and
    /// singleton groups emit the untouched `Int` seed.
    IntToFloat { lane: &'a [i64], acc: Vec<f64> },
    /// `Float` lane folding to `f64` (`First`/`SumFloat`/`Min`/`Max` under
    /// `total_cmp`).
    Float { lane: &'a [f64], acc: Vec<f64> },
}

/// Fully typed reduce: every column is a clean `i64` or `f64` lane, the
/// chunk width equals the spec width, and every spec op is defined on its
/// lane's type. Accumulators live in flat typed arrays indexed by the
/// engine's group slots — no `Value` is built until the final emission.
/// Returns `None` when any precondition fails (the caller falls back to
/// the generic per-slot fold).
///
/// Byte-identity argument: rows fold in input order (the row kernel's
/// order); per op, `FieldReduce::combine` on clean typed operands is
/// exactly `wrapping_add` / `min` / `max` / keep-first on `i64`, and
/// `a + b` / `total_cmp`-min/max / keep-first on `f64` (bits preserved by
/// copy), with `SumFloat` over ints widening via `as_float` — which the
/// `IntToFloat` lane replicates including the singleton case, where the
/// row kernel emits the seed record verbatim (widths match by
/// precondition).
fn reduce_typed(chunk: &Chunk, grouped: &GroupedKeys, spec: &[FieldReduce]) -> Option<Vec<Record>> {
    let width = chunk.width();
    if width != spec.len() {
        return None;
    }
    let n = grouped.groups.n_groups();
    let mut lanes: Vec<AccLane> = Vec::with_capacity(width);
    for (col, fr) in chunk.columns().iter().zip(spec.iter()) {
        if !col.no_nulls() {
            return None;
        }
        if let Some(lane) = col.ints() {
            lanes.push(match fr {
                FieldReduce::SumFloat => AccLane::IntToFloat {
                    lane,
                    acc: vec![0.0; n],
                },
                _ => AccLane::Int {
                    lane,
                    acc: vec![0; n],
                },
            });
        } else if let Some(lane) = col.floats() {
            // `SumInt` over floats folds to Null for every multi-member
            // group; leave that rarity to the generic path.
            if matches!(fr, FieldReduce::SumInt) {
                return None;
            }
            lanes.push(AccLane::Float {
                lane,
                acc: vec![0.0; n],
            });
        } else {
            return None;
        }
    }
    let groups = &grouped.groups;
    let mut counts = vec![0u32; n];
    for (row, &s) in groups.slot_of_row.iter().enumerate() {
        let s = s as usize;
        counts[s] += 1;
        let seed = groups.first_row[s] as usize == row;
        for (l, fr) in lanes.iter_mut().zip(spec.iter()) {
            match l {
                AccLane::Int { lane, acc } => {
                    let x = lane[row];
                    if seed {
                        acc[s] = x;
                    } else {
                        match fr {
                            FieldReduce::First => {}
                            FieldReduce::SumInt => acc[s] = acc[s].wrapping_add(x),
                            FieldReduce::Min => acc[s] = acc[s].min(x),
                            FieldReduce::Max => acc[s] = acc[s].max(x),
                            FieldReduce::SumFloat => unreachable!("IntToFloat lane"),
                        }
                    }
                }
                AccLane::IntToFloat { lane, acc } => {
                    let x = lane[row] as f64;
                    if seed {
                        acc[s] = x;
                    } else {
                        acc[s] += x;
                    }
                }
                AccLane::Float { lane, acc } => {
                    let x = lane[row];
                    if seed {
                        acc[s] = x;
                    } else {
                        match fr {
                            FieldReduce::First => {}
                            FieldReduce::SumFloat => acc[s] += x,
                            FieldReduce::Min => {
                                if x.total_cmp(&acc[s]).is_lt() {
                                    acc[s] = x;
                                }
                            }
                            FieldReduce::Max => {
                                if x.total_cmp(&acc[s]).is_gt() {
                                    acc[s] = x;
                                }
                            }
                            FieldReduce::SumInt => unreachable!("rejected above"),
                        }
                    }
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| grouped.keys[a].cmp(&grouped.keys[b]));
    Some(
        order
            .into_iter()
            .map(|s| {
                Record::new(
                    lanes
                        .iter()
                        .map(|l| match l {
                            AccLane::Int { acc, .. } => Value::Int(acc[s]),
                            AccLane::IntToFloat { lane, acc } => {
                                if counts[s] == 1 {
                                    Value::Int(lane[groups.first_row[s] as usize])
                                } else {
                                    Value::Float(acc[s])
                                }
                            }
                            AccLane::Float { acc, .. } => Value::Float(acc[s]),
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

/// Keyed incremental reduction; one output record per key, ordered by key.
///
/// Matches the row kernel's fold exactly: the first record of each key
/// seeds the accumulator verbatim, subsequent records combine in input
/// order. With a declarative [`crate::udf::FieldReduce`] spec over clean
/// typed lanes the fold runs in flat typed accumulators (`reduce_typed`);
/// a spec over other layouts folds per-slot `Value` accumulators; an
/// opaque closure falls back to materialized records. All three share the
/// engine's slot assignment, so grouping is hashed once either way.
pub fn reduce_by_key(chunk: &Chunk, key: &KeyUdf, reduce: &ReduceUdf) -> Vec<Record> {
    let grouped = group_slots(chunk, key);
    let groups = &grouped.groups;
    let n = groups.n_groups();
    let mut order: Vec<usize> = (0..n).collect();
    match &reduce.spec {
        Some(spec) => {
            if let Some(out) = reduce_typed(chunk, &grouped, spec) {
                return out;
            }
            let cols: Vec<Option<&Column>> = (0..spec.len()).map(|f| chunk.column(f)).collect();
            let mut accs: Vec<Option<Vec<Value>>> = vec![None; n];
            for (row, &s) in groups.slot_of_row.iter().enumerate() {
                match &mut accs[s as usize] {
                    // Seed with the full first row, exactly like the row
                    // kernel's `or_insert_with(|| r.clone())`.
                    slot @ None => {
                        *slot = Some(chunk.columns().iter().map(|c| c.value(row)).collect());
                    }
                    Some(acc) => {
                        // The row closure emits exactly `spec.len()` fields
                        // per fold, reading missing accumulator fields as
                        // Null.
                        acc.resize(spec.len(), Value::Null);
                        for (f, fr) in spec.iter().enumerate() {
                            let b = match cols[f] {
                                Some(col) => col.value(row),
                                None => Value::Null,
                            };
                            acc[f] = fr.combine(&acc[f], &b);
                        }
                    }
                }
            }
            order.sort_by(|&a, &b| grouped.keys[a].cmp(&grouped.keys[b]));
            order
                .into_iter()
                .map(|s| Record::new(accs[s].take().expect("every slot has rows")))
                .collect()
        }
        None => {
            let records = chunk.to_records();
            let mut accs: Vec<Option<Record>> = vec![None; n];
            for (row, &s) in groups.slot_of_row.iter().enumerate() {
                match &mut accs[s as usize] {
                    slot @ None => *slot = Some(records[row].clone()),
                    Some(acc) => *acc = (reduce.f)(std::mem::take(acc), &records[row]),
                }
            }
            order.sort_by(|&a, &b| grouped.keys[a].cmp(&grouped.keys[b]));
            order
                .into_iter()
                .map(|s| accs[s].take().expect("every slot has rows"))
                .collect()
        }
    }
}

/// Stable sort by key (same direction semantics as the row kernel).
pub fn sort(chunk: &Chunk, key: &KeyUdf, descending: bool) -> Chunk {
    let mut indices: Vec<usize> = (0..chunk.rows()).collect();
    match extract_keys(chunk, key) {
        Keys::Ints(lane) => {
            if descending {
                indices.sort_by(|&a, &b| lane[b].cmp(&lane[a]));
            } else {
                indices.sort_by(|&a, &b| lane[a].cmp(&lane[b]));
            }
        }
        // Arc<str> ordering is byte ordering, identical to Value::Str cmp,
        // so the lane can sort without materializing Values.
        Keys::Dict { dict, codes } => {
            let k = |i: usize| &dict[codes[i] as usize];
            if descending {
                indices.sort_by(|&a, &b| k(b).cmp(k(a)));
            } else {
                indices.sort_by(|&a, &b| k(a).cmp(k(b)));
            }
        }
        Keys::Values(keys) => {
            if descending {
                indices.sort_by(|&a, &b| keys[b].cmp(&keys[a]));
            } else {
                indices.sort_by(|&a, &b| keys[a].cmp(&keys[b]));
            }
        }
    }
    chunk.gather(&indices)
}

/// Selection vectors of a hash equi-join: matching `(left_rows, right_rows)`
/// row indices, in the row kernel's output order (left-major, right matches
/// in right input order within a key).
///
/// The right side builds a [`hash::GroupIndex`] (pre-sized, radix-
/// partitioned when large) plus CSR member lists; the left side probes it
/// hashing each key once. When both key lanes are dictionary-encoded the
/// probe is memoized per distinct *left* dictionary entry, so string
/// comparison happens at most once per distinct string rather than per row.
fn equi_join_select(
    left: &Chunk,
    right: &Chunk,
    left_key: &KeyUdf,
    right_key: &KeyUdf,
) -> (Vec<usize>, Vec<usize>) {
    let lkeys = extract_keys(left, left_key);
    let rkeys = extract_keys(right, right_key);
    let mut li: Vec<usize> = Vec::new();
    let mut ri: Vec<usize> = Vec::new();
    // Emit the full match rectangle row-by-row for one probe hit.
    let mut emit = |i: usize, members: &[u32]| {
        li.extend(std::iter::repeat_n(i, members.len()));
        ri.extend(members.iter().map(|&r| r as usize));
    };
    match (&lkeys, &rkeys) {
        (Keys::Ints(ll), Keys::Ints(rl)) => {
            let rhashes = key_hashes(&rkeys);
            let index = hash::build_index(&rhashes, |a, b| rl[a as usize] == rl[b as usize]);
            let (offsets, rows) = hash::member_lists(&index.slot_of_row, index.n_groups());
            for (i, &k) in ll.iter().enumerate() {
                let hit = index.lookup(hash::hash_i64(k), |s| {
                    rl[index.first_row[s as usize] as usize] == k
                });
                if let Some(s) = hit {
                    let s = s as usize;
                    emit(i, &rows[offsets[s]..offsets[s + 1]]);
                }
            }
        }
        (
            Keys::Dict {
                dict: ld,
                codes: lc,
            },
            Keys::Dict {
                dict: rd,
                codes: rc,
            },
        ) => {
            let rhashes = key_hashes(&rkeys);
            let index = hash::build_index(&rhashes, |a, b| rc[a as usize] == rc[b as usize]);
            let (offsets, rows) = hash::member_lists(&index.slot_of_row, index.n_groups());
            let lhashes: Vec<u64> = ld.iter().map(|s| hash::hash_str(s)).collect();
            // Per-left-dictionary-entry probe memo: dictionary entries are
            // distinct, so one string-compared lookup per entry covers
            // every row carrying its code.
            let mut memo: Vec<Option<Option<u32>>> = vec![None; ld.len()];
            for (i, &c) in lc.iter().enumerate() {
                let c = c as usize;
                let slot = *memo[c].get_or_insert_with(|| {
                    let key: &str = &ld[c];
                    index.lookup(lhashes[c], |s| {
                        let r = index.first_row[s as usize] as usize;
                        *rd[rc[r] as usize] == *key
                    })
                });
                if let Some(s) = slot {
                    let s = s as usize;
                    emit(i, &rows[offsets[s]..offsets[s + 1]]);
                }
            }
        }
        _ => {
            // Mixed or generic keys: compare as Values (Value::eq is
            // variant-exact, so Int(5) never matches Float(5.0), matching
            // the row kernel).
            let rv = into_values(rkeys);
            let rhashes: Vec<u64> = rv.iter().map(hash::hash_value).collect();
            let index = hash::build_index(&rhashes, |a, b| rv[a as usize] == rv[b as usize]);
            let (offsets, rows) = hash::member_lists(&index.slot_of_row, index.n_groups());
            let lv = into_values(lkeys);
            for (i, k) in lv.iter().enumerate() {
                let hit = index.lookup(hash::hash_value(k), |s| {
                    rv[index.first_row[s as usize] as usize] == *k
                });
                if let Some(s) = hit {
                    let s = s as usize;
                    emit(i, &rows[offsets[s]..offsets[s + 1]]);
                }
            }
        }
    }
    (li, ri)
}

/// Build the `left ++ right` output chunk from selection vectors: one
/// gather per side, columns concatenated — no per-row record assembly.
fn join_output(left: &Chunk, right: &Chunk, li: &[usize], ri: &[usize]) -> Chunk {
    debug_assert_eq!(li.len(), ri.len());
    let l = left.gather(li);
    let r = right.gather(ri);
    let mut columns = l.columns().to_vec();
    columns.extend_from_slice(r.columns());
    Chunk::new(columns, li.len())
}

/// Hash equi-join; output rows are `left ++ right`, left-major.
pub fn hash_join(left: &Chunk, right: &Chunk, left_key: &KeyUdf, right_key: &KeyUdf) -> Chunk {
    let (li, ri) = equi_join_select(left, right, left_key, right_key);
    join_output(left, right, &li, &ri)
}

/// Sort-merge equi-join; byte-identical to the row kernel (stable key sort
/// of both sides, full match rectangles per key).
pub fn sort_merge_join(
    left: &Chunk,
    right: &Chunk,
    left_key: &KeyUdf,
    right_key: &KeyUdf,
) -> Chunk {
    // Typed i64 lane path: stable index sort on the lanes and an i64 merge
    // scan — same comparisons as Value::Int's order, no Value built.
    if let (Keys::Ints(ll), Keys::Ints(rl)) =
        (extract_keys(left, left_key), extract_keys(right, right_key))
    {
        let mut li: Vec<usize> = (0..left.rows()).collect();
        li.sort_by_key(|&i| ll[i]);
        let mut ri: Vec<usize> = (0..right.rows()).collect();
        ri.sort_by_key(|&j| rl[j]);
        let mut lsel = Vec::new();
        let mut rsel = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < li.len() && j < ri.len() {
            let (lk, rk) = (ll[li[i]], rl[ri[j]]);
            match lk.cmp(&rk) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let i_end = li[i..].iter().take_while(|&&x| ll[x] == lk).count() + i;
                    let j_end = ri[j..].iter().take_while(|&&x| rl[x] == rk).count() + j;
                    for &l in &li[i..i_end] {
                        lsel.extend(std::iter::repeat_n(l, j_end - j));
                        rsel.extend_from_slice(&ri[j..j_end]);
                    }
                    i = i_end;
                    j = j_end;
                }
            }
        }
        return join_output(left, right, &lsel, &rsel);
    }
    fn sorted_keyed(chunk: &Chunk, key: &KeyUdf) -> (Vec<Value>, Vec<usize>) {
        let keys = into_values(extract_keys(chunk, key));
        let mut idx: Vec<usize> = (0..chunk.rows()).collect();
        idx.sort_by(|&a, &b| keys[a].cmp(&keys[b]));
        let sorted: Vec<Value> = idx.iter().map(|&i| keys[i].clone()).collect();
        (sorted, idx)
    }
    let (lk, li) = sorted_keyed(left, left_key);
    let (rk, ri) = sorted_keyed(right, right_key);

    let mut lsel = Vec::new();
    let mut rsel = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lk.len() && j < rk.len() {
        match lk[i].cmp(&rk[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let key = &lk[i];
                let i_end = lk[i..].iter().take_while(|k| *k == key).count() + i;
                let j_end = rk[j..].iter().take_while(|k| *k == key).count() + j;
                for &l in &li[i..i_end] {
                    lsel.extend(std::iter::repeat_n(l, j_end - j));
                    rsel.extend_from_slice(&ri[j..j_end]);
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    join_output(left, right, &lsel, &rsel)
}

/// Apply one fused pipeline stage to a chunk.
pub fn apply_stage(chunk: Chunk, stage: &StageKind) -> Result<Chunk> {
    match stage {
        StageKind::Filter { expr, .. } => Ok(filter(&chunk, expr)),
        StageKind::Map { exprs } => Ok(map(&chunk, exprs)),
        StageKind::Project { indices } => project(&chunk, indices),
    }
}

/// Run a full stage chain over one chunk (one morsel of a `ChunkPipeline`).
pub fn run_stages(chunk: Chunk, stages: &[PipelineStage]) -> Result<Chunk> {
    let mut chunk = chunk;
    for stage in stages {
        chunk = apply_stage(chunk, &stage.kind)?;
    }
    Ok(chunk)
}

/// Row-at-a-time reference semantics of a stage chain.
///
/// This is the fallback for ragged record batches (no columnar layout
/// exists) and the oracle the determinism smoke test compares against.
pub fn run_stages_rows(records: &[Record], stages: &[PipelineStage]) -> Result<Vec<Record>> {
    let mut rows: Vec<Record> = records.to_vec();
    for stage in stages {
        rows = match &stage.kind {
            StageKind::Filter { expr, .. } => rows
                .into_iter()
                .filter(|r| matches!(expr.eval(r), Value::Bool(true)))
                .collect(),
            StageKind::Map { exprs } => rows
                .iter()
                .map(|r| Record::new(exprs.iter().map(|e| e.eval(r)).collect()))
                .collect(),
            StageKind::Project { indices } => rows
                .iter()
                .map(|r| r.project(indices))
                .collect::<Result<_>>()?,
        };
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;
    use crate::rec;
    use crate::udf::{FieldReduce, FilterUdf, MapUdf};
    use std::sync::Arc;

    fn mixed_rows() -> Vec<Record> {
        vec![
            rec![3i64, 1.5, "a"],
            Record::new(vec![Value::Null, Value::Float(f64::NAN), Value::str("b")]),
            rec![1i64, -0.0, "a"],
            rec![3i64, 2.5, "c"],
            rec![2i64, 0.0, "b"],
        ]
    }

    #[test]
    fn filter_matches_row_twin() {
        let rows = mixed_rows();
        let expr = Expr::field(0).ge(Expr::lit(2i64));
        let udf = FilterUdf::from_expr("ge2", expr.clone());
        let chunk = Chunk::from_records(&rows).unwrap();
        assert_eq!(
            filter(&chunk, &expr).to_records(),
            kernels::filter(&rows, &udf)
        );
    }

    #[test]
    fn map_matches_row_twin() {
        let rows = mixed_rows();
        let exprs = vec![Expr::field(2), Expr::field(0).add(Expr::field(1))];
        let udf = MapUdf::from_exprs("m", exprs.clone());
        let chunk = Chunk::from_records(&rows).unwrap();
        assert_eq!(map(&chunk, &exprs).to_records(), kernels::map(&rows, &udf));
    }

    #[test]
    fn project_matches_row_twin_including_errors() {
        let rows = mixed_rows();
        let chunk = Chunk::from_records(&rows).unwrap();
        assert_eq!(
            project(&chunk, &[2, 0]).unwrap().to_records(),
            kernels::project(&rows, &[2, 0]).unwrap()
        );
        assert!(project(&chunk, &[7]).is_err());
        assert!(kernels::project(&rows, &[7]).is_err());
        let empty = Chunk::from_records(&[]).unwrap();
        assert!(project(&empty, &[7]).unwrap().to_records().is_empty());
    }

    #[test]
    fn hash_group_matches_row_twin() {
        let rows = mixed_rows();
        let chunk = Chunk::from_records(&rows).unwrap();
        for key in [KeyUdf::field(0), KeyUdf::field(2), KeyUdf::field(9)] {
            assert_eq!(
                hash_group(&chunk, &key),
                kernels::hash_group(&rows, &key),
                "key {}",
                key.name
            );
        }
        // Opaque closure key.
        let key = KeyUdf::new("mod2", |r| Value::Int(r.int(0).unwrap_or(0) % 2));
        assert_eq!(hash_group(&chunk, &key), kernels::hash_group(&rows, &key));
    }

    #[test]
    fn reduce_by_key_matches_row_twin_with_spec_and_closure() {
        let rows: Vec<Record> = (0..100i64).map(|i| rec![i % 7, i, i as f64]).collect();
        let chunk = Chunk::from_records(&rows).unwrap();
        let key = KeyUdf::field(0);
        let spec = ReduceUdf::from_spec(
            "agg",
            vec![FieldReduce::First, FieldReduce::SumInt, FieldReduce::Max],
        );
        assert_eq!(
            reduce_by_key(&chunk, &key, &spec),
            kernels::reduce_by_key(&rows, &key, &spec)
        );
        let opaque = ReduceUdf::new("sum", |a, x| {
            rec![a.int(0).unwrap(), a.int(1).unwrap() + x.int(1).unwrap()]
        });
        assert_eq!(
            reduce_by_key(&chunk, &key, &opaque),
            kernels::reduce_by_key(&rows, &key, &opaque)
        );
    }

    #[test]
    fn singleton_groups_keep_original_width() {
        // The row kernel emits the untouched first record for keys seen
        // once, even when the spec would narrow the width.
        let rows = vec![rec![1i64, 10i64, "extra"], rec![2i64, 5i64, "extra"]];
        let chunk = Chunk::from_records(&rows).unwrap();
        let spec = ReduceUdf::from_spec("agg", vec![FieldReduce::First, FieldReduce::SumInt]);
        let key = KeyUdf::field(0);
        let out = reduce_by_key(&chunk, &key, &spec);
        assert_eq!(out, kernels::reduce_by_key(&rows, &key, &spec));
        assert_eq!(out[0].width(), 3);
    }

    #[test]
    fn sort_matches_row_twin_both_directions() {
        let rows = mixed_rows();
        let chunk = Chunk::from_records(&rows).unwrap();
        for key in [KeyUdf::field(0), KeyUdf::field(1)] {
            for desc in [false, true] {
                assert_eq!(
                    sort(&chunk, &key, desc).to_records(),
                    kernels::sort(&rows, &key, desc)
                );
            }
        }
    }

    #[test]
    fn joins_match_row_twins() {
        let left: Vec<Record> = (0..30i64).map(|i| rec![i % 5, i]).collect();
        let right: Vec<Record> = (0..20i64).map(|i| rec![i % 7, i * 10]).collect();
        let lc = Chunk::from_records(&left).unwrap();
        let rc = Chunk::from_records(&right).unwrap();
        let lk = KeyUdf::field(0);
        let rk = KeyUdf::field(0);
        assert_eq!(
            hash_join(&lc, &rc, &lk, &rk).to_records(),
            kernels::hash_join(&left, &right, &lk, &rk)
        );
        assert_eq!(
            sort_merge_join(&lc, &rc, &lk, &rk).to_records(),
            kernels::sort_merge_join(&left, &right, &lk, &rk)
        );
    }

    #[test]
    fn joins_with_mixed_key_types_match_row_twins() {
        let left = vec![rec![1i64, "l"], rec![1.0, "lf"]];
        let right = vec![rec![1i64, "r"], rec![1.0, "rf"]];
        let lc = Chunk::from_records(&left).unwrap();
        let rc = Chunk::from_records(&right).unwrap();
        let lk = KeyUdf::field(0);
        let rk = KeyUdf::field(0);
        // Int(1) joins Int(1) only, Float(1.0) joins Float(1.0) only.
        let out = hash_join(&lc, &rc, &lk, &rk).to_records();
        assert_eq!(out, kernels::hash_join(&left, &right, &lk, &rk));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn stage_chain_matches_row_reference() {
        let rows: Vec<Record> = (0..200i64).map(|i| rec![i, i * 3, "x"]).collect();
        let stages = vec![
            PipelineStage {
                name: "f".into(),
                kind: StageKind::Filter {
                    expr: Arc::new(Expr::field(0).rem(Expr::lit(3i64)).eq(Expr::lit(0i64))),
                    selectivity: 0.33,
                },
            },
            PipelineStage {
                name: "m".into(),
                kind: StageKind::Map {
                    exprs: vec![
                        Expr::field(1).add(Expr::lit(1i64)),
                        Expr::field(0),
                        Expr::field(2),
                    ]
                    .into(),
                },
            },
            PipelineStage {
                name: "p".into(),
                kind: StageKind::Project {
                    indices: vec![0usize, 2].into(),
                },
            },
        ];
        let chunk = Chunk::from_records(&rows).unwrap();
        let chunked = run_stages(chunk, &stages).unwrap().to_records();
        let by_rows = run_stages_rows(&rows, &stages).unwrap();
        assert_eq!(chunked, by_rows);
        assert!(chunked.iter().all(|r| r.width() == 2));
    }
}
